"""Store-backed sweep checkpoints, at value and iteration granularity.

:func:`repro.simulation.sweep.sweep_parameter` accepts a checkpoint object
with ``load(value)`` / ``save(value, row)`` hooks.  The implementation
here keys every measured row by the sweep's logical description plus the
parameter value, so a killed sweep resumes exactly at the first value it
had not finished, and two sweeps with identical descriptions — however
they are named or parallelised — share their rows.

Below the value rows sits a second granularity:
:class:`StoreIterationCheckpoint` persists the individual simulation
iterations *inside* one parameter value (the columnar
:class:`~repro.simulation.results.FrameStatisticsColumns` /
:class:`~repro.simulation.results.StepColumns` containers, through the
codecs that already exist for them), keyed by the sweep payload + the
value + the iteration index under their own artifact kind — disjoint from
the value-row key space by construction.  A paper-scale value killed at
iteration ``k`` of 50 therefore resumes at iteration ``k``, not at the
start of the value.  Once a value's row lands, its iteration entries are
subsumed (the row is what every future resume reads) and are evicted to
keep the store's steady-state size unchanged.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, List, Optional

from repro.store.keys import ITERATION_KIND, ROW_KIND, cache_key
from repro.store.result_store import (
    ResultStore,
    StoreDegradedWarning,
    StoreIntegrityError,
    is_degradable_error,
)

__all__ = [
    "ITERATION_KIND",
    "ROW_KIND",
    "StoreIterationCheckpoint",
    "StoreSweepCheckpoint",
]


class _DegradationState:
    """Shared graceful-degradation behaviour of the store checkpoints.

    When a checkpoint write fails with a *degradable* errno (ENOSPC,
    EDQUOT, EROFS — see :data:`repro.store.result_store.
    DEGRADABLE_ERRNOS`), killing the run would trade a full disk for
    losing the computation in flight.  Instead the checkpoint downgrades:
    the result is kept in an in-process memory map (so the *current* run
    still resumes, deduplicates and assembles exactly as if the write had
    landed), a :class:`StoreDegradedWarning` is emitted once, and
    ``degraded`` records the reason for structured consumers (the
    campaign layer turns it into a ``StoreDegraded`` progress event).
    Durability across process kills is what is lost — nothing else.
    """

    def __init__(self) -> None:
        self.degraded: Optional[str] = None
        self._memory: Dict[Any, Any] = {}

    def _absorb_write_failure(
        self, error: BaseException, key: Any, result: Any, what: str
    ) -> None:
        if not is_degradable_error(error):
            raise error
        self._memory[key] = result
        if self.degraded is None:
            self.degraded = f"{what} write failed: {error}"
            warnings.warn(
                StoreDegradedWarning(
                    f"{what} checkpoint degraded to in-memory mode "
                    f"({error}); results of this run are kept but will "
                    f"not survive a process kill"
                ),
                stacklevel=3,
            )


class StoreIterationCheckpoint(_DegradationState):
    """Checkpoint one parameter value's simulation iterations.

    Implements the :class:`repro.simulation.runner.IterationCheckpoint`
    protocol against a :class:`ResultStore`.  Instances are handed out by
    :meth:`StoreSweepCheckpoint.iteration_checkpoint` and may be pickled
    into whichever worker process runs the value's measure (the store is
    safe for concurrent writers).

    Args:
        store: destination store.
        payload: the canonical description of the *sweep* the value
            belongs to.
        value: the parameter value whose iterations are checkpointed.
        metadata: optional human-readable context written into each
            entry header.
    """

    def __init__(
        self,
        store: ResultStore,
        payload: Any,
        value: float,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__()
        self.store = store
        self.payload = payload
        self.value = float(value)
        self.metadata = metadata or {}
        self.loaded = 0
        self.saved = 0

    def key_for(self, index: int) -> str:
        """The content address of iteration ``index`` of this value."""
        return cache_key(
            ITERATION_KIND,
            {
                "sweep": self.payload,
                "value": self.value,
                "iteration": int(index),
            },
        )

    def load(self, index: int) -> Optional[Any]:
        """The checkpointed iteration result, or ``None`` to resimulate.

        Corrupt entries are quarantined with provenance and reported as
        misses, like the value-row checkpoint.
        """
        if index in self._memory:
            self.loaded += 1
            return self._memory[index]
        key = self.key_for(index)
        if not self.store.contains(key):
            return None
        try:
            result = self.store.get(key)
        except (KeyError, StoreIntegrityError) as error:
            self.store.quarantine_entry(key, reason=str(error))
            return None
        self.loaded += 1
        return result

    def save(self, index: int, result: Any) -> None:
        """Persist the freshly simulated iteration ``index``.

        A degradable write failure (ENOSPC & co) downgrades to in-memory
        checkpointing instead of killing the simulation — see
        :class:`_DegradationState`.
        """
        try:
            self.store.put(
                self.key_for(index),
                result,
                metadata={
                    **self.metadata,
                    "value": self.value,
                    "iteration": int(index),
                },
                kind=ITERATION_KIND,
            )
        except OSError as error:
            self._absorb_write_failure(error, int(index), result, "iteration")
        self.saved += 1


class StoreSweepCheckpoint(_DegradationState):
    """Checkpoint one sweep's rows into a :class:`ResultStore`.

    Args:
        store: destination store.
        payload: the canonical description of the sweep (experiment,
            scale, seed, ...); every row key derives from it plus the
            parameter value.
        metadata: optional human-readable context written into each
            entry header.
        iterations: iterations each value's simulation runs, when the
            experiment supports iteration-granular checkpointing;
            ``None`` (default) disables the iteration sub-keys and
            :meth:`iteration_checkpoint` returns ``None``.
    """

    def __init__(
        self,
        store: ResultStore,
        payload: Any,
        metadata: Optional[Dict[str, Any]] = None,
        iterations: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.store = store
        self.payload = payload
        self.metadata = metadata or {}
        self.iterations = iterations
        self.loaded = 0
        self.saved = 0

    def key_for(self, value: float) -> str:
        """The content address of the row at one parameter value."""
        return cache_key(ROW_KIND, {"sweep": self.payload, "value": float(value)})

    def load(self, value: float) -> Optional[Dict[str, float]]:
        """The checkpointed row at ``value``, or ``None`` to recompute.

        A corrupt entry is quarantined (with provenance, for post-mortem
        diagnosis) and reported as a miss — resuming from a damaged store
        recomputes the damaged rows instead of returning them.
        """
        if float(value) in self._memory:
            self.loaded += 1
            return self._memory[float(value)]
        key = self.key_for(value)
        if not self.store.contains(key):
            return None
        try:
            row = self.store.get(key)
        except (KeyError, StoreIntegrityError) as error:
            self.store.quarantine_entry(key, reason=str(error))
            return None
        self.loaded += 1
        return row

    def save(self, value: float, row: Dict[str, float]) -> None:
        """Persist the freshly measured row at ``value``.

        The value's iteration sub-entries (if iteration granularity is
        enabled) are evicted afterwards: every future resume reads the
        row, so keeping them would only grow the store.  A degradable
        write failure (ENOSPC & co) downgrades to in-memory
        checkpointing instead of killing the sweep — see
        :class:`_DegradationState`.
        """
        try:
            self.store.put(
                self.key_for(value),
                dict(row),
                metadata={**self.metadata, "value": float(value)},
                kind=ROW_KIND,
            )
        except OSError as error:
            self._absorb_write_failure(error, float(value), dict(row), "row")
        self.saved += 1
        self.discard_iterations(value)

    # ------------------------------------------------------------------ #
    # Iteration granularity
    # ------------------------------------------------------------------ #
    def iteration_checkpoint(
        self, value: float
    ) -> Optional[StoreIterationCheckpoint]:
        """Per-iteration checkpoint of ``value``, or ``None`` if disabled."""
        if self.iterations is None:
            return None
        return StoreIterationCheckpoint(
            self.store, self.payload, value, metadata=self.metadata
        )

    def iteration_keys_for(self, value: float) -> List[str]:
        """Content addresses of all of ``value``'s iteration entries."""
        if self.iterations is None:
            return []
        sub = StoreIterationCheckpoint(self.store, self.payload, value)
        return [sub.key_for(index) for index in range(self.iterations)]

    def discard_iterations(self, value: float) -> int:
        """Evict ``value``'s iteration entries; returns how many existed."""
        removed = 0
        for key in self.iteration_keys_for(value):
            if self.store.evict(key):
                removed += 1
        return removed
