"""Canonical cache keys for experiment artifacts.

A cache key must be a pure function of the *logical* description of an
experiment — what is simulated, with which parameters, from which seed —
and independent of how it is executed (worker counts, process layout,
machine).  The helpers here normalise arbitrary nested descriptions
(dataclasses, mappings, sequences, NumPy scalars) into a canonical JSON
document and hash it together with the on-disk schema version, so a key
changes exactly when the described computation or the storage format
changes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

#: ``ExperimentScale`` / ``SimulationConfig`` fields that select the
#: execution backend without affecting results (results are bit-identical
#: for every value, see the simulation runner); they never enter a key.
#: ``shard_steps`` (intra-iteration trajectory sharding) and ``transport``
#: (pickle vs shared-memory result hand-off) joined in PR 5; the
#: supervision knobs (``max_retries`` / ``retry_backoff`` /
#: ``task_timeout``) joined in PR 7 — retrying a deterministic task can
#: only reproduce the result it would have had, so fault-tolerance
#: settings never change what is computed, only whether a failure is
#: survived.
EXECUTION_FIELDS = frozenset(
    {
        "workers",
        "sweep_workers",
        "shard_steps",
        "transport",
        "max_retries",
        "retry_backoff",
        "task_timeout",
    }
)

#: Fields that select the *execution environment* rather than the logical
#: computation or the process layout.  ``backend`` (the array namespace of
#: :mod:`repro.backend`) is the only member: a non-NumPy backend is a
#: declared different environment whose results are not promised
#: bit-identical to the NumPy reference, so — unlike ``EXECUTION_FIELDS`` —
#: environment fields *stay in* cache keys (results are cached per
#: environment, never mixed).  Campaign spec matrices reject them for the
#: same reason: a campaign is one environment's worth of results.
ENVIRONMENT_FIELDS = frozenset({"backend"})

#: The artifact kinds of the store's key space, one per granularity.
#: ``cache_key`` hashes the kind together with the payload, so the three
#: granularities of the same sweep — the complete sweep, one parameter
#: value's row, one iteration of one value's simulation — can never
#: collide even though each payload embeds the one above it.
SWEEP_KIND = "sweep"
ROW_KIND = "sweep-row"
ITERATION_KIND = "sweep-row-iteration"

#: All key kinds, for documentation and the disjointness property tests.
KEY_KINDS = frozenset({SWEEP_KIND, ROW_KIND, ITERATION_KIND})


def normalize(value: Any) -> Any:
    """Normalise ``value`` into canonical JSON-serialisable data.

    Mappings are key-sorted, sequences become lists, dataclasses become
    field mappings (execution-only fields dropped), NumPy scalars become
    Python scalars.  Raises :class:`ConfigurationError` for anything that
    has no canonical form (sets, arbitrary objects) — silent repr-based
    fallbacks would make keys unstable across interpreter runs.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return normalize(
            {
                field.name: getattr(value, field.name)
                for field in dataclasses.fields(value)
                if field.name not in EXECUTION_FIELDS
            }
        )
    if isinstance(value, Mapping):
        normalized: Dict[str, Any] = {}
        for key in sorted(value, key=str):
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"cache-key mappings need string keys, got {key!r}"
                )
            normalized[key] = normalize(value[key])
        return normalized
    if isinstance(value, np.generic):
        return normalize(value.item())
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ConfigurationError(
                f"cache keys cannot contain non-finite floats, got {value!r}"
            )
        return value
    if isinstance(value, np.ndarray):
        return [normalize(item) for item in value.tolist()]
    if isinstance(value, Sequence):
        return [normalize(item) for item in value]
    raise ConfigurationError(
        f"cannot derive a canonical cache key from {type(value).__name__!r}"
    )


def canonical_json(payload: Any) -> str:
    """The canonical JSON document of a normalised payload.

    Key-sorted, minimal separators, no NaN/Infinity — two payloads render
    identically exactly when they normalise identically.
    """
    return json.dumps(
        normalize(payload), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def cache_key(kind: str, payload: Any, schema_version: int | None = None) -> str:
    """The content address of one artifact: sha256 over kind + payload.

    Args:
        kind: artifact kind (``"sweep"``, ``"sweep-row"``, ...); artifacts
            of different kinds never collide even for equal payloads.
        payload: the full logical description of the computation.
        schema_version: on-disk schema version baked into the key; defaults
            to the current :data:`repro.store.codecs.SCHEMA_VERSION`, so
            every format change invalidates the cache wholesale.
    """
    if schema_version is None:
        from repro.store.codecs import SCHEMA_VERSION

        schema_version = SCHEMA_VERSION
    document = canonical_json(
        {"kind": kind, "schema_version": schema_version, "payload": payload}
    )
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


def scale_payload(scale: Any) -> Dict[str, Any]:
    """The key payload of an :class:`~repro.experiments.registry.
    ExperimentScale`: its size knobs and seed, without the preset name and
    the execution fields.

    Two scales that run the same grid from the same seed — whatever they
    are called and however many processes they use — share a payload.
    """
    payload = normalize(scale)
    payload.pop("name", None)
    return payload


def config_payload(config: Any) -> Dict[str, Any]:
    """The key payload of a :class:`~repro.simulation.config.
    SimulationConfig`: network, region, mobility model + parameters, steps,
    iterations and the root seed — the full description of one simulation
    run, minus the execution fields.
    """
    return normalize(config)
