"""The Gupta–Kumar dense-network comparator.

The related work discussed in Section 2 ([4] Gupta & Kumar) studies the
critical transmitting range of ``n`` nodes uniform in a *fixed* unit-area
region as ``n`` grows: connectivity w.h.p. requires

    pi * r(n)^2 = (log n + c(n)) / n   with c(n) -> infinity.

Rescaled to the paper's region of side ``l`` (area ``l^2``), the critical
range becomes ``l * sqrt((log n + c) / (pi n))``.  The 2-D experiments use
this as an analytical sanity check of the simulated ``rstationary`` values:
the simulated stationary critical range for ``n = sqrt(l)`` nodes in
``[0, l]^2`` should track this curve up to a modest constant.
"""

from __future__ import annotations

import math

from repro.exceptions import AnalysisError


def gupta_kumar_critical_range(
    node_count: int, side: float = 1.0, constant: float = 0.0
) -> float:
    """Critical range ``l sqrt((log n + c) / (pi n))`` of Gupta & Kumar.

    Args:
        node_count: number of nodes ``n`` (at least 2 so ``log n > 0``).
        side: side of the square deployment region (the original result is
            stated for the unit square / disk; we rescale linearly).
        constant: the additive term ``c`` — 0 gives the threshold itself,
            positive values give ranges that are connected w.h.p.
    """
    if node_count < 2:
        raise AnalysisError(f"node_count must be at least 2, got {node_count}")
    if side <= 0:
        raise AnalysisError(f"side must be positive, got {side}")
    return side * math.sqrt((math.log(node_count) + constant) / (math.pi * node_count))


def gupta_kumar_node_count(
    transmitting_range: float, side: float = 1.0, constant: float = 0.0
) -> int:
    """Approximate node count needed for connectivity at a fixed range.

    Numerically inverts :func:`gupta_kumar_critical_range` (the relation
    ``pi r^2 n = l^2 (log n + c)`` has no closed form in ``n``); uses a
    simple fixed-point iteration that converges quickly for realistic
    parameters.
    """
    if transmitting_range <= 0:
        raise AnalysisError(
            f"transmitting_range must be positive, got {transmitting_range}"
        )
    if side <= 0:
        raise AnalysisError(f"side must be positive, got {side}")
    ratio = (side / transmitting_range) ** 2 / math.pi
    # n = ratio * (log n + c); iterate from a sensible starting point.
    n = max(2.0, ratio)
    for _ in range(100):
        updated = ratio * (math.log(n) + constant)
        updated = max(updated, 2.0)
        if abs(updated - n) < 1e-9:
            n = updated
            break
        n = updated
    return int(math.ceil(n))
