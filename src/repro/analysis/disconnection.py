"""Occupancy-based estimates of disconnection probability (Section 3).

The paper's lower-bound argument (Theorem 4) runs as follows: divide the
line into ``C = l / r`` cells; if the occupancy bit string contains a
``{10*1}`` pattern (an interior empty cell between occupied cells) the
graph is disconnected (Lemma 1); condition on the number of empty cells
``mu(n, C)`` and show that for ``l << r n << l log l`` the term at
``k = E[mu]`` contributes a non-vanishing probability.

The estimators here implement each ingredient of that argument so that the
benchmark can plot the predicted disconnection probability against the
measured one:

* :func:`gap_event_probability_estimate` — ``P(E^{10*1})`` estimated via the
  conditional decomposition of Equation (1);
* :func:`isolated_node_probability_1d` — the weaker "isolated node" bound
  used by the earlier work [11] the paper improves on;
* :func:`disconnection_probability_estimate_1d` — the exact complement of
  the closed-form connectivity probability, for reference.
"""

from __future__ import annotations

import math

from repro.analysis.bounds_1d import connectivity_probability_1d_exact
from repro.exceptions import AnalysisError
from repro.occupancy.exact import empty_cells_pmf
from repro.occupancy.limits import limit_law


def _conditional_gap_probability(k: int, cells: int) -> float:
    """``P(E^{10*1} | mu = k)`` — from the proof of Lemma 2.

    Given exactly ``k`` empty cells out of ``C``, the complement of the gap
    event is "all the occupied cells are consecutive", which happens for
    ``(k + 1)`` of the ``binom(C, k)`` equally likely empty-cell patterns::

        P(no gap | mu = k) = (k + 1) / binom(C, k)

    so ``P(gap | mu = k) = 1 - (k + 1) / binom(C, k)``.
    """
    if k < 0 or k > cells:
        raise AnalysisError(f"k must be in [0, C], got k={k}, C={cells}")
    if k == 0 or k == cells:
        return 0.0
    log_choose = (
        math.lgamma(cells + 1) - math.lgamma(k + 1) - math.lgamma(cells - k + 1)
    )
    log_no_gap = math.log(k + 1) - log_choose
    no_gap = math.exp(log_no_gap) if log_no_gap < 0 else 1.0
    return max(0.0, 1.0 - min(no_gap, 1.0))


def gap_event_probability_estimate(n: int, cells: int) -> float:
    """Estimate of ``P(E^{10*1})`` via the decomposition of Equation (1).

    ``P(E^{10*1}) = sum_k P(E^{10*1} | mu = k) P(mu = k)`` with the exact
    conditional probability above and the exact occupancy pmf.  The sum is
    exact up to the approximation that, conditional on ``mu = k``, all
    empty-cell patterns are equally likely — which holds for the
    multinomial allocation used here, making this an accurate predictor of
    the sufficient-condition probability of Lemma 1.
    """
    if n < 0:
        raise AnalysisError(f"n must be non-negative, got {n}")
    if cells <= 0:
        raise AnalysisError(f"cells must be positive, got {cells}")
    total = 0.0
    for k in range(cells + 1):
        conditional = _conditional_gap_probability(k, cells)
        if conditional == 0.0:
            continue
        weight = empty_cells_pmf(n, cells, k)
        if weight == 0.0:
            continue
        total += conditional * weight
    return min(max(total, 0.0), 1.0)


def gap_event_probability_at_mean(n: int, cells: int) -> float:
    """The single term of Equation (1) at ``k = E[mu]`` used by Theorem 4.

    The proof of Theorem 4 lower-bounds ``P(E^{10*1})`` by the contribution
    of ``k = floor(E[mu(n, C)])`` alone, evaluating ``P(mu = k)`` with the
    RHID normal limit law.  This function reproduces that bound.
    """
    law = limit_law(n, cells)
    k = int(math.floor(law.mean))
    conditional = _conditional_gap_probability(min(max(k, 0), cells), cells)
    return conditional * law.pmf(k)


def isolated_node_probability_1d(n: int, side: float, transmitting_range: float) -> float:
    """Probability that at least one node is isolated (union-bound style).

    The earlier lower bound of [11] analyses isolated nodes.  For a node in
    the interior of the line the probability that no other node falls within
    distance ``r`` is approximately ``(1 - 2r/l)^{n-1}`` (boundary nodes
    have ``(1 - r/l)^{n-1}``); the union bound over nodes gives an upper
    estimate that is informative when small.
    """
    if n < 1:
        raise AnalysisError(f"n must be at least 1, got {n}")
    if side <= 0:
        raise AnalysisError(f"side must be positive, got {side}")
    if transmitting_range < 0:
        raise AnalysisError(
            f"transmitting_range must be non-negative, got {transmitting_range}"
        )
    if transmitting_range >= side:
        return 0.0
    interior = max(1.0 - 2.0 * transmitting_range / side, 0.0) ** (n - 1)
    estimate = n * interior
    return min(estimate, 1.0)


def disconnection_probability_estimate_1d(
    n: int, side: float, transmitting_range: float
) -> float:
    """Exact disconnection probability of a uniform 1-D placement.

    Simply ``1 - P(connected)`` with the closed-form connectivity
    probability; serves as the ground truth the occupancy-based estimates
    are compared against in the Theorem 5 benchmark.
    """
    return 1.0 - connectivity_probability_1d_exact(n, side, transmitting_range)
