"""Problem statements as value objects.

The paper defines two problems:

* **MTR** (minimum transmitting range, stationary): given ``n`` nodes
  placed in ``[0, l]^d``, what is the minimum ``r`` such that the resulting
  communication graph is connected?
* **MTRM** (minimum transmitting range, mobile): with nodes allowed to move
  during ``[0, T]``, what is the minimum ``r`` such that the graph is
  connected during a fraction ``f`` of the interval?

:class:`MTRInstance` and :class:`MTRMInstance` capture the parameters of a
concrete instance and provide the derived quantities (``C = l / r``,
``alpha = r n / l``) the analysis keeps re-deriving.  They are deliberately
plain dataclasses: solving them is the job of
:mod:`repro.connectivity.critical_range` (exact, per placement),
:mod:`repro.analysis.bounds_1d` (asymptotic, 1-D) and
:mod:`repro.simulation.search` (Monte-Carlo, mobile).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.geometry.region import Region


@dataclass(frozen=True)
class MTRInstance:
    """An instance of the stationary minimum-transmitting-range problem.

    Attributes:
        node_count: number of nodes ``n``.
        side: region side ``l``.
        dimension: region dimension ``d``.
    """

    node_count: int
    side: float
    dimension: int = 2

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ConfigurationError(
                f"node_count must be at least 1, got {self.node_count}"
            )
        if self.side <= 0:
            raise ConfigurationError(f"side must be positive, got {self.side}")
        if self.dimension < 1:
            raise ConfigurationError(
                f"dimension must be at least 1, got {self.dimension}"
            )

    @property
    def region(self) -> Region:
        """The deployment region ``[0, side]^dimension``."""
        return Region(side=self.side, dimension=self.dimension)

    @property
    def density(self) -> float:
        """Node density ``n / l^d``."""
        return self.node_count / self.region.volume

    def cells_for_range(self, transmitting_range: float) -> float:
        """``C = l / r`` — the occupancy cell count of Section 3 (1-D view)."""
        if transmitting_range <= 0:
            raise ConfigurationError(
                f"transmitting_range must be positive, got {transmitting_range}"
            )
        return self.side / transmitting_range

    def alpha_for_range(self, transmitting_range: float) -> float:
        """``alpha = n / C = r n / l`` — the load factor of the occupancy model."""
        return self.node_count / self.cells_for_range(transmitting_range)

    def range_product(self, transmitting_range: float) -> float:
        """The product ``r * n`` that Theorem 5 characterises."""
        return transmitting_range * self.node_count


@dataclass(frozen=True)
class MTRMInstance:
    """An instance of the mobile minimum-transmitting-range problem.

    Attributes:
        node_count: number of nodes ``n``.
        side: region side ``l``.
        dimension: region dimension ``d`` (the paper simulates ``d = 2``).
        steps: number of mobility steps in the operational interval.
        connectivity_fraction: required fraction ``f`` of steps during which
            the graph must be connected (1.0 for ``r100``, 0.9 for ``r90``…).
    """

    node_count: int
    side: float
    steps: int
    connectivity_fraction: float
    dimension: int = 2

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ConfigurationError(
                f"node_count must be at least 1, got {self.node_count}"
            )
        if self.side <= 0:
            raise ConfigurationError(f"side must be positive, got {self.side}")
        if self.steps < 1:
            raise ConfigurationError(f"steps must be at least 1, got {self.steps}")
        if not 0.0 < self.connectivity_fraction <= 1.0:
            raise ConfigurationError(
                "connectivity_fraction must be in (0, 1], got "
                f"{self.connectivity_fraction}"
            )
        if self.dimension < 1:
            raise ConfigurationError(
                f"dimension must be at least 1, got {self.dimension}"
            )

    @property
    def region(self) -> Region:
        """The deployment region ``[0, side]^dimension``."""
        return Region(side=self.side, dimension=self.dimension)

    @property
    def stationary_instance(self) -> MTRInstance:
        """The stationary MTR instance with the same geometry."""
        return MTRInstance(
            node_count=self.node_count, side=self.side, dimension=self.dimension
        )
