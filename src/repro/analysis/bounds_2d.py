"""Two-dimensional critical-range asymptotics (Penrose / Gupta–Kumar).

The paper's analytical contribution is one-dimensional, and it evaluates
two-dimensional networks only by simulation.  The 2-D theory nevertheless
exists — Penrose's longest-MST-edge limit law and the Gupta–Kumar critical
power result — and this module implements it so the simulated
``rstationary`` values of the 2-D experiments can be checked against
analytical predictions, exactly as the 1-D experiment checks Theorem 5.

For ``n`` points uniform in a square of area ``A``, Penrose (1997) shows
that the longest edge ``M_n`` of the Euclidean MST (which equals the
critical transmitting range of the placement) satisfies::

    P( n * pi * M_n^2 / A - log n  <=  x )  ->  exp(-e^{-x})

i.e. ``n pi M_n^2 / A - log n`` converges to a Gumbel distribution.  From
this, the range at which a random placement is connected with probability
``p`` is::

    r(p) = sqrt( A * (log n - log(-log p)) / (pi * n) )

which reduces to the Gupta–Kumar threshold for ``p`` fixed and ``n`` large.

The limit law is stated for a boundary-free region (torus); on the square,
border and corner nodes have fewer neighbours and push the critical range
some tens of percent higher at the moderate ``n`` of the paper's
simulations.  The tests therefore validate the law against the *toroidal*
critical range (:func:`repro.connectivity.critical_range.critical_range_toroidal`)
and treat the square-region comparison as order-of-magnitude only.
"""

from __future__ import annotations

import math

from repro.exceptions import AnalysisError


def _validate(node_count: int, side: float) -> None:
    if node_count < 2:
        raise AnalysisError(f"node_count must be at least 2, got {node_count}")
    if side <= 0:
        raise AnalysisError(f"side must be positive, got {side}")


def critical_range_distribution_2d(
    node_count: int, side: float, radius: float
) -> float:
    """Asymptotic ``P(critical range <= radius)`` for a uniform 2-D placement.

    Uses the Penrose Gumbel limit; accurate already for a few dozen nodes,
    which is the regime of the paper's 2-D simulations.
    """
    _validate(node_count, side)
    if radius < 0:
        raise AnalysisError(f"radius must be non-negative, got {radius}")
    if radius == 0.0:
        return 0.0
    area = side * side
    x = node_count * math.pi * radius * radius / area - math.log(node_count)
    # Guard the double exponential against overflow for very small radii.
    if x < -700.0:
        return 0.0
    return math.exp(-math.exp(-x))


def range_for_connectivity_2d(
    node_count: int, side: float, probability: float = 0.99
) -> float:
    """Range at which a uniform 2-D placement is connected with probability ``p``.

    Inverts the Gumbel limit law:
    ``r = sqrt(A (log n - log(-log p)) / (pi n))``.
    """
    _validate(node_count, side)
    if not 0.0 < probability < 1.0:
        raise AnalysisError(f"probability must be in (0, 1), got {probability}")
    area = side * side
    gumbel_term = -math.log(-math.log(probability))
    value = area * (math.log(node_count) + gumbel_term) / (math.pi * node_count)
    return math.sqrt(max(value, 0.0))


def nodes_for_connectivity_2d(
    transmitting_range: float, side: float, probability: float = 0.99
) -> int:
    """Nodes needed so a uniform 2-D placement connects with probability ``p``.

    Numerically inverts :func:`range_for_connectivity_2d` in ``n`` (the
    relation ``pi r^2 n = A (log n + c)`` has no closed form); uses a
    fixed-point iteration that converges in a handful of steps for all
    realistic parameters.
    """
    if transmitting_range <= 0:
        raise AnalysisError(
            f"transmitting_range must be positive, got {transmitting_range}"
        )
    if side <= 0:
        raise AnalysisError(f"side must be positive, got {side}")
    if not 0.0 < probability < 1.0:
        raise AnalysisError(f"probability must be in (0, 1), got {probability}")
    area = side * side
    gumbel_term = -math.log(-math.log(probability))
    ratio = area / (math.pi * transmitting_range * transmitting_range)
    n = max(2.0, ratio)
    for _ in range(200):
        updated = max(2.0, ratio * (math.log(n) + gumbel_term))
        if abs(updated - n) < 1e-9:
            n = updated
            break
        n = updated
    return int(math.ceil(n))


def isolated_node_probability_2d(
    node_count: int, side: float, transmitting_range: float
) -> float:
    """Union-bound probability that some node is isolated (2-D analogue).

    A node in the interior of the square is isolated when no other node
    falls in the disk of radius ``r`` around it, which happens with
    probability ``(1 - pi r^2 / A)^{n-1}``; the union bound over nodes
    gives the weaker disconnection criterion the paper contrasts its 1-D
    analysis against.
    """
    _validate(node_count, side)
    if transmitting_range < 0:
        raise AnalysisError(
            f"transmitting_range must be non-negative, got {transmitting_range}"
        )
    area = side * side
    disk = math.pi * transmitting_range * transmitting_range
    if disk >= area:
        return 0.0
    single = (1.0 - disk / area) ** (node_count - 1)
    return min(node_count * single, 1.0)
