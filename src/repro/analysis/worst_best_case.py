"""Worst-case and best-case placements (discussion after Theorem 5).

The paper contrasts the random-placement result with two deterministic
extremes when ``n`` is linear in ``l``:

* **worst case** — nodes clustered at the two ends of the line require a
  transmitting range of order ``l`` (in ``d`` dimensions, of order
  ``l * sqrt(d)`` in the very worst corner-to-corner arrangement);
* **best case** — equally spaced nodes require only the constant spacing
  ``l / n`` (1-D) or the lattice spacing ``l / ceil(n^{1/d})`` (d-D).

Random placement sits in between, needing ``Theta(log l)`` when
``n = Theta(l)``.
"""

from __future__ import annotations

import math

from repro.exceptions import AnalysisError


def worst_case_range(side: float, dimension: int = 1) -> float:
    """Range required when nodes may be clustered at opposite corners.

    This is the diameter of the region, ``l * sqrt(d)`` — the value quoted
    in Section 2 as the only safe choice when nothing is known about the
    placement.
    """
    if side <= 0:
        raise AnalysisError(f"side must be positive, got {side}")
    if dimension < 1:
        raise AnalysisError(f"dimension must be at least 1, got {dimension}")
    return side * math.sqrt(dimension)


def best_case_range_1d(node_count: int, side: float) -> float:
    """Range required by the best (equally spaced) 1-D placement.

    ``n`` nodes equally spaced on ``[0, l]`` at positions
    ``l/(2n), 3l/(2n), ...`` have consecutive spacing ``l / n``; that
    spacing is exactly the critical range.
    """
    if node_count < 1:
        raise AnalysisError(f"node_count must be at least 1, got {node_count}")
    if side <= 0:
        raise AnalysisError(f"side must be positive, got {side}")
    if node_count == 1:
        return 0.0
    return side / node_count


def best_case_range_2d(node_count: int, side: float) -> float:
    """Range required by a square-lattice placement in 2-D.

    ``n`` nodes on the densest square lattice covering ``[0, l]^2`` sit
    ``l / ceil(sqrt(n))`` apart along the axes; that spacing connects the
    lattice (each node reaches its axis-aligned neighbours).
    """
    if node_count < 1:
        raise AnalysisError(f"node_count must be at least 1, got {node_count}")
    if side <= 0:
        raise AnalysisError(f"side must be positive, got {side}")
    if node_count == 1:
        return 0.0
    per_axis = int(math.ceil(math.sqrt(node_count)))
    return side / per_axis


def random_placement_range_order_1d(node_count: int, side: float) -> float:
    """Order-of-magnitude range for random 1-D placement with ``n = Theta(l)``.

    When ``n`` is proportional to ``l`` the Theorem 5 product ``l log l``
    divided by ``n`` gives a range of order ``log l``; this helper returns
    exactly ``log l`` scaled by ``l / n`` so the three regimes (worst, random,
    best) can be tabulated side by side in the benchmark.
    """
    if node_count < 1:
        raise AnalysisError(f"node_count must be at least 1, got {node_count}")
    if side <= 0:
        raise AnalysisError(f"side must be positive, got {side}")
    return (side / node_count) * max(math.log(side), 1.0)
