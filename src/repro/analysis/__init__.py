"""Analytical results of the paper (Section 3) and related theory.

* :mod:`repro.analysis.mtr` — formal statements of the MTR and MTRM
  problems as value objects that the rest of the library consumes.
* :mod:`repro.analysis.bounds_1d` — Theorems 3–5: the ``r n = Theta(l log l)``
  characterisation of asymptotically-almost-sure connectivity on a line,
  with predictors for the critical range and node count.
* :mod:`repro.analysis.disconnection` — occupancy-based estimates of the
  probability of the ``{10*1}`` gap event of Lemma 1 and of disconnection.
* :mod:`repro.analysis.worst_best_case` — the worst-case (corner clusters)
  and best-case (equal spacing) ranges discussed after Theorem 5.
* :mod:`repro.analysis.gupta_kumar` — the 2-D dense-network comparator of
  Gupta & Kumar used to contextualise the 2-D simulations.
"""

from repro.analysis.bounds_1d import (
    critical_product_1d,
    nodes_for_connectivity_1d,
    range_for_connectivity_1d,
    range_lower_bound_1d,
    range_upper_bound_1d,
)
from repro.analysis.disconnection import (
    disconnection_probability_estimate_1d,
    gap_event_probability_estimate,
    isolated_node_probability_1d,
)
from repro.analysis.gupta_kumar import gupta_kumar_critical_range
from repro.analysis.mtr import MTRInstance, MTRMInstance
from repro.analysis.worst_best_case import (
    best_case_range_1d,
    best_case_range_2d,
    worst_case_range,
)

__all__ = [
    "MTRInstance",
    "MTRMInstance",
    "best_case_range_1d",
    "best_case_range_2d",
    "critical_product_1d",
    "disconnection_probability_estimate_1d",
    "gap_event_probability_estimate",
    "gupta_kumar_critical_range",
    "isolated_node_probability_1d",
    "nodes_for_connectivity_1d",
    "range_for_connectivity_1d",
    "range_lower_bound_1d",
    "range_upper_bound_1d",
    "worst_case_range",
]
