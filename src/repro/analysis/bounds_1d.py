"""Theorems 3–5: the critical scaling ``r n = Theta(l log l)`` in one dimension.

Theorem 5 of the paper states that for ``n`` nodes uniform on ``[0, l]``
with ``1 << r << l``, the communication graph is asymptotically almost
surely connected **iff** ``r n ∈ Ω(l log l)``.  The functions in this
module turn that characterisation into usable predictors:

* :func:`critical_product_1d` — the threshold value ``l log l`` of the
  product ``r n``;
* :func:`range_for_connectivity_1d` — the predicted critical range for a
  given ``n`` (with an adjustable constant ``c``);
* :func:`nodes_for_connectivity_1d` — the dual: nodes needed for a given
  fixed transmitter range (the "dimensioning" formulation of Section 2);
* :func:`range_upper_bound_1d` / :func:`range_lower_bound_1d` — the two
  sides of the Theorem 5 sandwich, exposed separately so the benchmark can
  show empirical critical ranges landing between them.

There is also an exact finite-``n`` reference: the probability that a
uniform 1-D placement is connected at range ``r`` has a closed form
(the classical uniform-spacings result),
``P(connected) = sum_{k} (-1)^k binom(n-1, k) (1 - k r / l)_+^{n}`` over
``k <= l / r``, implemented in :func:`connectivity_probability_1d_exact`
and used by the tests to validate both the simulator and the asymptotics.
"""

from __future__ import annotations

import math

from repro.exceptions import AnalysisError


def critical_product_1d(side: float) -> float:
    """The Theorem 5 threshold ``l log l`` for the product ``r n``.

    For ``side <= 1`` the logarithm is non-positive; the function returns 0
    in that case (any positive product exceeds the threshold), mirroring the
    asymptotic nature of the statement.
    """
    if side <= 0:
        raise AnalysisError(f"side must be positive, got {side}")
    return side * max(math.log(side), 0.0)


def range_for_connectivity_1d(node_count: int, side: float, constant: float = 1.0) -> float:
    """Predicted critical range ``r ≈ c · l log l / n`` from Theorem 5.

    Args:
        node_count: number of nodes ``n``.
        side: line length ``l``.
        constant: the multiplicative constant hidden in the Theta; empirical
            calibration (and the simulations in [1, 11]) put it close to 1.
    """
    if node_count < 1:
        raise AnalysisError(f"node_count must be at least 1, got {node_count}")
    if constant <= 0:
        raise AnalysisError(f"constant must be positive, got {constant}")
    return constant * critical_product_1d(side) / node_count


def nodes_for_connectivity_1d(
    transmitting_range: float, side: float, constant: float = 1.0
) -> int:
    """Nodes needed for a.a.s. connectivity at a fixed range (dual form).

    ``n ≈ c · l log l / r``, rounded up.  This is the dimensioning question
    posed in Section 2: how many devices with a given transceiver must be
    scattered over a region of length ``l``.
    """
    if transmitting_range <= 0:
        raise AnalysisError(
            f"transmitting_range must be positive, got {transmitting_range}"
        )
    if constant <= 0:
        raise AnalysisError(f"constant must be positive, got {constant}")
    product = critical_product_1d(side)
    if product == 0.0:
        return 1
    return int(math.ceil(constant * product / transmitting_range))


def range_upper_bound_1d(node_count: int, side: float, constant: float = 2.0) -> float:
    """A range guaranteeing a.a.s. connectivity (Theorem 3 direction).

    Any ``r`` with ``r n >= c · l log l`` for a sufficiently large constant
    is enough; the default constant 2 is comfortably above the empirical
    threshold.
    """
    return range_for_connectivity_1d(node_count, side, constant=constant)


def range_lower_bound_1d(node_count: int, side: float, constant: float = 0.25) -> float:
    """A range at which connectivity a.a.s. *fails* (Theorem 4 direction).

    Any ``r`` with ``l << r n << l log l`` gives a non-vanishing probability
    of disconnection; the default constant 0.25 of the threshold product is
    well inside that window for the sizes used in the benchmarks.
    """
    return range_for_connectivity_1d(node_count, side, constant=constant)


def connectivity_probability_1d_exact(
    node_count: int, side: float, transmitting_range: float
) -> float:
    """Exact probability that a uniform 1-D placement is connected.

    For ``n`` points uniform on ``[0, l]`` and range ``r``, the graph is
    connected iff every one of the ``n - 1`` gaps between consecutive order
    statistics is at most ``r``.  The probability that ``k`` specified
    spacings all exceed ``r`` is ``(1 - k r / l)_+^n`` (uniform spacings),
    so inclusion–exclusion over the interior gaps gives::

        P = sum_{k=0}^{min(n-1, floor(l/r))} (-1)^k binom(n-1, k) (1 - k r / l)^n

    This finite-``n`` formula is used as an oracle in tests and to draw the
    "exact" curve in the Theorem 5 benchmark.
    """
    if node_count < 1:
        raise AnalysisError(f"node_count must be at least 1, got {node_count}")
    if side <= 0:
        raise AnalysisError(f"side must be positive, got {side}")
    if transmitting_range < 0:
        raise AnalysisError(
            f"transmitting_range must be non-negative, got {transmitting_range}"
        )
    if node_count == 1:
        return 1.0
    if transmitting_range == 0.0:
        return 0.0
    if transmitting_range >= side:
        return 1.0
    n = node_count
    ratio = transmitting_range / side
    total = 0.0
    for k in range(n):
        base = 1.0 - k * ratio
        if base <= 0.0:
            # (1 - k r / l)_+ vanishes for every larger k as well.
            break
        log_term = _log_binomial(n - 1, k) + n * math.log(base)
        term = math.exp(log_term)
        total += term if k % 2 == 0 else -term
    return min(max(total, 0.0), 1.0)


def range_for_connectivity_probability_1d(
    node_count: int,
    side: float,
    probability: float,
    tolerance: float = 1e-9,
) -> float:
    """Smallest range at which the exact 1-D connectivity probability reaches
    ``probability`` (bisection on :func:`connectivity_probability_1d_exact`).

    This gives a non-asymptotic "r such that P(connected) >= p" predictor
    that the experiments compare against the Theorem 5 scaling.
    """
    if not 0.0 < probability < 1.0:
        raise AnalysisError(f"probability must be in (0, 1), got {probability}")
    low, high = 0.0, side
    for _ in range(200):
        mid = 0.5 * (low + high)
        if connectivity_probability_1d_exact(node_count, side, mid) >= probability:
            high = mid
        else:
            low = mid
        if high - low <= tolerance:
            break
    return high


def _log_binomial(a: int, b: int) -> float:
    return math.lgamma(a + 1) - math.lgamma(b + 1) - math.lgamma(a - b + 1)
