"""Shared type aliases and light-weight value objects.

The library passes node positions around as ``numpy`` arrays of shape
``(n, d)`` where ``n`` is the number of nodes and ``d`` the dimension of the
deployment region.  This module centralises the aliases used in type hints
throughout the code base so that signatures stay short and consistent.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

#: A position array of shape ``(n, d)``; ``float64`` throughout the library.
Positions = np.ndarray

#: A single node index.
NodeId = int

#: An undirected edge between two node indices.
Edge = tuple[int, int]

#: Anything accepted as a seed for the library's random number generators.
SeedLike = Union[int, np.random.Generator, None]

#: A sequence of scalar samples (used by the statistics helpers).
Samples = Sequence[float]


def as_positions(points: Union[Positions, Sequence[Sequence[float]]]) -> Positions:
    """Coerce ``points`` into a ``(n, d)`` ``float64`` array.

    One-dimensional input of length ``n`` is interpreted as ``n`` points on a
    line and reshaped to ``(n, 1)``.

    Raises:
        ValueError: if the input has more than two dimensions.
    """
    array = np.asarray(points, dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValueError(
            f"positions must be a (n, d) array, got shape {array.shape!r}"
        )
    return array
