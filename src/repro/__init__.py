"""Reproduction of *An Evaluation of Connectivity in Mobile Wireless Ad Hoc
Networks* (Santi & Blough, DSN 2002).

The library answers the paper's two questions:

1. **Stationary networks** (Section 3) — how large must the common
   transmitting range ``r`` be so that ``n`` uniformly placed nodes in
   ``[0, l]^d`` form a connected communication graph?  For ``d = 1`` the
   answer is ``r n = Theta(l log l)`` (Theorem 5), implemented analytically
   in :mod:`repro.analysis` on top of the occupancy theory in
   :mod:`repro.occupancy`.
2. **Mobile networks** (Section 4) — how much larger must ``r`` be to keep
   the network connected during a fraction of the operational time while
   nodes move?  Answered by simulation: mobility models in
   :mod:`repro.mobility`, the engine in :mod:`repro.simulation`, and the
   figure reproductions in :mod:`repro.experiments`.

Quickstart::

    import repro

    # Stationary: exact critical range of a random placement.
    region = repro.Region.square(1000.0)
    points = repro.uniform_placement(64, region, repro.make_rng(7))
    r_star = repro.critical_range(points)

    # Mobile: the Figure 2 thresholds at a reduced scale.
    config = repro.SimulationConfig.paper_waypoint(
        side=1024.0, steps=100, iterations=3, seed=7
    )
    thresholds = repro.estimate_thresholds(config)
    print(thresholds.r100, thresholds.r90, thresholds.r10, thresholds.r0)
"""

from repro.analysis.bounds_1d import (
    connectivity_probability_1d_exact,
    critical_product_1d,
    nodes_for_connectivity_1d,
    range_for_connectivity_1d,
)
from repro.analysis.mtr import MTRInstance, MTRMInstance
from repro.availability import (
    AvailabilityReport,
    availability_from_frames,
    partial_availability_from_frames,
)
from repro.connectivity import (
    critical_range,
    critical_range_for_component_fraction,
    is_placement_connected,
    largest_component_fraction_of_placement,
    observe_placement,
)
from repro.dissemination import (
    DisseminationResult,
    simulate_epidemic_dissemination,
)
from repro.energy import EnergyModel, energy_savings_fraction, savings_table
from repro.exceptions import (
    AnalysisError,
    ConfigurationError,
    ReproError,
    SearchError,
    SimulationError,
)
from repro.campaigns import CampaignRunner, CampaignSpec
from repro.experiments import get_experiment, list_experiments
from repro.geometry import GridIndex, KDTree, Region
from repro.graph import (
    CommunicationGraph,
    build_communication_graph,
    connected_components,
    is_connected,
    largest_component_fraction,
)
from repro.mobility import (
    DrunkardModel,
    GaussMarkovModel,
    MobilityTrace,
    RandomDirectionModel,
    RandomWaypointModel,
    StationaryModel,
    record_trace,
)
from repro.occupancy import (
    classify_domain,
    empty_cells_mean,
    empty_cells_pmf,
    empty_cells_variance,
    has_gap_pattern,
)
from repro.placement import (
    clustered_placement,
    corner_clusters_placement,
    grid_placement,
    uniform_placement,
)
from repro.propagation import (
    LogDistancePathLoss,
    LogNormalShadowing,
    build_probabilistic_graph,
)
from repro.simulation import (
    ComponentThresholds,
    MobilitySpec,
    MobilityThresholds,
    NetworkConfig,
    SimulationConfig,
    collect_frame_statistics,
    estimate_component_thresholds,
    estimate_thresholds,
    run_fixed_range,
    stationary_critical_range,
)
from repro.stats import make_rng
from repro.store import ResultStore
from repro.topology import knn_topology, mst_range_assignment

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "AvailabilityReport",
    "CampaignRunner",
    "CampaignSpec",
    "CommunicationGraph",
    "ComponentThresholds",
    "ConfigurationError",
    "DisseminationResult",
    "DrunkardModel",
    "EnergyModel",
    "GaussMarkovModel",
    "GridIndex",
    "KDTree",
    "LogDistancePathLoss",
    "LogNormalShadowing",
    "MTRInstance",
    "MTRMInstance",
    "MobilitySpec",
    "MobilityThresholds",
    "MobilityTrace",
    "NetworkConfig",
    "RandomDirectionModel",
    "RandomWaypointModel",
    "Region",
    "ReproError",
    "ResultStore",
    "SearchError",
    "SimulationConfig",
    "SimulationError",
    "StationaryModel",
    "__version__",
    "availability_from_frames",
    "build_communication_graph",
    "build_probabilistic_graph",
    "classify_domain",
    "clustered_placement",
    "collect_frame_statistics",
    "connected_components",
    "connectivity_probability_1d_exact",
    "corner_clusters_placement",
    "critical_product_1d",
    "critical_range",
    "critical_range_for_component_fraction",
    "empty_cells_mean",
    "empty_cells_pmf",
    "empty_cells_variance",
    "energy_savings_fraction",
    "estimate_component_thresholds",
    "estimate_thresholds",
    "get_experiment",
    "grid_placement",
    "has_gap_pattern",
    "is_connected",
    "is_placement_connected",
    "knn_topology",
    "largest_component_fraction",
    "largest_component_fraction_of_placement",
    "list_experiments",
    "make_rng",
    "mst_range_assignment",
    "nodes_for_connectivity_1d",
    "observe_placement",
    "partial_availability_from_frames",
    "range_for_connectivity_1d",
    "record_trace",
    "run_fixed_range",
    "savings_table",
    "simulate_epidemic_dissemination",
    "stationary_critical_range",
    "uniform_placement",
]
