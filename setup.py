"""Setuptools shim.

The pyproject.toml carries all metadata; this file exists so that the
package can be installed in editable mode on environments whose setuptools
lacks PEP 660 support (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
