#!/usr/bin/env sh
# Mechanical checks for collection and performance regressions.
#
#   sh scripts/ci_check.sh
#
# 1. The full tier-1 suite must collect and pass from a clean checkout
#    (guards against the pytest basename-collision regression this repo
#    shipped with).
# 2. The parallel/vectorized perf smoke benchmark must pass at smoke
#    scale: parallel results bit-identical to serial, vectorized frame
#    reduction faster than the dense reference sweep.
# 3. The sweep fan-out / columnar payload smoke benchmark must pass at
#    smoke scale: parallel sweeps exactly equal to serial, fixed-range
#    result payload >= 10x smaller than the object-list containers.
set -eu
cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_parallel_scaling.py -q

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_sweep_scaling.py -q
