#!/usr/bin/env sh
# Mechanical checks for collection and performance regressions.
#
#   sh scripts/ci_check.sh
#
# 1. The full tier-1 suite must collect and pass from a clean checkout
#    (guards against the pytest basename-collision regression this repo
#    shipped with).
# 2. The parallel/vectorized perf smoke benchmark must pass at smoke
#    scale: parallel results bit-identical to serial, vectorized frame
#    reduction faster than the dense reference sweep.
# 3. The sweep fan-out / columnar payload smoke benchmark must pass at
#    smoke scale: parallel sweeps exactly equal to serial, fixed-range
#    result payload >= 10x smaller than the object-list containers.
# 4. The campaign cache benchmark must pass at smoke scale: a warm
#    re-run is a pure cache hit (zero computed values, >= 5x faster) and
#    a checkpoint-only store reassembles every sweep without recomputing.
# 5. A campaign smoke run through the real CLI: cold run, warm re-run
#    (which must report zero computed values), status, clean.
# 6. The campaign scheduler benchmark must pass at smoke scale: four
#    heterogeneous scenarios under one total worker budget, scheduler at
#    budget 4 >= 1.5x faster than the serial scenario loop, results
#    bit-identical at every budget.
# 7. A scheduler smoke through the real CLI (--total-workers): cold
#    concurrent run, then a warm re-run that must report zero computed
#    values (scheduler and serial paths address identical store entries).
# 8. An iteration-resume smoke: a multi-iteration value killed partway
#    resumes at the first unfinished iteration, recomputes nothing, and
#    matches the uninterrupted run bit for bit.
# 9. The shared-memory transport benchmark must pass at smoke scale:
#    worker->parent hand-off of a paper-scale frame-statistics payload
#    >= 2x faster through shared memory than through pickle, delivery
#    bit-identical (serialization-bound, so enforced on any host).
# 10. The iteration-sharding benchmark must pass at smoke scale: a
#    sharded single-iteration run bit-identical to serial on any host,
#    and >= 1.5x faster at 4 workers on hosts with >= 4 cores.
# 11. A campaign gc smoke through the real CLI: a tight --max-bytes
#    budget evicts entries, a second run under the same budget is stable.
# 12. The backend lane: the kernel-parity tests run explicitly (every
#    host backend — numpy and the numpy-strict verification backend —
#    must produce bit-identical kernel outputs), and the backend
#    dispatch benchmark must pass at smoke scale: the seam's default
#    NumPy path < 2% over hand-inlined pre-seam NumPy; GPU bars are
#    timed only on hosts that can resolve a device backend.
# 13. The fault-tolerance lane: the supervision-overhead benchmark must
#    pass at smoke scale (armed retries/lease < 3% over the unsupervised
#    gather on a clean run; recovering from one injected worker SIGKILL
#    <= 1.5x the clean run, results bit-identical), and a chaos smoke
#    through the real CLI: a campaign with a worker-kill fault plan armed
#    (REPRO_FAULTS) and --max-retries 2 must complete with exit 0, a warm
#    re-run must report zero computed values (the recovered run addressed
#    the same store entries a healthy one would), and no stale staging
#    directories may survive.
# 14. Every benchmark above writes a BENCH_<name>.json summary into
#    $REPRO_BENCH_OUT; they are collected and printed at the end, so the
#    perf trajectory is tracked as structured data across PRs.
# 15. The telemetry-overhead benchmark must pass at smoke scale: tracing
#    a scheduled campaign costs < 2% wall clock over --no-telemetry, and
#    the traced run's sink must actually contain the campaign's task
#    spans (cheap because tracing is cheap, not because it didn't run).
# 16. A telemetry smoke through the real CLI: a traced campaign run,
#    then `campaign report` (text summary and --chrome-trace export);
#    every line of the per-run trace.jsonl must parse as JSON, the
#    report must aggregate the run's spans, and the Chrome export must
#    be loadable trace_event JSON.
# 17. The distributed fan-out benchmark must pass at smoke scale: two
#    loopback HTTP workers bit-identical to one, and >= 1.4x faster on
#    hosts with >= 4 cores (serve + two workers need room to overlap).
# 18. A distributed smoke through the real CLI: `campaign serve` on a
#    loopback port (--url-file announces the picked port), two
#    `campaign work` processes drain the example grid, all three exit 0,
#    and a warm re-serve must report zero computed values (the
#    distributed run addressed the same store entries a local one
#    would).
# 19. The query-service benchmark must pass at smoke scale: hot answers
#    sub-millisecond p50 / single-digit-millisecond p99 and cold misses
#    under 100 ms p99 on any host, a zipfian stream mostly served from
#    the LRU, and the event loop never blocked by store IO (1 ms
#    heartbeat lag stays bounded while cold queries decode cells).
# 20. A query smoke through the real CLI, both halves of the contract:
#    against a store warmed by `campaign run examples/query_smoke.toml`,
#    `query serve` + `query ask` answer an in-grid question with
#    refine=false from exact stored rows; against an EMPTY store the
#    same question answers refine=true and enqueues one refinement on
#    the fill server, a stock `campaign work --server <fill-url>`
#    worker computes it and exits, and a re-ask becomes a refine=false
#    exact answer — the cache-fill loop closes end to end.  The cold
#    serve runs at --confidence-floor 0.5: one refined side of the
#    two-side cell clears the floor (the default floor of 1.0 keeps
#    flagging a half-complete cell, by design).
# 21. The perf-regression gate: the fresh BENCH_*.json summaries are
#    graded against benchmarks/baseline.json (host-normalized metrics
#    only, core-count-gated, noise-banded); a regression beyond the band
#    or a missing baselined summary fails the script.  Finally
#    $REPRO_BENCH_OUT/run_report.json is written — tier-1 result, bench
#    summaries, campaign-smoke outcome and the regression verdicts as
#    one structured CI artifact.
set -eu
cd "$(dirname "$0")/.."

REPRO_BENCH_OUT="${REPRO_BENCH_OUT:-$(mktemp -d)}"
export REPRO_BENCH_OUT

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_parallel_scaling.py -q

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_sweep_scaling.py -q

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_campaign_cache.py -q

CAMPAIGN_STORE="$(mktemp -d)"
trap 'rm -rf "$CAMPAIGN_STORE"' EXIT
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign run examples/campaign_smoke.toml --store "$CAMPAIGN_STORE" --quiet
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign run examples/campaign_smoke.toml --store "$CAMPAIGN_STORE" --quiet \
    | grep -q "0 value(s) computed"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign status examples/campaign_smoke.toml --store "$CAMPAIGN_STORE"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign clean examples/campaign_smoke.toml --store "$CAMPAIGN_STORE"

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_campaign_scheduler.py -q

SCHEDULER_STORE="$(mktemp -d)"
trap 'rm -rf "$CAMPAIGN_STORE" "$SCHEDULER_STORE"' EXIT
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign run examples/campaign_smoke.toml --store "$SCHEDULER_STORE" \
    --total-workers 2 --quiet
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign run examples/campaign_smoke.toml --store "$SCHEDULER_STORE" \
    --total-workers 2 --quiet \
    | grep -q "0 value(s) computed"

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_shm_transport.py -q

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_iteration_sharding.py -q

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest tests/backend -q

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_backend_dispatch.py -q

GC_STORE="$(mktemp -d)"
trap 'rm -rf "$CAMPAIGN_STORE" "$SCHEDULER_STORE" "$GC_STORE"' EXIT
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign run examples/campaign_smoke.toml --store "$GC_STORE" --quiet
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign gc --store "$GC_STORE" --max-bytes 1 \
    | grep -q "evicted [1-9]"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign gc --store "$GC_STORE" --max-bytes 1 \
    | grep -q "evicted 0"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python - <<'RESUME_SMOKE'
import tempfile

from repro.simulation.config import MobilitySpec, NetworkConfig, SimulationConfig
from repro.simulation.runner import collect_frame_statistics
from repro.store import ResultStore, StoreSweepCheckpoint

config = SimulationConfig(
    network=NetworkConfig(node_count=8, side=100.0, dimension=2),
    mobility=MobilitySpec.paper_waypoint(100.0),
    steps=4, iterations=5, seed=20020623,
)
reference = collect_frame_statistics(config)


class KillAfter:
    def __init__(self, inner, k):
        self.inner, self.k, self.saves = inner, k, 0

    def load(self, index):
        return self.inner.load(index)

    def save(self, index, result):
        self.inner.save(index, result)
        self.saves += 1
        if self.saves >= self.k:
            raise RuntimeError("simulated kill")


with tempfile.TemporaryDirectory() as root:
    checkpoint = StoreSweepCheckpoint(
        ResultStore(root), {"smoke": "iteration-resume"}, iterations=5
    )
    try:
        collect_frame_statistics(
            config, checkpoint=KillAfter(checkpoint.iteration_checkpoint(1.0), 3)
        )
        raise SystemExit("kill did not fire")
    except RuntimeError:
        pass
    resumed_checkpoint = checkpoint.iteration_checkpoint(1.0)
    resumed = collect_frame_statistics(config, checkpoint=resumed_checkpoint)
    assert resumed_checkpoint.loaded == 3, resumed_checkpoint.loaded
    assert resumed_checkpoint.saved == 2, resumed_checkpoint.saved
    assert resumed == reference
print("iteration-resume smoke: OK")
RESUME_SMOKE

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_fault_overhead.py -q

CHAOS_DIR="$(mktemp -d)"
CHAOS_STORE="$CHAOS_DIR/store"
trap 'rm -rf "$CAMPAIGN_STORE" "$SCHEDULER_STORE" "$GC_STORE" "$CHAOS_DIR"' EXIT
cat > "$CHAOS_DIR/faultplan.json" <<'PLAN'
{"faults": [{"site": "measure", "action": "kill", "at": 1}], "state_dir": ""}
PLAN
REPRO_FAULTS="$CHAOS_DIR/faultplan.json" \
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign run examples/campaign_smoke.toml --store "$CHAOS_STORE" \
    --total-workers 2 --max-retries 2 --quiet
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign run examples/campaign_smoke.toml --store "$CHAOS_STORE" \
    --total-workers 2 --quiet \
    | grep -q "0 value(s) computed"
if [ -d "$CHAOS_STORE/staging" ] && [ -n "$(ls -A "$CHAOS_STORE/staging")" ]; then
    echo "stale staging directories survived the chaos smoke" >&2
    exit 1
fi
echo "chaos smoke: OK"

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_telemetry_overhead.py -q

TELEMETRY_DIR="$(mktemp -d)"
TELEMETRY_STORE="$TELEMETRY_DIR/store"
trap 'rm -rf "$CAMPAIGN_STORE" "$SCHEDULER_STORE" "$GC_STORE" "$CHAOS_DIR" "$TELEMETRY_DIR"' EXIT
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign run examples/campaign_smoke.toml --store "$TELEMETRY_STORE" \
    --total-workers 2 --quiet
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign report --store "$TELEMETRY_STORE" \
    | grep "Spans:" > /dev/null
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign report --store "$TELEMETRY_STORE" \
    --chrome-trace "$TELEMETRY_DIR/chrome.json" > /dev/null
TELEMETRY_STORE="$TELEMETRY_STORE" TELEMETRY_DIR="$TELEMETRY_DIR" \
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python - <<'TELEMETRY_SMOKE'
import json
import os
from pathlib import Path

from repro.telemetry import report

store = Path(os.environ["TELEMETRY_STORE"])
run_dir = report.latest_run_dir(store / "telemetry")
assert run_dir is not None, "campaign run recorded no telemetry"
for line in (run_dir / "trace.jsonl").read_text().splitlines():
    if line.strip():
        json.loads(line)  # every line of the sink is valid JSON
trace = report.read_trace(run_dir)
assert trace["spans"], "trace holds no spans"
assert trace["bad_lines"] == 0, trace["bad_lines"]
built = report.load_or_build_report(run_dir)
assert built["spans"]["count"] == len(trace["spans"])
assert built["scenarios"], "report aggregated no scenarios"
chrome = json.loads((Path(os.environ["TELEMETRY_DIR"]) / "chrome.json").read_text())
events = chrome["traceEvents"]
assert events and all(e["ph"] in ("X", "i") for e in events)
assert all(isinstance(e["ts"], (int, float)) for e in events)
print("telemetry smoke: OK")
TELEMETRY_SMOKE

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_distributed_fanout.py -q

DIST_DIR="$(mktemp -d)"
DIST_STORE="$DIST_DIR/store"
trap 'rm -rf "$CAMPAIGN_STORE" "$SCHEDULER_STORE" "$GC_STORE" "$CHAOS_DIR" "$TELEMETRY_DIR" "$DIST_DIR"' EXIT
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign serve examples/campaign_smoke.toml --store "$DIST_STORE" \
    --port 0 --url-file "$DIST_DIR/url" --max-retries 2 --quiet \
    > "$DIST_DIR/serve.log" 2>&1 &
DIST_SERVE_PID=$!
DIST_TRIES=0
while [ ! -s "$DIST_DIR/url" ]; do
    DIST_TRIES=$((DIST_TRIES + 1))
    if [ "$DIST_TRIES" -gt 30 ]; then
        echo "campaign serve never published its URL" >&2
        cat "$DIST_DIR/serve.log" >&2 || true
        kill "$DIST_SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 1
done
DIST_URL="$(cat "$DIST_DIR/url")"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign work --server "$DIST_URL" --quiet &
DIST_W1_PID=$!
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign work --server "$DIST_URL" --quiet &
DIST_W2_PID=$!
wait "$DIST_W1_PID"
wait "$DIST_W2_PID"
wait "$DIST_SERVE_PID"
grep -q "value(s) computed" "$DIST_DIR/serve.log"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign serve examples/campaign_smoke.toml --store "$DIST_STORE" \
    --port 0 --quiet \
    | grep -q "0 value(s) computed"
echo "distributed smoke: OK"

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_query_service.py -q

QUERY_DIR="$(mktemp -d)"
trap 'rm -rf "$CAMPAIGN_STORE" "$SCHEDULER_STORE" "$GC_STORE" "$CHAOS_DIR" "$TELEMETRY_DIR" "$DIST_DIR" "$QUERY_DIR"' EXIT

# Warm half: a served warm store answers in-grid questions exactly.
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign run examples/query_smoke.toml --store "$QUERY_DIR/warm-store" --quiet
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    query serve examples/query_smoke.toml --store "$QUERY_DIR/warm-store" \
    --port 0 --url-file "$QUERY_DIR/warm-url" \
    > "$QUERY_DIR/warm-serve.log" 2>&1 &
QUERY_WARM_PID=$!
QUERY_TRIES=0
while [ ! -s "$QUERY_DIR/warm-url" ]; do
    QUERY_TRIES=$((QUERY_TRIES + 1))
    if [ "$QUERY_TRIES" -gt 30 ]; then
        echo "query serve (warm) never published its URL" >&2
        cat "$QUERY_DIR/warm-serve.log" >&2 || true
        kill "$QUERY_WARM_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 1
done
QUERY_WARM_URL="$(cat "$QUERY_DIR/warm-url")"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    query ask --url "$QUERY_WARM_URL" --side 256 --probability 0.9 --json \
    > "$QUERY_DIR/warm-answer.json"
grep -q '"refine": false' "$QUERY_DIR/warm-answer.json"
grep -q '"source": "exact"' "$QUERY_DIR/warm-answer.json"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    query ask --url "$QUERY_WARM_URL" --side 400 --range 50 \
    | grep -q "connectivity probability"
kill -TERM "$QUERY_WARM_PID"
wait "$QUERY_WARM_PID"

# Fill half: an empty store answers refine=true, enqueues the missing
# simulation, a stock worker computes it, and the re-ask is exact.
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    query serve examples/query_smoke.toml --store "$QUERY_DIR/cold-store" \
    --port 0 --url-file "$QUERY_DIR/cold-url" \
    --fill-url-file "$QUERY_DIR/fill-url" --max-retries 2 \
    --confidence-floor 0.5 \
    > "$QUERY_DIR/cold-serve.log" 2>&1 &
QUERY_COLD_PID=$!
QUERY_TRIES=0
while [ ! -s "$QUERY_DIR/cold-url" ] || [ ! -s "$QUERY_DIR/fill-url" ]; do
    QUERY_TRIES=$((QUERY_TRIES + 1))
    if [ "$QUERY_TRIES" -gt 30 ]; then
        echo "query serve (cold) never published its URLs" >&2
        cat "$QUERY_DIR/cold-serve.log" >&2 || true
        kill "$QUERY_COLD_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 1
done
QUERY_COLD_URL="$(cat "$QUERY_DIR/cold-url")"
QUERY_FILL_URL="$(cat "$QUERY_DIR/fill-url")"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    query ask --url "$QUERY_COLD_URL" --side 256 --probability 0.9 --json \
    > "$QUERY_DIR/cold-answer.json"
grep -q '"refine": true' "$QUERY_DIR/cold-answer.json"
grep -q '"refine_task": "' "$QUERY_DIR/cold-answer.json"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign work --server "$QUERY_FILL_URL" --quiet
QUERY_TRIES=0
while :; do
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
        query ask --url "$QUERY_COLD_URL" --side 256 --probability 0.9 --json \
        > "$QUERY_DIR/refined-answer.json"
    if grep -q '"refine": false' "$QUERY_DIR/refined-answer.json"; then
        break
    fi
    QUERY_TRIES=$((QUERY_TRIES + 1))
    if [ "$QUERY_TRIES" -gt 30 ]; then
        echo "refined answer never landed in the serving cache" >&2
        cat "$QUERY_DIR/refined-answer.json" >&2 || true
        kill "$QUERY_COLD_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 1
done
grep -q '"source": "exact"' "$QUERY_DIR/refined-answer.json"
kill -TERM "$QUERY_COLD_PID"
wait "$QUERY_COLD_PID"
echo "query smoke: OK"

if PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.telemetry.regression \
    --baseline benchmarks/baseline.json --results "$REPRO_BENCH_OUT" \
    --json "$REPRO_BENCH_OUT/regression_verdicts.json"; then
    REGRESSION_STATUS=passed
else
    REGRESSION_STATUS=failed
fi

python - <<'COLLECT_BENCH'
import json
import os
from pathlib import Path

out = Path(os.environ["REPRO_BENCH_OUT"])
summaries = sorted(out.glob("BENCH_*.json"))
if not summaries:
    raise SystemExit(f"no BENCH_*.json summaries found in {out}")
print(f"\ncollected {len(summaries)} benchmark summaries from {out}:")
for path in summaries:
    document = json.loads(path.read_text())
    metrics = document.get("metrics", {})
    headline = ", ".join(
        f"{key}={value:.3g}" if isinstance(value, float) else f"{key}={value}"
        for key, value in sorted(metrics.items())
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    )
    print(f"  {path.name} [{document.get('scale')}]: {headline}")
COLLECT_BENCH

REGRESSION_STATUS="$REGRESSION_STATUS" python - <<'RUN_REPORT'
import json
import os
import time
from pathlib import Path

out = Path(os.environ["REPRO_BENCH_OUT"])
verdicts_path = out / "regression_verdicts.json"
verdicts = (
    json.loads(verdicts_path.read_text()) if verdicts_path.is_file() else []
)
report = {
    "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    # set -eu: reaching this step means every earlier gate passed.
    "tier1": {"status": "passed"},
    "campaign_smoke": {"status": "passed"},
    "benchmarks": {
        path.name[len("BENCH_"):-len(".json")]: json.loads(path.read_text())
        for path in sorted(out.glob("BENCH_*.json"))
    },
    "regression": {
        "status": os.environ["REGRESSION_STATUS"],
        "verdicts": verdicts,
    },
}
path = out / "run_report.json"
path.write_text(json.dumps(report, indent=2, sort_keys=True))
print(f"CI run report written to {path}")
RUN_REPORT

if [ "$REGRESSION_STATUS" != passed ]; then
    echo "perf regression gate failed (see verdicts above)" >&2
    exit 1
fi
