#!/usr/bin/env sh
# Mechanical checks for collection and performance regressions.
#
#   sh scripts/ci_check.sh
#
# 1. The full tier-1 suite must collect and pass from a clean checkout
#    (guards against the pytest basename-collision regression this repo
#    shipped with).
# 2. The parallel/vectorized perf smoke benchmark must pass at smoke
#    scale: parallel results bit-identical to serial, vectorized frame
#    reduction faster than the dense reference sweep.
# 3. The sweep fan-out / columnar payload smoke benchmark must pass at
#    smoke scale: parallel sweeps exactly equal to serial, fixed-range
#    result payload >= 10x smaller than the object-list containers.
# 4. The campaign cache benchmark must pass at smoke scale: a warm
#    re-run is a pure cache hit (zero computed values, >= 5x faster) and
#    a checkpoint-only store reassembles every sweep without recomputing.
# 5. A campaign smoke run through the real CLI: cold run, warm re-run
#    (which must report zero computed values), status, clean.
set -eu
cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_parallel_scaling.py -q

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_sweep_scaling.py -q

REPRO_BENCH_SCALE=smoke PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/bench_campaign_cache.py -q

CAMPAIGN_STORE="$(mktemp -d)"
trap 'rm -rf "$CAMPAIGN_STORE"' EXIT
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign run examples/campaign_smoke.toml --store "$CAMPAIGN_STORE" --quiet
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign run examples/campaign_smoke.toml --store "$CAMPAIGN_STORE" --quiet \
    | grep -q "0 value(s) computed"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign status examples/campaign_smoke.toml --store "$CAMPAIGN_STORE"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
    campaign clean examples/campaign_smoke.toml --store "$CAMPAIGN_STORE"
