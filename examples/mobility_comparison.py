#!/usr/bin/env python
"""Does the mobility model matter?  Reproducing the paper's comparison.

The paper's "somewhat surprising" finding is that the random waypoint model
(intentional motion) and the drunkard model (random motion) give almost the
same connectivity statistics: what matters is the *quantity* of mobility
(how many nodes are stationary), not its precise pattern.

This example compares four mobility models — the paper's two plus the
random-direction and Gauss–Markov extensions — on identical networks, and
then sweeps ``pstationary`` to reproduce the Figure 7 threshold phenomenon
(with about half the nodes stationary, the network behaves as if it were
fully stationary).

Run with::

    python examples/mobility_comparison.py
"""

from __future__ import annotations

import repro
from repro.experiments.report import ascii_chart, format_table
from repro.simulation.search import estimate_thresholds_from_statistics

SIDE = 1024.0
NODE_COUNT = 32
STEPS = 200
ITERATIONS = 3
SEED = 5


def model_specs():
    """The four mobility models, parameterised comparably."""
    return {
        "random waypoint": repro.MobilitySpec.paper_waypoint(SIDE),
        "drunkard": repro.MobilitySpec.paper_drunkard(SIDE),
        "random direction": repro.MobilitySpec(
            name="random-direction",
            parameters={"speed": 0.01 * SIDE, "travel_steps": 50, "tpause": 10},
        ),
        "gauss-markov": repro.MobilitySpec(
            name="gauss-markov",
            parameters={"mean_speed": 0.01 * SIDE, "alpha": 0.75, "noise_std": 0.2 * SIDE * 0.01},
        ),
    }


def compare_models() -> None:
    print("=" * 72)
    print("Connectivity thresholds under four mobility models")
    print("=" * 72)
    rstationary = repro.stationary_critical_range(
        NODE_COUNT, SIDE, dimension=2, iterations=300, seed=SEED, confidence=0.99
    )

    rows = []
    for label, spec in model_specs().items():
        config = repro.SimulationConfig(
            network=repro.NetworkConfig(node_count=NODE_COUNT, side=SIDE, dimension=2),
            mobility=spec,
            steps=STEPS,
            iterations=ITERATIONS,
            seed=SEED,
        )
        statistics = repro.collect_frame_statistics(config)
        thresholds = estimate_thresholds_from_statistics(statistics)
        rows.append(
            {
                "model": label,
                "r100/rstat": thresholds.r100 / rstationary,
                "r90/rstat": thresholds.r90 / rstationary,
                "r10/rstat": thresholds.r10 / rstationary,
                "r0/rstat": thresholds.r0 / rstationary,
            }
        )
    print()
    print(format_table(rows, precision=3))
    print("\nAll four rows are close: as the paper concludes, the existence of")
    print("mobility matters far more than the precise movement pattern.")


def stationary_fraction_sweep() -> None:
    print()
    print("=" * 72)
    print("Figure 7 phenomenon: the fraction of stationary nodes")
    print("=" * 72)
    rstationary = repro.stationary_critical_range(
        NODE_COUNT, SIDE, dimension=2, iterations=300, seed=SEED, confidence=0.99
    )

    fractions = [0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0]
    ratios = []
    for pstationary in fractions:
        config = repro.SimulationConfig(
            network=repro.NetworkConfig(node_count=NODE_COUNT, side=SIDE, dimension=2),
            mobility=repro.MobilitySpec.paper_waypoint(SIDE, pstationary=pstationary),
            steps=120,
            iterations=ITERATIONS,
            seed=SEED,
        )
        statistics = repro.collect_frame_statistics(config)
        thresholds = estimate_thresholds_from_statistics(statistics)
        ratios.append(thresholds.r100 / rstationary)

    print("\nr100 / rstationary as the stationary fraction grows:")
    print(ascii_chart(ratios, labels=[f"p={p:.1f}" for p in fractions], width=40))
    print("\nThe ratio drops as more nodes stay put; beyond roughly half the")
    print("nodes stationary the network needs no more range than a fully")
    print("stationary one - the threshold the paper highlights in Figure 7.")


def main() -> None:
    compare_models()
    stationary_fraction_sweep()


if __name__ == "__main__":
    main()
