#!/usr/bin/env python
"""Sensor-network energy study: how much battery does relaxed connectivity buy?

Section 4 of the paper argues that a sensor network used for environmental
monitoring does not need permanent, full connectivity: tolerating brief
disconnections (operating at r90 or r10 instead of r100) or keeping only a
fraction of the nodes connected (rl90 / rl75 / rl50) saves a large share of
the transmission energy, because transmit power grows like ``r ** alpha``.

This example reproduces that argument end to end on a mid-sized network:

1. estimate all the thresholds of Figures 2-6 for one system size,
2. convert them into energy savings and battery-lifetime multipliers,
3. report what the network still delivers at each threshold — availability,
   largest-component size, and pair reachability.

Run with::

    python examples/sensor_energy_tradeoff.py
"""

from __future__ import annotations

import repro
from repro.availability.estimator import (
    availability_from_frames,
    partial_availability_from_frames,
)
from repro.energy.savings import equivalent_lifetime_factor
from repro.experiments.report import format_table
from repro.simulation.search import (
    average_component_fraction_at_range,
    estimate_component_thresholds_from_statistics,
    estimate_thresholds_from_statistics,
)

SIDE = 2048.0
NODE_COUNT = 45
STEPS = 250
ITERATIONS = 3
SEED = 23


def main() -> None:
    print("Sensor field:", f"{NODE_COUNT} nodes in [0, {SIDE:.0f}]^2,",
          f"{STEPS} mobility steps x {ITERATIONS} runs (random waypoint)")

    config = repro.SimulationConfig(
        network=repro.NetworkConfig(node_count=NODE_COUNT, side=SIDE, dimension=2),
        mobility=repro.MobilitySpec.paper_waypoint(SIDE),
        steps=STEPS,
        iterations=ITERATIONS,
        seed=SEED,
    )
    statistics = repro.collect_frame_statistics(config)
    pooled = [frame for frames in statistics for frame in frames]

    thresholds = estimate_thresholds_from_statistics(statistics)
    components = estimate_component_thresholds_from_statistics(statistics)
    rstationary = repro.stationary_critical_range(
        NODE_COUNT, SIDE, dimension=2, iterations=300, seed=SEED, confidence=0.99
    )

    named_ranges = {
        "r100 (always connected)": thresholds.r100,
        "r90 (connected 90% of time)": thresholds.r90,
        "r10 (connected 10% of time)": thresholds.r10,
        "rl90 (90% of nodes in one component)": components.rl90,
        "rl75 (75% of nodes in one component)": components.rl75,
        "rl50 (half the nodes in one component)": components.rl50,
    }

    free_space = repro.EnergyModel(path_loss_exponent=2.0)
    two_ray = repro.EnergyModel(path_loss_exponent=4.0)

    rows = []
    for label, radius in named_ranges.items():
        availability = availability_from_frames(pooled, radius)
        partial = partial_availability_from_frames(pooled, radius, 0.75)
        rows.append(
            {
                "operating point": label,
                "range": radius,
                "range/rstationary": radius / rstationary,
                "energy saved vs r100 (a=2)": repro.energy_savings_fraction(
                    radius, thresholds.r100, free_space
                ),
                "energy saved vs r100 (a=4)": repro.energy_savings_fraction(
                    radius, thresholds.r100, two_ray
                ),
                "lifetime x (a=2)": equivalent_lifetime_factor(
                    radius, thresholds.r100, free_space
                ),
                "fully connected time": availability.availability,
                ">=75% nodes connected time": partial.availability,
                "avg largest component": average_component_fraction_at_range(
                    statistics, radius
                ),
            }
        )

    print()
    print(format_table(
        rows,
        columns=[
            "operating point", "range", "range/rstationary",
            "energy saved vs r100 (a=2)", "energy saved vs r100 (a=4)",
            "lifetime x (a=2)", "fully connected time",
            ">=75% nodes connected time", "avg largest component",
        ],
        precision=3,
    ))

    print()
    print("Reading the table:")
    print(" * dropping from r100 to r90 keeps the network connected ~90% of the")
    print("   time and still keeps almost every node in one component, while")
    print("   cutting transmission energy substantially;")
    print(" * at r10 the network is disconnected most of the time, but a large")
    print("   connected component persists - enough for delay-tolerant data")
    print("   collection - at a fraction of the energy;")
    print(" * the rl-thresholds show the same trade-off when the requirement is")
    print("   'keep a fraction of the nodes connected' rather than 'be connected")
    print("   some fraction of the time'.")

    print()
    print("Per-node topology control comparison (the protocols the paper cites):")
    rng = repro.make_rng(SEED)
    region = repro.Region.square(SIDE)
    placement = repro.uniform_placement(NODE_COUNT, region, rng)
    mst = repro.mst_range_assignment(placement)
    knn = repro.knn_topology(placement, k=min(6, NODE_COUNT - 1))
    uniform_energy = NODE_COUNT * free_space.node_power(repro.critical_range(placement))
    print(format_table(
        [
            {
                "scheme": "common range (MTR)",
                "max range": repro.critical_range(placement),
                "total energy (a=2)": uniform_energy,
            },
            {
                "scheme": "per-node MST assignment",
                "max range": mst.max_range(),
                "total energy (a=2)": mst.total_energy(free_space),
            },
            {
                "scheme": "k-nearest-neighbours (k=6)",
                "max range": knn.max_range(),
                "total energy (a=2)": knn.total_energy(free_space),
            },
        ],
        precision=4,
    ))


if __name__ == "__main__":
    main()
