#!/usr/bin/env python
"""Delay-tolerant data collection: what does operating at r10 really cost?

The paper's third dependability scenario (Section 4) is an environmental-
monitoring sensor network that "stays disconnected most of the time, but
temporary connection periods can be used to exchange data among nodes",
so each reading is "eventually received by the other nodes".  This example
quantifies that claim with the epidemic-dissemination extension:

1. estimate r100, r90 and r10 for a mobile network,
2. flood a sensor reading from one node at each of those ranges,
3. report coverage over time, delivery delay and the energy saved —
   i.e. the full cost/benefit picture of the paper's trade-off.

It also contrasts the ideal disk radio with a log-normal shadowing radio of
the same nominal range (the propagation extension).

Run with::

    python examples/delay_tolerant_collection.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.dissemination.epidemic import simulate_epidemic_dissemination
from repro.experiments.report import ascii_chart, format_table
from repro.mobility.trace import record_trace
from repro.propagation.links import connectivity_probability_monte_carlo
from repro.propagation.shadowing import LogNormalShadowing
from repro.simulation.search import estimate_thresholds_from_statistics

SIDE = 1024.0
NODE_COUNT = 36
STEPS = 400
SEED = 31


def main() -> None:
    print(f"Sensor field: {NODE_COUNT} nodes in [0, {SIDE:.0f}]^2, "
          f"{STEPS} mobility steps (random waypoint)\n")

    # ------------------------------------------------------------------ #
    # 1. Thresholds.
    # ------------------------------------------------------------------ #
    config = repro.SimulationConfig(
        network=repro.NetworkConfig(node_count=NODE_COUNT, side=SIDE, dimension=2),
        mobility=repro.MobilitySpec.paper_waypoint(SIDE),
        steps=STEPS,
        iterations=2,
        seed=SEED,
    )
    statistics = repro.collect_frame_statistics(config)
    thresholds = estimate_thresholds_from_statistics(statistics)
    print(f"Estimated thresholds: r100 = {thresholds.r100:.0f}, "
          f"r90 = {thresholds.r90:.0f}, r10 = {thresholds.r10:.0f}")

    # ------------------------------------------------------------------ #
    # 2. Epidemic dissemination over one recorded trace.
    # ------------------------------------------------------------------ #
    region = repro.Region.square(SIDE)
    rng = repro.make_rng(SEED)
    initial = repro.uniform_placement(NODE_COUNT, region, rng)
    model = repro.MobilitySpec.paper_waypoint(SIDE).create()
    trace = record_trace(model, initial, region, steps=STEPS, seed=SEED)

    rows = []
    coverage_curves = {}
    for label, radius in (
        ("r100", thresholds.r100),
        ("r90", thresholds.r90),
        ("r10", thresholds.r10),
        ("0.5 * r10", 0.5 * thresholds.r10),
    ):
        result = simulate_epidemic_dissemination(trace.frames, radius, source=0)
        coverage_curves[label] = result.coverage_by_step
        rows.append(
            {
                "operating range": label,
                "range": radius,
                "energy saved vs r100 (a=2)": repro.energy_savings_fraction(
                    radius, thresholds.r100
                ),
                "final coverage": result.final_coverage,
                "steps to 90% coverage": result.steps_to_reach(0.9)
                if result.steps_to_reach(0.9) is not None
                else float("nan"),
                "mean delivery delay": result.mean_delivery_delay(),
            }
        )

    print()
    print(format_table(rows, precision=3))

    print("\nCoverage after 1/4, 1/2 and all of the operational time:")
    quarters = [STEPS // 4 - 1, STEPS // 2 - 1, STEPS - 1]
    chart_rows = []
    for label, curve in coverage_curves.items():
        chart_rows.append(
            {
                "range": label,
                "25% of time": curve[quarters[0]],
                "50% of time": curve[quarters[1]],
                "end": curve[quarters[2]],
            }
        )
    print(format_table(chart_rows, precision=3))

    print("\nThe paper's claim holds: even at r10 — where the network is")
    print("disconnected most of the time — mobility carries the reading to")
    print("(nearly) every node, just later.  The cost of the energy saving is")
    print("delivery delay, not delivery failure.")

    # ------------------------------------------------------------------ #
    # 3. Ideal disk radio vs log-normal shadowing at the same nominal range.
    # ------------------------------------------------------------------ #
    print()
    print("Connectivity of the *initial* placement under a non-ideal radio")
    print("(nominal range set just above this placement's exact critical range):")
    nominal = repro.critical_range(initial) * 1.02
    rows = []
    for sigma in (0.0, 4.0, 8.0):
        shadowed = LogNormalShadowing.with_nominal_range(nominal, shadowing_std=sigma)
        probability = connectivity_probability_monte_carlo(
            initial, shadowed, iterations=80, seed=SEED
        )
        rows.append(
            {"shadowing sigma (dB)": sigma, "P(connected)": probability}
        )
    print(format_table(rows, precision=3))
    print("\nWith sigma = 0 the disk model of the paper is recovered exactly (the")
    print("placement is connected with certainty just above its critical range);")
    print("shadowing turns that sharp threshold into a probabilistic one.")


if __name__ == "__main__":
    main()
