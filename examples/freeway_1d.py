#!/usr/bin/env python
"""Freeway scenario: 1-dimensional connectivity and Theorem 5.

The paper motivates the 1-D analysis with vehicles on a freeway relaying
congestion information backwards.  This example:

* models a stretch of freeway as the line ``[0, l]`` with vehicles placed
  uniformly at random;
* shows Lemma 1 in action (an empty cell between occupied cells means the
  message chain is broken);
* compares the empirical critical transmitting range against the exact
  closed-form probability and the Theorem 5 scaling ``r n = Theta(l log l)``;
* tabulates how many radio-equipped vehicles are needed for an almost-surely
  connected chain at a given radio range (the dimensioning question of
  Section 2).

Run with::

    python examples/freeway_1d.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.bounds_1d import (
    connectivity_probability_1d_exact,
    critical_product_1d,
    nodes_for_connectivity_1d,
    range_for_connectivity_probability_1d,
)
from repro.connectivity.critical_range import longest_gap_1d
from repro.experiments.report import format_table
from repro.occupancy.cells import cell_occupancy_from_positions


def lemma1_demo() -> None:
    """Visualise the {10*1} empty-cell gap of Lemma 1 on a short freeway."""
    print("=" * 72)
    print("Lemma 1: an empty cell between occupied cells breaks the chain")
    print("=" * 72)

    freeway_length = 2000.0      # metres
    radio_range = 200.0          # metres
    vehicle_count = 12
    rng = repro.make_rng(3)
    positions = rng.uniform(0.0, freeway_length, size=(vehicle_count, 1))

    occupancy = cell_occupancy_from_positions(positions, freeway_length, radio_range)
    print(f"\n{vehicle_count} vehicles on a {freeway_length/1000:.0f} km stretch, "
          f"radio range {radio_range:.0f} m")
    print(f"Cell occupancy bit string (cells of {radio_range:.0f} m): {occupancy.bitstring}")
    print(f"Empty cells: {occupancy.empty_cells} / {occupancy.cell_count}")
    print(f"Contains a {{10*1}} gap: {occupancy.has_gap}")
    connected = repro.is_placement_connected(positions, radio_range)
    print(f"Communication chain connected: {connected}")
    if occupancy.has_gap:
        print("-> as Lemma 1 predicts, the gap implies the chain is broken")


def theorem5_demo() -> None:
    """Empirical critical product r*n against the l log l threshold."""
    print()
    print("=" * 72)
    print("Theorem 5: r * n must grow like l log l for a.a.s. connectivity")
    print("=" * 72)

    rows = []
    rng = repro.make_rng(17)
    for side in (500.0, 2000.0, 8000.0, 32000.0):
        vehicle_count = max(4, int(side // 20))   # one vehicle per 20 m on average
        # Empirical: 99th percentile of the exact critical range over many placements.
        samples = []
        for _ in range(200):
            positions = rng.uniform(0.0, side, size=(vehicle_count, 1))
            samples.append(longest_gap_1d(positions))
        empirical_r99 = float(np.quantile(samples, 0.99))
        exact_r99 = range_for_connectivity_probability_1d(vehicle_count, side, 0.99)
        rows.append(
            {
                "l (m)": side,
                "n": vehicle_count,
                "empirical r99": empirical_r99,
                "exact r99": exact_r99,
                "r99 * n": empirical_r99 * vehicle_count,
                "l log l": critical_product_1d(side),
                "ratio": empirical_r99 * vehicle_count / critical_product_1d(side),
            }
        )
    print()
    print(format_table(rows, precision=4))
    print("\nThe last column stays roughly constant: the empirical critical")
    print("product tracks l log l, the Theorem 5 scaling.")


def dimensioning_demo() -> None:
    """How many vehicles are needed for a connected chain at a given range?"""
    print()
    print("=" * 72)
    print("Dimensioning: vehicles needed for 99% connectivity at a fixed range")
    print("=" * 72)

    side = 10000.0   # a 10 km stretch
    rows = []
    for radio_range in (100.0, 250.0, 500.0, 1000.0):
        asymptotic = nodes_for_connectivity_1d(radio_range, side)
        # Refine with the exact formula: smallest n whose exact probability
        # reaches 0.99 (searched around the asymptotic prediction).
        exact = asymptotic
        for candidate in range(2, 20 * asymptotic):
            if connectivity_probability_1d_exact(candidate, side, radio_range) >= 0.99:
                exact = candidate
                break
        rows.append(
            {
                "radio range (m)": radio_range,
                "n (Theorem 5 estimate)": asymptotic,
                "n (exact, P>=0.99)": exact,
                "P(connected) at exact n": connectivity_probability_1d_exact(
                    exact, side, radio_range
                ),
            }
        )
    print()
    print(format_table(rows, precision=4))


def main() -> None:
    lemma1_demo()
    theorem5_demo()
    dimensioning_demo()


if __name__ == "__main__":
    main()
