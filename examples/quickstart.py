#!/usr/bin/env python
"""Quickstart: the library in five minutes.

This example walks through the paper's two questions on a small network:

1. *Stationary*: how large must the transmitting range be so that a random
   placement of ``n`` nodes in a square region is connected?
2. *Mobile*: how much larger must the range be to stay connected while the
   nodes move, and how much range (and therefore energy) can be saved by
   tolerating brief disconnections?

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.experiments.report import ascii_chart, format_table


def stationary_demo() -> float:
    """Critical range of one random placement plus the Monte-Carlo rstationary."""
    print("=" * 72)
    print("1. Stationary network: minimum transmitting range (MTR)")
    print("=" * 72)

    side = 1000.0
    node_count = 50
    region = repro.Region.square(side)
    rng = repro.make_rng(42)

    placement = repro.uniform_placement(node_count, region, rng)
    exact = repro.critical_range(placement)
    print(f"\n{node_count} nodes uniform in [0, {side:.0f}]^2")
    print(f"Exact critical range of this placement (longest MST edge): {exact:.1f}")

    graph = repro.build_communication_graph(placement, exact)
    print(f"Graph at that range: {graph.edge_count} edges, connected = "
          f"{repro.is_connected(graph)}")

    rstationary = repro.stationary_critical_range(
        node_count, side, dimension=2, iterations=300, seed=7, confidence=0.99
    )
    print(f"\nMonte-Carlo rstationary (99% of placements connected): {rstationary:.1f}")
    print("Analytical comparators:")
    from repro.analysis.gupta_kumar import gupta_kumar_critical_range
    from repro.analysis.worst_best_case import best_case_range_2d, worst_case_range

    rows = [
        {"placement": "best case (lattice)", "range": best_case_range_2d(node_count, side)},
        {"placement": "random (simulated)", "range": rstationary},
        {"placement": "Gupta-Kumar threshold", "range": gupta_kumar_critical_range(node_count, side)},
        {"placement": "worst case (corners)", "range": worst_case_range(side, 2)},
    ]
    print(format_table(rows, precision=4))
    return rstationary


def mobile_demo(rstationary: float) -> None:
    """Thresholds of the mobile problem (MTRM) and the energy trade-off."""
    print()
    print("=" * 72)
    print("2. Mobile network: range thresholds and the energy trade-off")
    print("=" * 72)

    side = 1000.0
    # ``workers`` fans the independent iterations out over processes; the
    # results are bit-identical to a serial run for the same seed, so feel
    # free to set it to your core count for the heavy paper-scale runs.
    config = repro.SimulationConfig(
        network=repro.NetworkConfig(node_count=50, side=side, dimension=2),
        mobility=repro.MobilitySpec.paper_waypoint(side),
        steps=300,
        iterations=3,
        seed=11,
        workers=2,
    )
    statistics = repro.collect_frame_statistics(config)

    from repro.simulation.search import (
        estimate_component_thresholds_from_statistics,
        estimate_thresholds_from_statistics,
    )

    thresholds = estimate_thresholds_from_statistics(statistics)
    components = estimate_component_thresholds_from_statistics(statistics)

    print("\nTransmitting-range thresholds (random waypoint, 300 steps x 3 runs):")
    labels = ["r100", "r90", "r10", "r0", "rl90", "rl75", "rl50"]
    values = [
        thresholds.r100, thresholds.r90, thresholds.r10, thresholds.r0,
        components.rl90, components.rl75, components.rl50,
    ]
    print(ascii_chart(values, labels=labels, width=44))
    print(f"\n(rstationary for the same geometry: {rstationary:.1f})")

    print("\nEnergy savings relative to r100 (transmit power ~ r^alpha):")
    ratios = {
        "r90": thresholds.r90 / thresholds.r100,
        "r10": thresholds.r10 / thresholds.r100,
        "rl50": components.rl50 / thresholds.r100,
    }
    free_space = repro.savings_table(ratios, repro.EnergyModel(path_loss_exponent=2.0))
    two_ray = repro.savings_table(ratios, repro.EnergyModel(path_loss_exponent=4.0))
    rows = [
        {
            "threshold": label,
            "range/r100": ratio,
            "savings (alpha=2)": free_space[label],
            "savings (alpha=4)": two_ray[label],
        }
        for label, ratio in ratios.items()
    ]
    print(format_table(rows, precision=3))

    from repro.availability.estimator import availability_from_frames

    pooled = [frame for frames in statistics for frame in frames]
    report = availability_from_frames(pooled, thresholds.r90)
    print(
        f"\nAvailability at r90: {report.availability:.1%} of steps connected, "
        f"longest outage {report.longest_down_length} steps"
    )


def main() -> None:
    rstationary = stationary_demo()
    mobile_demo(rstationary)
    print("\nDone.  See examples/freeway_1d.py and examples/sensor_energy_tradeoff.py")
    print("for the 1-D theory and the full energy study, and `adhoc-connectivity list`")
    print("for the figure-by-figure reproductions.")


if __name__ == "__main__":
    main()
