"""Cross-process trace acceptance tests.

The PR's headline claim: a campaign run with ``--total-workers 4``
produces a JSONL trace from which the full campaign → scenario → task →
iteration hierarchy can be reconstructed *across process boundaries* —
worker-side spans parent under scheduler-side spans through the
picklable context shims.  Plus the crash story: a SIGKILLed worker may
lose its unflushed tail but never corrupts the sink (every surviving
line is valid JSON) and the run report still aggregates the survivors.
Finally the Chrome ``trace_event`` export loads as schema-valid JSON.
"""

import json
from dataclasses import dataclass
from typing import Dict, Optional

import pytest

from repro import faults
from repro.campaigns import CampaignRunner, CampaignSpec
from repro.faults import FaultSpec
from repro.experiments.registry import (
    _REGISTRY,
    Experiment,
    ExperimentScale,
    register_experiment,
)
from repro.simulation.sweep import SweepCheckpoint, SweepResult, sweep_parameter
from repro.store import ResultStore
from repro.telemetry import report
from repro.telemetry.tracing import TRACE_FILE


def tree_spec():
    """One fig2 scenario sized so iterations outnumber workers but no
    shard spans appear (steps stay under the sharding threshold)."""
    return CampaignSpec.from_dict(
        {
            "name": "tree",
            "experiments": ["fig2"],
            "scale": "smoke",
            "overrides": {
                "sides": [256.0],
                "steps": 25,
                "iterations": 2,
                "stationary_iterations": 30,
            },
            "matrix": {"seed": [1]},
        }
    )


def run_traced_campaign(tmp_path, total_workers):
    store = ResultStore(tmp_path / "store")
    result = CampaignRunner(
        tree_spec(), store, total_workers=total_workers
    ).run()
    run_dir = report.latest_run_dir(store.root / "telemetry")
    assert run_dir is not None
    return result, run_dir


class TestSpanTree:
    def test_four_worker_campaign_reconstructs_full_hierarchy(self, tmp_path):
        result, run_dir = run_traced_campaign(tmp_path, total_workers=4)
        assert result.sweeps

        # Every line of the sink is valid JSON (append-only, full lines).
        lines = (
            (run_dir / TRACE_FILE).read_text(encoding="utf-8").splitlines()
        )
        records = [json.loads(line) for line in lines if line.strip()]
        spans = [r for r in records if r["type"] == "span"]

        # One trace binds every span from every process.
        manifest = json.loads(
            (run_dir / "run.json").read_text(encoding="utf-8")
        )
        assert {s["trace"] for s in spans} == {manifest["trace_id"]}

        # The hierarchy rebuilds with no orphans: every parent id exists.
        by_id = {s["span"]: s for s in spans}
        assert len(by_id) == len(spans)  # ids unique
        for record in spans:
            if record["parent"] is not None:
                assert record["parent"] in by_id, record

        def parent_name(record):
            return (
                by_id[record["parent"]]["name"]
                if record["parent"] is not None
                else None
            )

        names = {}
        for record in spans:
            names.setdefault(record["name"], []).append(record)
        assert set(names) >= {"campaign", "scenario", "task", "iteration"}

        (campaign,) = names["campaign"]
        assert campaign["parent"] is None
        for scenario in names["scenario"]:
            assert parent_name(scenario) == "campaign"
        for task in names["task"]:
            assert parent_name(task) == "scenario"
        iterations = names["iteration"]
        assert len(iterations) == 32  # 2 connectivity + 30 stationary
        for iteration in iterations:
            assert parent_name(iteration) == "task"

        # Spans genuinely crossed process boundaries: the scheduler's
        # spans and the workers' iteration spans carry different pids.
        assert {campaign["pid"]} != {i["pid"] for i in iterations}

        # Wall-clock containment: each iteration fits inside its task.
        for iteration in iterations:
            task = by_id[iteration["parent"]]
            assert iteration["start"] >= task["start"] - 0.5
            assert (
                iteration["start"] + iteration["wall"]
                <= task["start"] + task["wall"] + 0.5
            )

    def test_chrome_trace_export_is_schema_valid(self, tmp_path):
        _, run_dir = run_traced_campaign(tmp_path, total_workers=2)
        document = json.loads(
            json.dumps(report.chrome_trace(run_dir), default=str)
        )
        events = document["traceEvents"]
        assert events
        assert {e["ph"] for e in events} <= {"X", "i"}
        for event in events:
            assert isinstance(e_name := event["name"], str) and e_name
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["pid"], int)
            if event["ph"] == "X":
                assert isinstance(event["dur"], (int, float))
                assert event["dur"] >= 0
            else:
                assert event["s"] == "p"
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} >= {"campaign", "scenario"}


# --------------------------------------------------------------------------- #
# Crash tolerance
# --------------------------------------------------------------------------- #
CRASH_ID = "trace-crash-exp"


@dataclass(frozen=True)
class CrashMeasure:
    seed: int

    def __call__(self, value: float) -> Dict[str, float]:
        return {"metric": value * 2.0 + self.seed}


def _crash_measure(scale: ExperimentScale) -> CrashMeasure:
    return CrashMeasure(seed=scale.seed or 0)


def run_crash_experiment(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    return sweep_parameter(
        "side",
        scale.sides,
        _crash_measure(scale),
        workers=scale.sweep_workers,
        checkpoint=checkpoint,
    )


@pytest.fixture
def crash_experiment():
    experiment = register_experiment(
        Experiment(
            identifier=CRASH_ID,
            title="Crash experiment",
            description="Cheap sweep for the SIGKILL trace test.",
            paper_reference="(test only)",
            run=run_crash_experiment,
            parameter_name="side",
            sweep_measure=_crash_measure,
        )
    )
    yield experiment
    _REGISTRY.pop(CRASH_ID, None)


class TestCrashTolerance:
    def test_sigkilled_worker_leaves_trace_parseable(
        self, crash_experiment, tmp_path
    ):
        """A worker SIGKILLed mid-task loses only its unflushed spans:
        every line still on disk parses, and the sealed report aggregates
        the surviving processes' spans and the campaign outcome."""
        spec = CampaignSpec.from_dict(
            {
                "name": "crash",
                "experiments": [CRASH_ID],
                "scale": "smoke",
                "overrides": {
                    "sides": [10.0, 20.0, 30.0],
                    "steps": 1,
                    "iterations": 1,
                    "stationary_iterations": 1,
                },
                "matrix": {"seed": [1, 2]},
            }
        )
        store = ResultStore(tmp_path / "store")
        specs = [FaultSpec(site="measure", action="kill", at=2)]
        with faults.active(specs, tmp_path / "faultstate"):
            result = CampaignRunner(
                spec, store, total_workers=2, max_retries=2
            ).run()
        assert result.quarantined_tasks == 0
        assert set(result.sweeps) == {
            scenario.scenario_id for scenario in spec.scenarios()
        }

        run_dir = report.latest_run_dir(store.root / "telemetry")
        assert run_dir is not None
        for line in (
            (run_dir / TRACE_FILE).read_text(encoding="utf-8").splitlines()
        ):
            if line.strip():
                json.loads(line)  # every surviving line is valid JSON
        trace = report.read_trace(run_dir)
        assert trace["bad_lines"] == 0
        assert trace["spans"]

        built = report.load_or_build_report(run_dir)
        assert built["spans"]["count"] == len(trace["spans"])
        assert built["outcome"]["quarantined_tasks"] == 0
        assert sorted(built["outcome"]["scenarios"]) == sorted(
            result.sweeps
        )
        # Supervision metrics recorded the pool respawn and the retry.
        merged = built["metrics"]
        assert merged.get("supervision.retries", {}).get("value", 0) >= 1
