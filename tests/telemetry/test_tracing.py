"""Unit tests for the telemetry tracer core (:mod:`repro.telemetry`).

Covers the single-process contracts the cross-process tests build on:
no-op behaviour while disarmed, span records and parentage, error
status, manual spans, context propagation through picklable shims,
event annotation, buffered flushing, run lifecycle (arm/disarm via the
environment), metric drain/merge, and graceful degradation when the
sink fails (via the ``telemetry.flush`` fault site).
"""

import json
import os
import pickle
import warnings

import pytest

from repro import faults, telemetry
from repro.campaigns.progress import CacheHit
from repro.faults import FaultSpec
from repro.telemetry import metrics, report
from repro.telemetry.tracing import ENV_VAR, TRACE_FILE, _BUFFER_LIMIT


def read_records(run_dir):
    path = run_dir / TRACE_FILE
    if not path.is_file():
        return []
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]


def spans_by_name(records):
    return {r["name"]: r for r in records if r["type"] == "span"}


@pytest.fixture
def disarmed(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


@pytest.fixture
def run(tmp_path, disarmed):
    """An armed telemetry run, disarmed (and sealed) on the way out."""
    handle = telemetry.start_run(tmp_path / "telemetry", campaign="unit")
    yield handle
    handle.finish()


def _traced_child():
    with telemetry.span("child"):
        return 42


class TestDisarmed:
    def test_everything_is_a_noop(self, disarmed, tmp_path):
        assert not telemetry.enabled()
        assert telemetry.current_context() is None
        with telemetry.span("work", foo=1) as opened:
            opened.set(bar=2)
            assert opened.context() is None
        manual = telemetry.begin_span("manual")
        manual.end()
        telemetry.annotate("tick", data=1)
        telemetry.flush()
        with telemetry.attach({"trace": "t", "span": "s"}):
            pass
        assert list(tmp_path.iterdir()) == []

    def test_propagate_returns_fn_unchanged(self, disarmed):
        assert telemetry.propagate(_traced_child) is _traced_child


class TestSpans:
    def test_nested_spans_record_parentage(self, run):
        with telemetry.span("alpha", foo=1) as alpha:
            with telemetry.span("beta"):
                pass
        records = read_records(run.directory)
        named = spans_by_name(records)
        assert set(named) == {"alpha", "beta"}
        assert named["alpha"]["trace"] == run.trace_id
        assert named["alpha"]["parent"] is None
        assert named["beta"]["parent"] == alpha.context().span_id
        assert named["alpha"]["attrs"] == {"foo": 1}
        assert named["alpha"]["status"] == "ok"
        assert named["alpha"]["wall"] >= named["beta"]["wall"] >= 0.0
        assert named["alpha"]["pid"] == os.getpid()

    def test_exception_marks_span_error_and_still_flushes(self, run):
        with pytest.raises(ValueError):
            with telemetry.span("boom"):
                raise ValueError("nope")
        named = spans_by_name(read_records(run.directory))
        assert named["boom"]["status"] == "error"
        assert telemetry.current_context() is None

    def test_begin_span_is_manual_and_stack_free(self, run):
        opened = telemetry.begin_span("manual", kind="scenario")
        assert telemetry.current_context() is None  # not ambient
        opened.set(extra=True)
        opened.end()
        opened.end()  # idempotent: one record only
        telemetry.flush()
        records = [r for r in read_records(run.directory) if r["type"] == "span"]
        assert len(records) == 1
        assert records[0]["attrs"] == {"kind": "scenario", "extra": True}

    def test_buffer_auto_flushes_at_limit(self, run):
        for _ in range(_BUFFER_LIMIT):
            telemetry.begin_span("tick").end()
        # No stack-empty or explicit flush happened, yet the buffer limit
        # already pushed a full batch to disk.
        assert len(read_records(run.directory)) >= _BUFFER_LIMIT

    def test_propagate_shim_pickles_and_reparents(self, run):
        with telemetry.span("parent") as parent:
            shim = telemetry.propagate(_traced_child)
        assert shim is not _traced_child
        clone = pickle.loads(pickle.dumps(shim))
        assert clone() == 42
        telemetry.flush()
        named = spans_by_name(read_records(run.directory))
        assert named["child"]["parent"] == parent.context().span_id
        assert named["child"]["trace"] == run.trace_id

    def test_propagate_without_context_returns_fn(self, run):
        assert telemetry.propagate(_traced_child) is _traced_child


class TestAnnotations:
    def test_annotated_forwards_the_identical_event(self, run):
        seen = []
        wrapped = telemetry.annotated(seen.append)
        event = CacheHit(scenario_id="scn", key="abcdef0123456789")
        wrapped(event)
        assert len(seen) == 1 and seen[0] is event
        telemetry.flush()
        events = [r for r in read_records(run.directory) if r["type"] == "event"]
        assert len(events) == 1
        assert events[0]["name"] == "CacheHit"
        assert events[0]["data"] == {
            "scenario_id": "scn",
            "key": "abcdef0123456789",
        }

    def test_annotate_attaches_to_ambient_span(self, run):
        with telemetry.span("outer") as outer:
            telemetry.annotate("milestone", step=3)
        records = read_records(run.directory)
        (event,) = [r for r in records if r["type"] == "event"]
        assert event["span"] == outer.context().span_id
        assert event["trace"] == run.trace_id


class TestRunLifecycle:
    def test_start_run_arms_and_finish_disarms(self, tmp_path, disarmed):
        handle = telemetry.start_run(tmp_path / "telemetry", campaign="demo")
        assert telemetry.enabled()
        assert os.environ[ENV_VAR] == str(handle.directory)
        manifest = json.loads(
            (handle.directory / "run.json").read_text(encoding="utf-8")
        )
        assert manifest["campaign"] == "demo"
        assert manifest["trace_id"] == handle.trace_id
        with telemetry.span("only"):
            pass
        report_path = handle.finish()
        assert not telemetry.enabled()
        assert ENV_VAR not in os.environ
        built = json.loads(report_path.read_text(encoding="utf-8"))
        assert built["run_id"] == handle.run_id
        assert built["spans"]["count"] == 1
        assert handle.finish() is None  # sealing is once-only

    def test_finish_restores_previous_env(self, tmp_path, disarmed):
        os.environ[ENV_VAR] = "/somewhere/else"
        try:
            handle = telemetry.start_run(tmp_path / "telemetry")
            handle.finish()
            assert os.environ[ENV_VAR] == "/somewhere/else"
        finally:
            os.environ.pop(ENV_VAR, None)

    def test_run_ids_sort_chronologically(self, tmp_path, disarmed):
        first = telemetry.start_run(tmp_path / "telemetry")
        first.finish()
        second = telemetry.start_run(tmp_path / "telemetry")
        second.finish()
        runs = report.list_runs(tmp_path / "telemetry")
        assert [r.name for r in runs] == sorted(r.name for r in runs)
        assert report.latest_run_dir(tmp_path / "telemetry") == runs[-1]


class TestMetrics:
    def test_instruments_drain_and_reset(self, disarmed):
        metrics.drain()  # clean slate
        metrics.counter("hits").add()
        metrics.counter("hits").add(2.0)
        metrics.gauge("depth").set(7.0)
        metrics.histogram("lat").observe(0.5)
        metrics.histogram("lat").observe(1.5)
        snapshot = metrics.drain()
        assert snapshot["hits"] == {"kind": "counter", "value": 3.0}
        assert snapshot["depth"] == {"kind": "gauge", "value": 7.0}
        assert snapshot["lat"] == {
            "kind": "histogram",
            "count": 2,
            "total": 2.0,
            "min": 0.5,
            "max": 1.5,
        }
        assert metrics.drain() == {}  # drained registry is empty

    def test_merge_combines_process_snapshots(self):
        merged = metrics.merge(
            [
                {
                    "hits": {"kind": "counter", "value": 2.0},
                    "lat": {
                        "kind": "histogram",
                        "count": 1,
                        "total": 1.0,
                        "min": 1.0,
                        "max": 1.0,
                    },
                },
                {
                    "hits": {"kind": "counter", "value": 3.0},
                    "lat": {
                        "kind": "histogram",
                        "count": 2,
                        "total": 5.0,
                        "min": 0.5,
                        "max": 4.5,
                    },
                    "depth": {"kind": "gauge", "value": 9.0},
                },
            ]
        )
        assert merged["hits"]["value"] == 5.0
        assert merged["lat"] == {
            "kind": "histogram",
            "count": 3,
            "total": 6.0,
            "min": 0.5,
            "max": 4.5,
        }
        assert merged["depth"]["value"] == 9.0

    def test_flush_writes_metric_deltas(self, run):
        metrics.counter("unit.widgets").add(4.0)
        telemetry.flush()
        records = [
            r for r in read_records(run.directory) if r["type"] == "metrics"
        ]
        assert records and records[-1]["metrics"]["unit.widgets"] == {
            "kind": "counter",
            "value": 4.0,
        }


class TestDegradation:
    def test_failing_sink_degrades_once_and_never_raises(
        self, tmp_path, disarmed
    ):
        handle = telemetry.start_run(tmp_path / "telemetry", campaign="chaos")
        specs = [FaultSpec(site="telemetry.flush", action="io-error", count=0)]
        try:
            with faults.active(specs, tmp_path / "faultstate"):
                with warnings.catch_warnings(record=True) as caught:
                    warnings.simplefilter("always")
                    with telemetry.span("doomed"):
                        pass  # stack empties -> flush -> injected EIO
                    with telemetry.span("dropped"):
                        pass
                    telemetry.flush()
                degraded = [
                    w
                    for w in caught
                    if issubclass(w.category, telemetry.TelemetryDegradedWarning)
                ]
                assert len(degraded) == 1  # one warning, not one per flush
                assert read_records(handle.directory) == []
        finally:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                handle.finish()

    def test_degraded_run_still_seals_a_report(self, tmp_path, disarmed):
        handle = telemetry.start_run(tmp_path / "telemetry")
        specs = [FaultSpec(site="telemetry.flush", action="io-error", count=0)]
        with faults.active(specs, tmp_path / "faultstate"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                with telemetry.span("gone"):
                    pass
        report_path = handle.finish()
        built = json.loads(report_path.read_text(encoding="utf-8"))
        assert built["spans"]["count"] == 0
