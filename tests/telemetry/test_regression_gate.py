"""Tests for the perf-regression gate (:mod:`repro.telemetry.regression`).

Every verdict status is exercised — ok, improved, regressed, missing,
skipped-cores — across ratio and absolute band modes, and the CLI entry
point's exit codes are demonstrated on a synthetic regressed summary:
the acceptance path ``scripts/ci_check.sh`` relies on (pass on fresh
in-band results, exit 1 on an out-of-band slowdown).
"""

import json

import pytest

from repro.telemetry import regression
from repro.telemetry.regression import Verdict, compare, load_baseline


def write_summary(results_dir, name, metrics, cpu_count=8):
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(
            {
                "benchmark": name,
                "scale": "smoke",
                "host": {"cpu_count": cpu_count, "platform": "test"},
                "metrics": metrics,
            }
        ),
        encoding="utf-8",
    )
    return path


def baseline_doc(**benchmarks):
    return {"noise_band": 0.25, "benchmarks": benchmarks}


def by_key(verdicts):
    return {(v.benchmark, v.metric): v for v in verdicts}


class TestGrading:
    def test_ratio_band_ok_improved_regressed(self, tmp_path):
        baseline = baseline_doc(
            sched={
                "metrics": {
                    "ok": {"direction": "higher", "value": 2.0},
                    "improved": {"direction": "higher", "value": 2.0},
                    "regressed": {"direction": "higher", "value": 2.0},
                }
            }
        )
        write_summary(
            tmp_path, "sched", {"ok": 1.9, "improved": 2.6, "regressed": 1.4}
        )
        graded = by_key(compare(baseline, tmp_path))
        assert graded[("sched", "ok")].status == "ok"
        assert graded[("sched", "improved")].status == "improved"
        assert graded[("sched", "regressed")].status == "regressed"
        assert graded[("sched", "regressed")].failed()
        assert not graded[("sched", "ok")].failed()

    def test_lower_is_better_direction(self, tmp_path):
        baseline = baseline_doc(
            overhead={
                "metrics": {
                    "fraction": {
                        "direction": "lower",
                        "value": 0.01,
                        "mode": "absolute",
                        "band": 0.02,
                    }
                }
            }
        )
        write_summary(tmp_path, "overhead", {"fraction": 0.05})
        (verdict,) = compare(baseline, tmp_path)
        assert verdict.status == "regressed"  # 0.05 > 0.01 + 0.02

        write_summary(tmp_path, "overhead", {"fraction": 0.025})
        (verdict,) = compare(baseline, tmp_path)
        assert verdict.status == "ok"

        write_summary(tmp_path, "overhead", {"fraction": -0.02})
        (verdict,) = compare(baseline, tmp_path)
        assert verdict.status == "improved"

    def test_missing_metric_and_missing_summary_fail(self, tmp_path):
        baseline = baseline_doc(
            present={"metrics": {"gone": {"direction": "higher", "value": 1.0}}},
            absent={"metrics": {"x": {"direction": "higher", "value": 1.0}}},
        )
        write_summary(tmp_path, "present", {"other": 2.0})
        graded = by_key(compare(baseline, tmp_path))
        assert graded[("present", "gone")].status == "missing"
        assert graded[("absent", "*")].status == "missing"
        assert all(v.failed() for v in graded.values())

    def test_unreadable_summary_is_missing(self, tmp_path):
        baseline = baseline_doc(
            broken={"metrics": {"x": {"direction": "higher", "value": 1.0}}}
        )
        tmp_path.mkdir(exist_ok=True)
        (tmp_path / "BENCH_broken.json").write_text("{not json", encoding="utf-8")
        (verdict,) = compare(baseline, tmp_path)
        assert verdict.status == "missing" and "unreadable" in verdict.note

    def test_min_cores_gates_small_hosts(self, tmp_path):
        baseline = baseline_doc(
            parallel={
                "min_cores": 4,
                "metrics": {
                    "speedup": {"direction": "higher", "value": 3.0}
                },
            }
        )
        # The summary's own recorded host gates the bar ...
        write_summary(tmp_path, "parallel", {"speedup": 0.8}, cpu_count=1)
        (verdict,) = compare(baseline, tmp_path)
        assert verdict.status == "skipped-cores"
        assert not verdict.failed()
        # ... and a big enough host grades it for real.
        (verdict,) = compare(baseline, tmp_path, cpu_count=8)
        assert verdict.status == "regressed"

    def test_per_metric_band_overrides_file_band(self, tmp_path):
        baseline = baseline_doc(
            cache={
                "metrics": {
                    "speedup": {"direction": "higher", "value": 100.0,
                                "band": 0.5}
                }
            }
        )
        write_summary(tmp_path, "cache", {"speedup": 60.0})
        (verdict,) = compare(baseline, tmp_path)
        assert verdict.status == "ok"  # within the wide per-metric band

    def test_load_baseline_rejects_shapeless_documents(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"benchmarks": []}), encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(path)


class TestRendering:
    def test_render_orders_worst_first(self):
        verdicts = [
            Verdict("a", "m", "ok", baseline=1.0, current=1.0, note="fine"),
            Verdict("b", "m", "regressed", baseline=2.0, current=1.0,
                    note="bad"),
            Verdict("c", "m", "skipped-cores", note="small host"),
        ]
        lines = regression.render_verdicts(verdicts).splitlines()
        assert "regressed" in lines[0]
        assert "skipped-cores" in lines[-1]

    def test_verdicts_payload_is_json_ready(self):
        payload = regression.verdicts_payload(
            [Verdict("a", "m", "ok", baseline=1.0, current=1.1, note="n")]
        )
        assert json.loads(json.dumps(payload)) == payload
        assert payload[0]["status"] == "ok"


class TestMain:
    def baseline_path(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                baseline_doc(
                    sched={
                        "metrics": {
                            "speedup": {"direction": "higher", "value": 2.0}
                        }
                    }
                )
            ),
            encoding="utf-8",
        )
        return path

    def test_exit_zero_on_in_band_results(self, tmp_path, capsys):
        baseline = self.baseline_path(tmp_path)
        results = tmp_path / "results"
        write_summary(results, "sched", {"speedup": 2.1})
        code = regression.main(
            ["--baseline", str(baseline), "--results", str(results)]
        )
        assert code == 0
        assert "perf regression gate: OK" in capsys.readouterr().out

    def test_exit_one_on_synthetic_regression(self, tmp_path, capsys):
        """The acceptance demonstration: a synthetically slowed summary
        (speedup collapsed beyond the noise band) fails the gate."""
        baseline = self.baseline_path(tmp_path)
        results = tmp_path / "results"
        write_summary(results, "sched", {"speedup": 1.0})
        json_out = tmp_path / "verdicts.json"
        code = regression.main(
            ["--baseline", str(baseline), "--results", str(results),
             "--json", str(json_out)]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "regressed" in captured.out
        assert "FAIL" in captured.err
        payload = json.loads(json_out.read_text(encoding="utf-8"))
        assert payload[0]["status"] == "regressed"


class TestCheckedInBaseline:
    def test_repo_baseline_parses_and_names_real_benchmarks(self):
        """The checked-in baseline stays loadable and only references
        benchmarks that actually exist in benchmarks/."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        baseline = load_baseline(root / "benchmarks" / "baseline.json")
        assert baseline["benchmarks"]
        for name, spec in baseline["benchmarks"].items():
            assert (root / "benchmarks" / f"bench_{name}.py").is_file(), name
            assert spec.get("metrics"), name
            for metric_spec in spec["metrics"].values():
                assert metric_spec.get("direction") in {"higher", "lower"}
                float(metric_spec["value"])
