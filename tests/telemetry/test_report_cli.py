"""CLI tests for the telemetry surface: ``campaign report``, the
``--[no-]telemetry`` run flag, and the run-report-derived wall-clock /
last-activity suffix on ``campaign status``.

The campaign CLI's established text stays byte-compatible: with no
recorded run (or ``--no-telemetry``), ``campaign status`` prints exactly
the pre-telemetry lines.
"""

import json
import re

import pytest

from repro.cli import build_parser, main

TINY_CAMPAIGN = """
name = "cli-telemetry-demo"
experiments = ["fig2"]
scale = "smoke"

[overrides]
sides = [256.0]
steps = 8
iterations = 1
stationary_iterations = 15
seed = 5
"""


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "demo.toml"
    path.write_text(TINY_CAMPAIGN)
    return path


class TestParser:
    def test_report_subcommand_parses(self):
        arguments = build_parser().parse_args(
            ["campaign", "report", "--store", "s", "--run", "r",
             "--limit", "5", "--json", "--chrome-trace", "out.json"]
        )
        assert arguments.campaign_command == "report"
        assert arguments.store == "s"
        assert arguments.run == "r"
        assert arguments.limit == 5
        assert arguments.json is True
        assert arguments.chrome_trace == "out.json"

    def test_run_telemetry_flag_defaults_on(self):
        arguments = build_parser().parse_args(["campaign", "run", "spec.toml"])
        assert arguments.telemetry is True
        arguments = build_parser().parse_args(
            ["campaign", "run", "spec.toml", "--no-telemetry"]
        )
        assert arguments.telemetry is False


class TestReportCommand:
    def test_report_without_runs_exits_nonzero(self, tmp_path, capsys):
        assert main(
            ["campaign", "report", "--store", str(tmp_path / "empty")]
        ) == 1
        assert "No recorded runs" in capsys.readouterr().err

    def test_unknown_run_id_exits_nonzero(self, spec_path, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["campaign", "run", str(spec_path), "--store", str(store),
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "--store", str(store),
                     "--run", "nope"]) == 1
        assert "No run 'nope'" in capsys.readouterr().err

    def test_report_renders_run_summary(self, spec_path, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["campaign", "run", str(spec_path), "--store", str(store),
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "--store", str(store)]) == 0
        output = capsys.readouterr().out
        assert "campaign 'cli-telemetry-demo'" in output
        assert "Spans:" in output
        assert "Slowest spans" in output
        assert re.search(r"\bscenario\b", output)
        assert "Scenarios:" in output

    def test_report_json_and_chrome_trace(self, spec_path, tmp_path, capsys):
        store = tmp_path / "store"
        out = tmp_path / "trace.json"
        assert main(["campaign", "run", str(spec_path), "--store", str(store),
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "--store", str(store), "--json",
                     "--chrome-trace", str(out)]) == 0
        captured = capsys.readouterr().out
        json_text = captured[: captured.index("Chrome trace written")]
        report = json.loads(json_text)
        assert report["campaign"] == "cli-telemetry-demo"
        assert report["spans"]["count"] > 0
        assert report["spans"]["bad_lines"] == 0
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["traceEvents"]
        assert all("ph" in event for event in document["traceEvents"])

    def test_report_selects_named_run(self, spec_path, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["campaign", "run", str(spec_path), "--store", str(store),
                     "--quiet"]) == 0
        capsys.readouterr()
        runs = sorted((store / "telemetry").iterdir())
        assert len(runs) == 1
        assert main(["campaign", "report", "--store", str(store),
                     "--run", runs[0].name]) == 0
        assert runs[0].name in capsys.readouterr().out


class TestStatusSuffix:
    def status_lines(self, spec_path, store, capsys):
        assert main(["campaign", "status", str(spec_path), "--store",
                     str(store)]) == 0
        return capsys.readouterr().out.splitlines()

    def test_status_gains_wall_and_activity_from_report(
        self, spec_path, tmp_path, capsys
    ):
        store = tmp_path / "store"
        assert main(["campaign", "run", str(spec_path), "--store", str(store),
                     "--quiet"]) == 0
        capsys.readouterr()
        lines = self.status_lines(spec_path, store, capsys)
        (scenario_line,) = [l for l in lines if "complete" in l and "[" in l]
        assert re.search(
            r"\[wall \d+\.\d\ds, last activity "
            r"\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}\]$",
            scenario_line,
        )

    def test_status_without_telemetry_is_byte_identical(
        self, spec_path, tmp_path, capsys
    ):
        """An untraced store renders exactly the pre-telemetry status
        text — no suffix, no placeholder."""
        store = tmp_path / "store"
        assert main(["campaign", "run", str(spec_path), "--store", str(store),
                     "--quiet", "--no-telemetry"]) == 0
        assert not (store / "telemetry").exists()
        capsys.readouterr()
        lines = self.status_lines(spec_path, store, capsys)
        assert any("1/1 scenario(s) complete" in line for line in lines)
        assert not any("[wall" in line for line in lines)
        for line in lines[1:]:
            assert re.fullmatch(r"  \S.*?\s+\S.*", line) and "]" not in line
