"""Tests for repro.placement.strategies."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.geometry.region import Region
from repro.placement.strategies import (
    clustered_placement,
    corner_clusters_placement,
    grid_placement,
    perturbed_grid_placement,
    placement_by_name,
    uniform_placement,
)


class TestUniformPlacement:
    def test_shape_and_bounds(self, square_region, rng):
        points = uniform_placement(100, square_region, rng)
        assert points.shape == (100, 2)
        assert square_region.contains(points)

    def test_reproducible(self, square_region):
        a = uniform_placement(10, square_region, np.random.default_rng(1))
        b = uniform_placement(10, square_region, np.random.default_rng(1))
        assert np.allclose(a, b)

    def test_one_dimensional(self, line_region, rng):
        points = uniform_placement(20, line_region, rng)
        assert points.shape == (20, 1)


class TestGridPlacement:
    def test_1d_equal_spacing(self, line_region):
        points = grid_placement(10, line_region)
        coordinates = np.sort(points[:, 0])
        gaps = np.diff(coordinates)
        assert np.allclose(gaps, gaps[0])
        assert gaps[0] == pytest.approx(line_region.side / 10)

    def test_2d_lattice_count(self, square_region):
        points = grid_placement(9, square_region)
        assert points.shape == (9, 2)
        assert square_region.contains(points)

    def test_non_square_count(self, square_region):
        points = grid_placement(7, square_region)
        assert points.shape == (7, 2)

    def test_zero_count(self, square_region):
        assert grid_placement(0, square_region).shape == (0, 2)

    def test_negative_raises(self, square_region):
        with pytest.raises(ConfigurationError):
            grid_placement(-1, square_region)


class TestPerturbedGrid:
    def test_within_region(self, square_region, rng):
        points = perturbed_grid_placement(25, square_region, rng, jitter=0.4)
        assert square_region.contains(points)

    def test_zero_jitter_equals_grid(self, square_region, rng):
        perturbed = perturbed_grid_placement(16, square_region, rng, jitter=0.0)
        assert np.allclose(perturbed, grid_placement(16, square_region))

    def test_invalid_jitter(self, square_region, rng):
        with pytest.raises(ConfigurationError):
            perturbed_grid_placement(4, square_region, rng, jitter=0.9)


class TestClusteredPlacement:
    def test_within_region(self, square_region, rng):
        points = clustered_placement(60, square_region, rng, clusters=3)
        assert points.shape == (60, 2)
        assert square_region.contains(points)

    def test_clusters_concentrate_points(self, square_region):
        rng = np.random.default_rng(0)
        points = clustered_placement(200, square_region, rng, clusters=1, spread=0.01)
        # With one tight cluster the point spread is far below the region side.
        assert points.std() < square_region.side / 4

    def test_invalid_parameters(self, square_region, rng):
        with pytest.raises(ConfigurationError):
            clustered_placement(10, square_region, rng, clusters=0)
        with pytest.raises(ConfigurationError):
            clustered_placement(10, square_region, rng, spread=-0.5)

    def test_zero_count(self, square_region, rng):
        assert clustered_placement(0, square_region, rng).shape == (0, 2)


class TestCornerClusters:
    def test_split_between_corners(self, square_region, rng):
        points = corner_clusters_placement(10, square_region, rng, spread=0.01)
        near_origin = np.sum(np.all(points < square_region.side / 2, axis=1))
        near_far = np.sum(np.all(points > square_region.side / 2, axis=1))
        assert near_origin == 5
        assert near_far == 5

    def test_odd_count(self, square_region, rng):
        points = corner_clusters_placement(7, square_region, rng)
        assert points.shape == (7, 2)

    def test_requires_large_range(self, square_region, rng):
        from repro.connectivity.critical_range import critical_range

        points = corner_clusters_placement(20, square_region, rng, spread=0.01)
        # Connecting the two corner clusters needs a range close to the diagonal.
        assert critical_range(points) > 0.8 * square_region.side


class TestPlacementByName:
    def test_known_names(self):
        for name in ["uniform", "grid", "perturbed-grid", "clustered", "corners"]:
            assert callable(placement_by_name(name))

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            placement_by_name("hexagonal")
