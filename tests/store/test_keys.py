"""Tests for repro.store.keys: canonical, versioned cache keys."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.registry import ExperimentScale
from repro.simulation.config import MobilitySpec, NetworkConfig, SimulationConfig
from repro.store.codecs import SCHEMA_VERSION
from repro.store.keys import (
    cache_key,
    canonical_json,
    config_payload,
    normalize,
    scale_payload,
)


def make_scale(**overrides):
    base = dict(
        name="smoke",
        sides=(256.0, 1024.0),
        steps=25,
        iterations=2,
        stationary_iterations=30,
        parameter_points=3,
        seed=7,
    )
    base.update(overrides)
    return ExperimentScale(**base)


class TestNormalize:
    def test_dict_key_order_is_canonical(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_sequences_and_numpy_scalars(self):
        assert normalize((1, 2.5, np.float64(3.5), np.int64(4))) == [1, 2.5, 3.5, 4]
        assert normalize(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_rejects_unrepresentable_values(self):
        with pytest.raises(ConfigurationError):
            normalize({1: "non-string key"})
        with pytest.raises(ConfigurationError):
            normalize(object())
        with pytest.raises(ConfigurationError):
            normalize(float("nan"))


class TestCacheKey:
    def test_stable_and_sensitive(self):
        key = cache_key("sweep", {"x": 1, "y": [1, 2]})
        assert key == cache_key("sweep", {"y": [1, 2], "x": 1})
        assert key != cache_key("sweep", {"x": 2, "y": [1, 2]})
        assert key != cache_key("sweep-row", {"x": 1, "y": [1, 2]})

    def test_schema_version_in_key(self):
        payload = {"x": 1}
        assert cache_key("sweep", payload) == cache_key(
            "sweep", payload, schema_version=SCHEMA_VERSION
        )
        assert cache_key("sweep", payload) != cache_key(
            "sweep", payload, schema_version=SCHEMA_VERSION + 1
        )


class TestScalePayload:
    def test_drops_name_and_execution_fields(self):
        a = make_scale(name="smoke", workers=1, sweep_workers=1)
        b = make_scale(name="custom", workers=8, sweep_workers=4)
        assert scale_payload(a) == scale_payload(b)
        assert "workers" not in scale_payload(a)
        assert "name" not in scale_payload(a)

    def test_sensitive_to_logical_fields(self):
        assert scale_payload(make_scale(seed=7)) != scale_payload(make_scale(seed=8))
        assert scale_payload(make_scale(steps=25)) != scale_payload(
            make_scale(steps=26)
        )


class TestConfigPayload:
    def test_full_description_without_workers(self):
        config = SimulationConfig(
            network=NetworkConfig(node_count=16, side=256.0, dimension=2),
            mobility=MobilitySpec.paper_waypoint(256.0),
            steps=10,
            iterations=2,
            seed=3,
            workers=1,
        )
        payload = config_payload(config)
        assert payload["mobility"]["name"] == "waypoint"
        assert payload["network"]["side"] == 256.0
        assert "workers" not in payload
        assert config_payload(config.with_workers(8)) == payload
        faster = SimulationConfig(
            network=config.network,
            mobility=MobilitySpec.paper_waypoint(256.0, tpause=1),
            steps=10,
            iterations=2,
            seed=3,
        )
        assert config_payload(faster) != payload
