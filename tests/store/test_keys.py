"""Tests for repro.store.keys: canonical, versioned cache keys."""

import numpy as np
import pytest

from repro.backend import backend_names
from repro.exceptions import ConfigurationError
from repro.experiments.registry import ExperimentScale
from repro.simulation.config import MobilitySpec, NetworkConfig, SimulationConfig
from repro.store.codecs import SCHEMA_VERSION
from repro.store.keys import (
    cache_key,
    canonical_json,
    config_payload,
    normalize,
    scale_payload,
)


def make_scale(**overrides):
    base = dict(
        name="smoke",
        sides=(256.0, 1024.0),
        steps=25,
        iterations=2,
        stationary_iterations=30,
        parameter_points=3,
        seed=7,
    )
    base.update(overrides)
    return ExperimentScale(**base)


class TestNormalize:
    def test_dict_key_order_is_canonical(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_sequences_and_numpy_scalars(self):
        assert normalize((1, 2.5, np.float64(3.5), np.int64(4))) == [1, 2.5, 3.5, 4]
        assert normalize(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_rejects_unrepresentable_values(self):
        with pytest.raises(ConfigurationError):
            normalize({1: "non-string key"})
        with pytest.raises(ConfigurationError):
            normalize(object())
        with pytest.raises(ConfigurationError):
            normalize(float("nan"))


class TestCacheKey:
    def test_stable_and_sensitive(self):
        key = cache_key("sweep", {"x": 1, "y": [1, 2]})
        assert key == cache_key("sweep", {"y": [1, 2], "x": 1})
        assert key != cache_key("sweep", {"x": 2, "y": [1, 2]})
        assert key != cache_key("sweep-row", {"x": 1, "y": [1, 2]})

    def test_schema_version_in_key(self):
        payload = {"x": 1}
        assert cache_key("sweep", payload) == cache_key(
            "sweep", payload, schema_version=SCHEMA_VERSION
        )
        assert cache_key("sweep", payload) != cache_key(
            "sweep", payload, schema_version=SCHEMA_VERSION + 1
        )


class TestScalePayload:
    def test_drops_name_and_execution_fields(self):
        a = make_scale(name="smoke", workers=1, sweep_workers=1)
        b = make_scale(name="custom", workers=8, sweep_workers=4)
        assert scale_payload(a) == scale_payload(b)
        assert "workers" not in scale_payload(a)
        assert "name" not in scale_payload(a)

    def test_sensitive_to_logical_fields(self):
        assert scale_payload(make_scale(seed=7)) != scale_payload(make_scale(seed=8))
        assert scale_payload(make_scale(steps=25)) != scale_payload(
            make_scale(steps=26)
        )

    def test_backend_is_an_environment_field_not_an_execution_knob(self):
        """Unlike workers, the backend stays in the payload: results from
        different array backends must never answer each other's keys."""
        numpy_scale = make_scale(backend="numpy")
        strict_scale = make_scale(backend="numpy-strict")
        assert scale_payload(numpy_scale)["backend"] == "numpy"
        assert scale_payload(numpy_scale) != scale_payload(strict_scale)


class TestConfigPayload:
    def test_full_description_without_workers(self):
        config = SimulationConfig(
            network=NetworkConfig(node_count=16, side=256.0, dimension=2),
            mobility=MobilitySpec.paper_waypoint(256.0),
            steps=10,
            iterations=2,
            seed=3,
            workers=1,
        )
        payload = config_payload(config)
        assert payload["mobility"]["name"] == "waypoint"
        assert payload["network"]["side"] == 256.0
        assert "workers" not in payload
        assert config_payload(config.with_workers(8)) == payload
        faster = SimulationConfig(
            network=config.network,
            mobility=MobilitySpec.paper_waypoint(256.0, tpause=1),
            steps=10,
            iterations=2,
            seed=3,
        )
        assert config_payload(faster) != payload

    def test_backend_stays_in_config_payload(self):
        config = SimulationConfig(
            network=NetworkConfig(node_count=16, side=256.0, dimension=2),
            mobility=MobilitySpec.paper_waypoint(256.0),
            steps=10,
            iterations=2,
            seed=3,
        )
        payload = config_payload(config)
        assert payload["backend"] == "numpy"
        strict = config_payload(config.with_backend("numpy-strict"))
        assert strict["backend"] == "numpy-strict"
        assert strict != payload


# --------------------------------------------------------------------------- #
# Property tests (hypothesis)
# --------------------------------------------------------------------------- #
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.keys import ITERATION_KIND, KEY_KINDS, ROW_KIND, SWEEP_KIND

#: Scalars that may appear in a cache-key payload.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=12),
)

#: Nested payloads: scalars, lists of payloads, string-keyed mappings.
payloads = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(min_size=1, max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


def shuffled_copy(mapping, seed):
    """The same mapping built in a different insertion order."""
    keys = list(mapping)
    random.Random(seed).shuffle(keys)
    return {key: mapping[key] for key in keys}


class TestKeyProperties:
    @given(
        st.dictionaries(st.text(min_size=1, max_size=8), payloads, max_size=6),
        st.integers(),
    )
    @settings(max_examples=80, deadline=None)
    def test_mapping_insertion_order_never_changes_a_key(self, mapping, seed):
        reordered = shuffled_copy(mapping, seed)
        assert canonical_json(mapping) == canonical_json(reordered)
        assert cache_key("sweep", mapping) == cache_key("sweep", reordered)

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.text(min_size=1, max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_execution_knobs_never_change_a_key(
        self, workers_a, sweep_a, workers_b, sweep_b, name
    ):
        """However a scale is named or parallelised, its payload — and
        therefore every key derived from it — is unchanged."""
        a = make_scale(name="smoke", workers=workers_a, sweep_workers=sweep_a)
        b = make_scale(name=name, workers=workers_b, sweep_workers=sweep_b)
        assert scale_payload(a) == scale_payload(b)
        assert cache_key("sweep", scale_payload(a)) == cache_key(
            "sweep", scale_payload(b)
        )

    @given(
        st.sampled_from(sorted(backend_names())),
        st.sampled_from(sorted(backend_names())),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_backend_always_separates_keys(
        self, backend_a, backend_b, workers_a, workers_b
    ):
        """Two scales that differ only in backend (an environment field)
        derive different keys; equal backends keep keys equal however the
        execution knobs vary."""
        a = make_scale(backend=backend_a, workers=workers_a)
        b = make_scale(backend=backend_b, workers=workers_b)
        key_a = cache_key("sweep", scale_payload(a))
        key_b = cache_key("sweep", scale_payload(b))
        if backend_a == backend_b:
            assert key_a == key_b
        else:
            assert key_a != key_b

    @given(payloads, st.integers(min_value=0, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_schema_version_changes_every_key(self, payload, version):
        assert cache_key("sweep", payload, schema_version=version) != cache_key(
            "sweep", payload, schema_version=version + 1
        )

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8), scalars, min_size=1, max_size=4
        ),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=80, deadline=None)
    def test_iteration_sub_keys_disjoint_from_value_and_sweep_keys(
        self, sweep_payload, value, index
    ):
        """The three granularities of one sweep can never collide, even
        though each payload embeds the one above it."""
        sweep_key = cache_key(SWEEP_KIND, sweep_payload)
        row_key = cache_key(
            ROW_KIND, {"sweep": sweep_payload, "value": float(value)}
        )
        iteration_key = cache_key(
            ITERATION_KIND,
            {"sweep": sweep_payload, "value": float(value), "iteration": index},
        )
        assert len({sweep_key, row_key, iteration_key}) == 3

    @given(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=80, deadline=None)
    def test_iteration_keys_distinct_across_values_and_indices(
        self, value_a, value_b, index_a, index_b
    ):
        payload = {"computation": "prop-test"}

        def key(value, index):
            return cache_key(
                ITERATION_KIND,
                {"sweep": payload, "value": value, "iteration": index},
            )

        # Compare by canonical rendering: 0.0 and -0.0 are == as floats
        # but are (correctly) distinct payloads and distinct keys.
        same = (
            canonical_json(value_a) == canonical_json(value_b)
            and index_a == index_b
        )
        if same:
            assert key(value_a, index_a) == key(value_b, index_b)
        else:
            assert key(value_a, index_a) != key(value_b, index_b)

    def test_key_kinds_are_distinct_strings(self):
        assert KEY_KINDS == {SWEEP_KIND, ROW_KIND, ITERATION_KIND}
        assert len(KEY_KINDS) == 3
