"""Tests for repro.store: codecs, the result store, and checkpoints."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.results import FrameStatisticsColumns, StepColumns
from repro.simulation.sweep import SweepResult
from repro.store import (
    ResultStore,
    StoreIntegrityError,
    StoreSweepCheckpoint,
    cache_key,
    decode_payload,
    detect_kind,
    encode_payload,
)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def make_sweep():
    return SweepResult(
        parameter_name="l",
        rows=[
            {"l": 256.0, "r100": 1.2000000000000002, "r90": 0.8},
            {"l": 1024.0, "r100": 1.25},
        ],
    )


def make_step_columns():
    return StepColumns(
        connected=np.array([True, False, True, True, False]),
        largest_component=np.array([9, 4, 9, 9, 3]),
    )


def make_frame_columns():
    return FrameStatisticsColumns(
        node_count=9,
        critical_ranges=np.array([1.5, 2.25, 0.75]),
        curve_offsets=np.array([0, 2, 4, 5]),
        curve_ranges=np.array([0.5, 1.5, 1.0, 2.25, 0.75]),
        curve_sizes=np.array([4, 9, 3, 9, 9]),
    )


class TestCodecs:
    def test_detect_kind(self):
        assert detect_kind(make_sweep()) == "sweep"
        assert detect_kind(make_step_columns()) == "step_columns"
        assert detect_kind(make_frame_columns()) == "frame_statistics"
        assert detect_kind({"l": 1.0}) == "sweep-row"
        with pytest.raises(ConfigurationError):
            detect_kind([1, 2, 3])

    @pytest.mark.parametrize(
        "value",
        [make_sweep(), make_step_columns(), make_frame_columns(), {"l": 1.0, "r": 2.5}],
        ids=["sweep", "steps", "frames", "row"],
    )
    def test_round_trip(self, value):
        kind, filename, payload = encode_payload(value)
        decoded = decode_payload(kind, payload)
        if isinstance(value, SweepResult):
            assert decoded.parameter_name == value.parameter_name
            assert decoded.rows == value.rows
        else:
            assert decoded == value

    def test_round_trip_restores_exact_dtypes(self):
        columns = make_frame_columns()
        kind, _, payload = encode_payload(columns)
        decoded = decode_payload(kind, payload)
        assert decoded.critical_ranges.dtype == np.float64
        assert decoded.curve_offsets.dtype == np.int64
        assert decoded.curve_sizes.dtype == np.int64
        assert np.array_equal(decoded.critical_ranges, columns.critical_ranges)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            decode_payload("no-such-kind", b"{}")


class TestResultStore:
    def test_put_get_contains_evict(self, store):
        key = cache_key("sweep", {"x": 1})
        assert not store.contains(key)
        with pytest.raises(KeyError):
            store.get(key)
        store.put(key, make_sweep())
        assert store.contains(key)
        loaded = store.get(key)
        assert loaded.rows == make_sweep().rows
        assert store.evict(key)
        assert not store.contains(key)
        assert not store.evict(key)

    def test_all_artifact_kinds_round_trip(self, store):
        pairs = [
            (cache_key("sweep", {"k": 1}), make_sweep()),
            (cache_key("steps", {"k": 2}), make_step_columns()),
            (cache_key("frames", {"k": 3}), make_frame_columns()),
            (cache_key("sweep-row", {"k": 4}), {"l": 256.0, "r100": 1.2}),
        ]
        for key, value in pairs:
            store.put(key, value)
        assert len(store) == len(pairs)
        assert sorted(store.keys()) == sorted(key for key, _ in pairs)
        loaded = store.get(pairs[1][0])
        assert loaded == pairs[1][1]

    def test_put_is_idempotent(self, store):
        key = cache_key("sweep", {"x": 1})
        store.put(key, make_sweep())
        store.put(key, make_sweep())
        assert len(store) == 1

    def test_malformed_key_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.contains("NOT-A-HEX-KEY")

    def test_corrupted_payload_detected(self, store, tmp_path):
        key = cache_key("sweep", {"x": 1})
        store.put(key, make_sweep())
        payload = next((tmp_path / "store").rglob("data.json"))
        payload.write_text('{"tampered": true}')
        with pytest.raises(StoreIntegrityError):
            store.get(key)
        # contains() still reports the entry; eviction clears it.
        assert store.contains(key)
        store.evict(key)
        assert not store.contains(key)

    def test_missing_payload_detected(self, store, tmp_path):
        key = cache_key("sweep", {"x": 1})
        store.put(key, make_sweep())
        next((tmp_path / "store").rglob("data.json")).unlink()
        with pytest.raises(StoreIntegrityError):
            store.get(key)

    def test_unreadable_header_detected(self, store, tmp_path):
        key = cache_key("sweep", {"x": 1})
        store.put(key, make_sweep())
        next((tmp_path / "store").rglob("entry.json")).write_text("{not json")
        with pytest.raises(StoreIntegrityError):
            store.get(key)

    def test_no_partial_entries_left_behind(self, store, tmp_path):
        """A failed encode stages nothing permanent under objects/."""
        key = cache_key("sweep", {"x": 1})
        with pytest.raises(ConfigurationError):
            store.put(key, [1, 2, 3])  # no codec for lists
        assert not store.contains(key)
        assert len(store) == 0

    def test_staging_cleanup(self, store):
        store.put(cache_key("sweep", {"x": 1}), make_sweep())
        # Simulate a killed writer by planting a stale staging directory.
        stale = store.root / "staging" / "deadbeef"
        stale.mkdir(parents=True)
        (stale / "data.json").write_text("{}")
        assert store.clear_staging() == 1
        assert len(store) == 1

    def test_size_bytes(self, store):
        assert store.size_bytes() == 0
        store.put(cache_key("sweep", {"x": 1}), make_sweep())
        assert store.size_bytes() > 0

    def test_metadata_stored_in_entry(self, store):
        key = cache_key("sweep", {"x": 1})
        store.put(key, make_sweep(), metadata={"campaign": "demo"})
        assert store.entry(key)["metadata"]["campaign"] == "demo"

    def test_size_bytes_counts_only_objects(self, store):
        """Telemetry sinks and quarantine records never inflate the size.

        ``gc(max_bytes=)`` budgets against :meth:`size_bytes`; if the
        per-run telemetry JSONL under the same root counted, a quota pass
        would evict live entries to pay for trace files it cannot remove.
        """
        store.put(cache_key("sweep", {"x": 1}), make_sweep())
        objects_only = store.size_bytes()
        assert objects_only > 0
        run_dir = store.root / "telemetry" / "run-0001"
        run_dir.mkdir(parents=True)
        (run_dir / "trace.jsonl").write_text('{"span": "task"}\n' * 4096)
        (run_dir / "metrics.json").write_text("{}")
        store.record_poison(cache_key("sweep", {"x": 2}), {"error": "boom"})
        staging = store.root / "staging"
        staging.mkdir(exist_ok=True)
        (staging / "123-inflight").mkdir()
        (staging / "123-inflight" / "data.json").write_text("{}" * 1024)
        assert store.size_bytes() == objects_only
        # A budget of exactly the objects size therefore evicts nothing.
        report = store.gc(max_bytes=objects_only)
        assert report.evicted == 0
        assert store.size_bytes() == objects_only


class TestSweepDeadStaging:
    def _plant(self, store, name, age_seconds=0.0):
        import os
        import time

        staging = store.root / "staging"
        staging.mkdir(parents=True, exist_ok=True)
        path = staging / name
        path.mkdir()
        (path / "data.json").write_text("{}")
        if age_seconds:
            old = time.time() - age_seconds
            os.utime(path, (old, old))
        return path

    def test_dead_pid_swept_immediately(self, store, monkeypatch):
        from repro.store import result_store

        monkeypatch.setattr(result_store, "_pid_alive", lambda pid: False)
        planted = self._plant(store, "4242-deadwriter")
        assert store.sweep_dead_staging() == 1
        assert not planted.exists()

    def test_live_pid_with_fresh_dir_survives(self, store):
        import os

        planted = self._plant(store, f"{os.getpid()}-inflight")
        assert store.sweep_dead_staging() == 0
        assert planted.exists()

    def test_reused_pid_falls_back_to_age_rule(self, store, monkeypatch):
        """Regression: a recycled pid must not shield an orphan forever.

        ``_pid_alive`` answering ``True`` only proves *some* process owns
        the pid today — after reuse it is an unrelated one.  A staging
        dir older than the stale cutoff is an orphan regardless of what
        its recorded pid looks like.
        """
        from repro.store import result_store
        from repro.store.result_store import STALE_STAGING_SECONDS

        # Every pid looks alive: the crashed writer's pid was recycled by
        # an unrelated long-lived process.
        monkeypatch.setattr(result_store, "_pid_alive", lambda pid: True)
        orphan = self._plant(
            store, "4242-orphan", age_seconds=STALE_STAGING_SECONDS + 60
        )
        fresh = self._plant(store, "4242-fresh")
        assert store.sweep_dead_staging() == 1
        assert not orphan.exists()
        assert fresh.exists()

    def test_unprefixed_dirs_keep_the_age_rule(self, store):
        from repro.store.result_store import STALE_STAGING_SECONDS

        orphan = self._plant(
            store, "legacy", age_seconds=STALE_STAGING_SECONDS + 60
        )
        fresh = self._plant(store, "alsolegacy")
        assert store.sweep_dead_staging() == 1
        assert not orphan.exists()
        assert fresh.exists()


class TestStoreSweepCheckpoint:
    def test_save_then_load(self, store):
        checkpoint = StoreSweepCheckpoint(store, {"experiment": "fig2"})
        assert checkpoint.load(256.0) is None
        row = {"l": 256.0, "r100": 1.5}
        checkpoint.save(256.0, row)
        assert checkpoint.load(256.0) == row
        assert checkpoint.saved == 1
        assert checkpoint.loaded == 1

    def test_keys_differ_per_value_and_payload(self, store):
        checkpoint = StoreSweepCheckpoint(store, {"experiment": "fig2"})
        other = StoreSweepCheckpoint(store, {"experiment": "fig3"})
        assert checkpoint.key_for(256.0) != checkpoint.key_for(1024.0)
        assert checkpoint.key_for(256.0) != other.key_for(256.0)

    def test_corrupt_row_is_a_miss_and_evicted(self, store, tmp_path):
        checkpoint = StoreSweepCheckpoint(store, {"experiment": "fig2"})
        checkpoint.save(256.0, {"l": 256.0, "r100": 1.5})
        next((tmp_path / "store").rglob("data.json")).write_text("junk")
        assert checkpoint.load(256.0) is None
        assert not store.contains(checkpoint.key_for(256.0))


class TestGc:
    def _fill(self, store, count, mtimes=None):
        """Write ``count`` sweep entries; optionally pin their mtimes."""
        import os

        keys = []
        for index in range(count):
            key = cache_key("sweep", {"gc": index})
            store.put(key, make_sweep())
            keys.append(key)
        if mtimes is not None:
            for key, mtime in zip(keys, mtimes):
                os.utime(store._entry_dir(key) / "entry.json", (mtime, mtime))
        return keys

    def test_no_bounds_reports_only(self, store):
        self._fill(store, 3)
        report = store.gc()
        assert report.scanned == 3
        assert report.evicted == 0
        assert report.remaining_bytes == store.size_bytes()

    def test_age_eviction(self, store):
        now = 10_000.0
        keys = self._fill(store, 3, mtimes=[now - 500, now - 50, now - 5])
        report = store.gc(max_age=100, now=now)
        assert report.evicted == 1
        assert not store.contains(keys[0])
        assert store.contains(keys[1]) and store.contains(keys[2])

    def test_lru_quota_eviction_drops_oldest_first(self, store):
        now = 10_000.0
        keys = self._fill(store, 4, mtimes=[now - 40, now - 30, now - 20, now - 10])
        sizes = {key: size for key, _, size in store._entry_stats()}
        budget = sizes[keys[2]] + sizes[keys[3]]
        report = store.gc(max_bytes=budget, now=now)
        assert report.evicted == 2
        assert not store.contains(keys[0]) and not store.contains(keys[1])
        assert store.contains(keys[2]) and store.contains(keys[3])
        assert report.remaining_bytes <= budget

    def test_get_refreshes_lru_position(self, store):
        import os

        now = 10_000.0
        keys = self._fill(store, 2, mtimes=[now - 100, now - 50])
        # Read the older entry: it becomes the most recently used.
        store.get(keys[0])
        stats = {key: mtime for key, mtime, _ in store._entry_stats()}
        assert stats[keys[0]] > stats[keys[1]]
        sizes = {key: size for key, _, size in store._entry_stats()}
        report = store.gc(max_bytes=sizes[keys[0]])
        assert report.evicted == 1
        assert store.contains(keys[0])  # survived thanks to the read
        assert not store.contains(keys[1])

    def test_gc_clears_stale_staging_but_spares_live_writers(self, store):
        import os
        import time

        from repro.store.result_store import STALE_STAGING_SECONDS

        self._fill(store, 1)
        staging = store.root / "staging"
        staging.mkdir(parents=True, exist_ok=True)
        (staging / "orphan").mkdir()
        old = time.time() - STALE_STAGING_SECONDS - 60
        os.utime(staging / "orphan", (old, old))
        (staging / "in-flight").mkdir()  # fresh: a live writer mid-put
        store.gc()
        assert not (staging / "orphan").exists()
        assert (staging / "in-flight").exists()
        # clean-style unconditional sweeps still remove everything.
        store.clear_staging()
        assert not list(staging.iterdir())

    def test_zero_byte_budget_empties_the_store(self, store):
        keys = self._fill(store, 3)
        report = store.gc(max_bytes=0)
        assert report.evicted == 3
        assert report.remaining_bytes == 0
        for key in keys:
            assert not store.contains(key)

    def test_rejects_negative_bounds(self, store):
        with pytest.raises(ConfigurationError):
            store.gc(max_bytes=-1)
        with pytest.raises(ConfigurationError):
            store.gc(max_age=-1)

    def test_dry_run_reports_but_does_not_evict(self, store):
        now = 10_000.0
        keys = self._fill(store, 3, mtimes=[now - 500, now - 50, now - 5])
        before = store.size_bytes()
        report = store.gc(max_age=100, now=now, dry_run=True)
        # The report predicts exactly what a real pass would do …
        assert report.scanned == 3
        assert report.evicted == 1
        assert report.freed_bytes > 0
        assert report.remaining_bytes == before - report.freed_bytes
        # … but every entry — and every byte — is still there.
        assert store.size_bytes() == before
        for key in keys:
            assert store.contains(key)
        real = store.gc(max_age=100, now=now)
        assert (real.evicted, real.freed_bytes) == (
            report.evicted,
            report.freed_bytes,
        )
        assert not store.contains(keys[0])

    def test_dry_run_spares_stale_staging(self, store):
        import os
        import time

        from repro.store.result_store import STALE_STAGING_SECONDS

        staging = store.root / "staging"
        staging.mkdir(parents=True, exist_ok=True)
        (staging / "orphan").mkdir()
        old = time.time() - STALE_STAGING_SECONDS - 60
        os.utime(staging / "orphan", (old, old))
        store.gc(dry_run=True)
        assert (staging / "orphan").exists()
        store.gc()
        assert not (staging / "orphan").exists()

    def _fill_campaign(self, store, name, count, offset=0):
        keys = []
        for index in range(count):
            key = cache_key("sweep", {"campaign-gc": name, "i": index + offset})
            store.put(key, make_sweep(), metadata={"campaign": name})
            keys.append(key)
        return keys

    def test_campaign_scope_only_touches_that_campaigns_entries(self, store):
        mine = self._fill_campaign(store, "fig2-smoke", 2)
        other = self._fill_campaign(store, "fig3-full", 2, offset=10)
        loose = self._fill(store, 1)  # no campaign metadata at all
        report = store.gc(max_bytes=0, campaign="fig2-smoke")
        assert report.scanned == 2
        assert report.evicted == 2
        for key in mine:
            assert not store.contains(key)
        for key in other + loose:
            assert store.contains(key)

    def test_campaign_scope_composes_with_dry_run(self, store):
        mine = self._fill_campaign(store, "fig2-smoke", 2)
        report = store.gc(max_bytes=0, campaign="fig2-smoke", dry_run=True)
        assert report.evicted == 2
        for key in mine:
            assert store.contains(key)

    def test_unknown_campaign_scans_nothing(self, store):
        self._fill(store, 2)
        report = store.gc(max_bytes=0, campaign="never-ran")
        assert report.scanned == 0
        assert report.evicted == 0
