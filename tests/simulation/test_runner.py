"""Tests for repro.simulation.runner."""

import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.config import MobilitySpec, NetworkConfig, SimulationConfig
from repro.simulation.runner import (
    collect_frame_statistics,
    run_fixed_range,
    stationary_critical_range,
)


def small_config(transmitting_range=None, steps=8, iterations=3, seed=17):
    return SimulationConfig(
        network=NetworkConfig(node_count=10, side=100.0, dimension=2),
        mobility=MobilitySpec.paper_drunkard(100.0),
        steps=steps,
        iterations=iterations,
        seed=seed,
        transmitting_range=transmitting_range,
    )


class TestRunFixedRange:
    def test_requires_range(self):
        with pytest.raises(ConfigurationError):
            run_fixed_range(small_config(transmitting_range=None))

    def test_iteration_and_step_counts(self):
        result = run_fixed_range(small_config(transmitting_range=30.0))
        assert result.iteration_count == 3
        assert all(it.step_count == 8 for it in result.iterations)
        assert result.node_count == 10

    def test_reproducible_with_seed(self):
        a = run_fixed_range(small_config(transmitting_range=30.0, seed=5))
        b = run_fixed_range(small_config(transmitting_range=30.0, seed=5))
        assert a.per_iteration_connected_fraction == b.per_iteration_connected_fraction

    def test_different_seeds_differ(self):
        a = collect_frame_statistics(small_config(seed=5, iterations=2))
        b = collect_frame_statistics(small_config(seed=6, iterations=2))
        ranges_a = [frame.critical_range for frames in a for frame in frames]
        ranges_b = [frame.critical_range for frames in b for frame in frames]
        assert ranges_a != ranges_b

    def test_connectivity_monotone_in_range(self):
        low = run_fixed_range(small_config(transmitting_range=15.0))
        high = run_fixed_range(small_config(transmitting_range=60.0))
        assert high.connected_fraction >= low.connected_fraction


class TestCollectFrameStatistics:
    def test_shape(self):
        statistics = collect_frame_statistics(small_config())
        assert len(statistics) == 3
        assert all(len(frames) == 8 for frames in statistics)

    def test_consistent_with_fixed_range(self):
        """The same seed must yield identical conclusions in both modes."""
        config = small_config(transmitting_range=35.0)
        fixed = run_fixed_range(config)
        statistics = collect_frame_statistics(config)
        from repro.simulation.metrics import connectivity_fraction_at

        pooled = [frame for frames in statistics for frame in frames]
        assert connectivity_fraction_at(pooled, 35.0) == pytest.approx(
            fixed.connected_fraction
        )


class TestStationaryCriticalRange:
    def test_placements_connect_at_returned_range(self):
        value = stationary_critical_range(
            node_count=20, side=200.0, dimension=2, iterations=40, seed=3, confidence=1.0
        )
        # Confidence 1.0 means every sampled placement connects at this range.
        from repro.connectivity.metrics import is_placement_connected
        from repro.geometry.region import Region
        from repro.placement.strategies import uniform_placement
        from repro.stats.rng import RandomSource

        source = RandomSource(3)
        region = Region.square(200.0)
        for index in range(40):
            placement = uniform_placement(20, region, source.child(index))
            assert is_placement_connected(placement, value)

    def test_confidence_monotone(self):
        low = stationary_critical_range(20, 200.0, iterations=60, seed=4, confidence=0.5)
        high = stationary_critical_range(20, 200.0, iterations=60, seed=4, confidence=0.99)
        assert high >= low

    def test_more_nodes_smaller_range(self):
        sparse = stationary_critical_range(10, 500.0, iterations=40, seed=5)
        dense = stationary_critical_range(80, 500.0, iterations=40, seed=5)
        assert dense < sparse

    def test_1d_supported(self):
        value = stationary_critical_range(30, 1000.0, dimension=1, iterations=40, seed=6)
        assert 0.0 < value < 1000.0

    def test_invalid_confidence(self):
        with pytest.raises(ConfigurationError):
            stationary_critical_range(10, 100.0, iterations=10, confidence=0.0)
