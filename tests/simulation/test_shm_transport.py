"""Shared-memory result transport: equality, fallback and lifecycle.

Covered here:

* shm-backed containers are bit-exactly equal to pickle-transported ones
  (in-process and across a real worker pool), and round-trip through the
  store codecs identically regardless of backing;
* the ``auto`` transport falls back to pickle below the size threshold
  and for unsupported values; invalid transport names are rejected;
* lifecycle: adopted segments are unlinked when the last view dies, and
  a parent or worker killed mid-transfer (SIGKILL — no atexit, no
  finalizers) leaves no ``/dev/shm`` segment behind once the process
  tree is gone (the resource-tracker safety net).
"""

import gc
import os
import signal
import subprocess
import sys
import textwrap
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.results import FrameStatisticsColumns, StepColumns
from repro.simulation.shm import (
    SHM_MIN_BYTES,
    SharedColumnsHandle,
    adopt_result,
    payload_nbytes,
    share_columns,
    shm_available,
    validate_transport,
)
from repro.store.codecs import decode_payload, encode_payload

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="no usable POSIX shared memory on this host"
)

SHM_DIR = Path("/dev/shm")


def frame_columns(frames=800, node_count=24, seed=0) -> FrameStatisticsColumns:
    rng = np.random.default_rng(seed)
    per_frame = rng.integers(1, node_count, size=frames)
    offsets = np.concatenate([[0], np.cumsum(per_frame)])
    total = int(offsets[-1])
    return FrameStatisticsColumns(
        node_count=node_count,
        critical_ranges=rng.random(frames),
        curve_offsets=offsets,
        curve_ranges=rng.random(total),
        curve_sizes=rng.integers(1, node_count + 1, size=total),
    )


def step_columns(steps=5000, seed=1) -> StepColumns:
    rng = np.random.default_rng(seed)
    return StepColumns(
        connected=rng.random(steps) < 0.5,
        largest_component=rng.integers(1, 64, size=steps),
    )


def segments() -> set:
    if not SHM_DIR.is_dir():
        return set()
    return {name for name in os.listdir(SHM_DIR) if name.startswith("psm_")}


def produce_shared(seed: int):
    """Worker body: a frame container through the forced shm transport."""
    return share_columns(frame_columns(seed=seed), "shm")


def produce_shared_and_die(path: str):
    """Worker body killed mid-transfer: the segment exists and is
    registered, but the handle never reaches the parent."""
    handle = share_columns(frame_columns(seed=5), "shm")
    Path(path).write_text(handle.segment_name)
    os.kill(os.getpid(), signal.SIGKILL)


class TestTransportSelection:
    def test_validate_rejects_unknown_names(self):
        with pytest.raises(ConfigurationError):
            validate_transport("arrow")
        for name in ("auto", "pickle", "shm"):
            assert validate_transport(name) == name

    def test_pickle_is_a_pass_through(self):
        columns = frame_columns()
        assert share_columns(columns, "pickle") is columns

    def test_auto_falls_back_below_threshold(self):
        small = step_columns(steps=16)
        assert payload_nbytes(small) < SHM_MIN_BYTES
        assert share_columns(small, "auto") is small

    def test_auto_promotes_large_payloads(self):
        large = frame_columns(frames=8000, node_count=48)
        assert payload_nbytes(large) >= SHM_MIN_BYTES
        handle = share_columns(large, "auto")
        assert isinstance(handle, SharedColumnsHandle)
        assert adopt_result(handle) == large

    def test_unsupported_values_pass_through(self):
        assert share_columns([1, 2, 3], "auto") == [1, 2, 3]
        assert adopt_result("plain") == "plain"


class TestBitExactEquality:
    @pytest.mark.parametrize("build", [frame_columns, step_columns])
    def test_in_process_round_trip(self, build):
        columns = build()
        adopted = adopt_result(share_columns(columns, "shm"))
        assert adopted == columns
        for field in ("critical_ranges", "curve_ranges") if isinstance(
            columns, FrameStatisticsColumns
        ) else ("connected", "largest_component"):
            assert np.array_equal(
                getattr(adopted, field), getattr(columns, field)
            )

    def test_cross_process_shm_equals_pickle(self):
        reference = frame_columns(seed=9)
        with ProcessPoolExecutor(max_workers=1) as pool:
            shm_result = adopt_result(pool.submit(produce_shared, 9).result())
            pickled = pool.submit(frame_columns, 800, 24, 9).result()
        assert shm_result == pickled == reference
        assert np.array_equal(shm_result.curve_ranges, pickled.curve_ranges)
        assert shm_result.curve_ranges.dtype == pickled.curve_ranges.dtype

    def test_codecs_round_trip_identically_regardless_of_backing(self):
        """Store payloads must not depend on where the arrays live."""
        columns = frame_columns(seed=4)
        adopted = adopt_result(share_columns(columns, "shm"))
        kind_a, name_a, payload_a = encode_payload(columns)
        kind_b, name_b, payload_b = encode_payload(adopted)
        assert (kind_a, name_a, payload_a) == (kind_b, name_b, payload_b)
        assert decode_payload(kind_b, payload_b) == columns

    def test_adopted_container_survives_pickling(self):
        """Re-pickling an adopted container falls back to the compact
        transport (views copy into the pickle) and stays equal."""
        import pickle

        columns = step_columns()
        adopted = adopt_result(share_columns(columns, "shm"))
        assert pickle.loads(pickle.dumps(adopted)) == columns


class TestLifecycle:
    def test_segment_unlinked_when_views_die(self):
        before = segments()
        handle = share_columns(frame_columns(), "shm")
        name = handle.segment_name
        assert name in segments()
        adopted = adopt_result(handle)
        assert name in segments()  # alive while views exist
        del adopted
        gc.collect()
        assert name not in segments()
        assert segments() <= before

    def test_extracted_array_keeps_segment_alive(self):
        handle = share_columns(frame_columns(), "shm")
        name = handle.segment_name
        adopted = adopt_result(handle)
        ranges = adopted.curve_ranges
        reference = ranges.copy()
        del adopted
        gc.collect()
        # The surviving view pins the segment; the data stays valid.
        assert name in segments()
        assert np.array_equal(ranges, reference)
        del ranges
        gc.collect()
        assert name not in segments()

    def test_double_adoption_is_rejected(self):
        handle = share_columns(frame_columns(), "shm")
        adopted = adopt_result(handle)
        with pytest.raises(ConfigurationError):
            handle.adopt()
        del adopted
        gc.collect()

    def test_pool_runs_leave_no_segments(self):
        before = segments()
        with ProcessPoolExecutor(max_workers=2) as pool:
            results = [
                adopt_result(future.result())
                for future in [
                    pool.submit(produce_shared, seed) for seed in range(6)
                ]
            ]
        assert len(results) == 6
        del results
        gc.collect()
        assert segments() <= before


def _run_script(body: str, expect_sigkill: bool, timeout: float = 60.0) -> None:
    """Run a detached python script, without capturing its pipes.

    Output is discarded (capturing would block on orphaned pool workers
    that inherit the pipe ends and outlive a SIGKILLed parent).
    """
    script = textwrap.dedent(body)
    process = subprocess.run(
        [sys.executable, "-c", script],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        timeout=timeout,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=str(Path(__file__).resolve().parents[2]),
    )
    if expect_sigkill:
        assert process.returncode == -signal.SIGKILL, process.returncode
    else:
        assert process.returncode == 0, process.returncode


def _wait_gone(names, timeout=30.0):
    """The resource tracker reaps asynchronously after the tree dies."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not (segments() & names):
            return True
        time.sleep(0.2)
    return not (segments() & names)


class TestKillSafety:
    def test_parent_killed_mid_transfer_leaves_no_segments(self, tmp_path):
        """SIGKILL the parent after adoption: no atexit, no finalizers —
        the resource tracker must still unlink everything once the
        process tree is gone."""
        info = tmp_path / "info"
        _run_script(
            f"""
            import json, os, signal
            from concurrent.futures import ProcessPoolExecutor
            from tests.simulation.test_shm_transport import produce_shared
            from repro.simulation.shm import adopt_result, ensure_shared_memory_tracker

            ensure_shared_memory_tracker()
            with ProcessPoolExecutor(max_workers=1) as pool:
                handle = pool.submit(produce_shared, 3).result()
                adopted = adopt_result(handle)
                workers = [process.pid for process in pool._processes.values()]
                with open({str(info)!r}, "w") as sink:
                    json.dump({{"segment": handle.segment_name, "workers": workers}}, sink)
                os.kill(os.getpid(), signal.SIGKILL)
            """,
            expect_sigkill=True,
        )
        import json

        payload = json.loads(info.read_text())
        name = payload["segment"]
        assert name in segments()  # the kill really was mid-flight
        # A SIGKILLed parent orphans its pool workers; the tracker reaps
        # once they are gone too (normally: their queues EOF and they
        # exit; here we finish them off so the test is prompt).
        for pid in payload["workers"]:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        assert _wait_gone({name}), f"leaked segment {name}"

    def test_worker_killed_mid_transfer_leaves_no_segments(self, tmp_path):
        """SIGKILL the worker after it created and registered its segment
        but before the handle reached the parent: the orphan segment must
        be reaped when the tree winds down."""
        info = tmp_path / "info"
        _run_script(
            f"""
            from concurrent.futures import ProcessPoolExecutor
            from concurrent.futures.process import BrokenProcessPool
            from tests.simulation.test_shm_transport import produce_shared_and_die
            from repro.simulation.shm import ensure_shared_memory_tracker

            ensure_shared_memory_tracker()
            with ProcessPoolExecutor(max_workers=1) as pool:
                try:
                    pool.submit(produce_shared_and_die, {str(info)!r}).result()
                    raise SystemExit("worker survived")
                except BrokenProcessPool:
                    pass
            """,
            expect_sigkill=False,
        )
        name = info.read_text().strip()
        assert name
        assert _wait_gone({name}), f"leaked segment {name}"


class TestFailedGatherRelease:
    class ExplodeOnSave:
        """Iteration checkpoint whose first save aborts the gather."""

        def load(self, index):
            return None

        def save(self, index, result):
            raise RuntimeError("simulated checkpoint failure")

    def test_failed_parallel_gather_releases_unadopted_segments(self):
        """When a parallel run dies mid-gather, segments parked by
        already-finished workers must not stay mapped until exit."""
        from repro.simulation.config import (
            MobilitySpec,
            NetworkConfig,
            SimulationConfig,
        )
        from repro.simulation.runner import collect_frame_statistics

        before = segments()
        config = SimulationConfig(
            network=NetworkConfig(node_count=10, side=80.0, dimension=2),
            mobility=MobilitySpec.paper_drunkard(80.0),
            steps=12,
            iterations=4,
            seed=3,
            workers=2,
            transport="shm",  # forced: payloads stay small at this size
        )
        with pytest.raises(RuntimeError, match="simulated checkpoint"):
            collect_frame_statistics(config, checkpoint=self.ExplodeOnSave())
        gc.collect()
        assert segments() <= before, "failed gather leaked segments"


def test_adopted_views_are_aligned():
    """Odd-length leading columns must not misalign later views
    (unaligned int64/float64 views tax every downstream vectorized op)."""
    odd = step_columns(steps=10001)
    adopted = adopt_result(share_columns(odd, "shm"))
    assert adopted == odd
    assert adopted.largest_component.flags["ALIGNED"]
    frames = frame_columns(frames=801, node_count=24)
    adopted_frames = adopt_result(share_columns(frames, "shm"))
    assert adopted_frames == frames
    for field in ("critical_ranges", "curve_offsets", "curve_ranges", "curve_sizes"):
        assert getattr(adopted_frames, field).flags["ALIGNED"], field


class TestSupervisedKillRecovery:
    """PR 7 fault tolerance x shm transport: a worker SIGKILLed mid-run
    under supervision is retried on a respawned pool, the recovered
    results are bit-identical to a fault-free run, and the segments
    parked by the broken pool's finished-but-unadopted tasks are
    released — nothing is left mapped in ``/dev/shm``."""

    def test_real_worker_kill_recovers_bit_identically_without_leaks(
        self, tmp_path
    ):
        before = segments()
        ok = tmp_path / "ok"
        state = tmp_path / "faultstate"
        _run_script(
            f"""
            from pathlib import Path

            import numpy as np

            from repro import faults
            from repro.faults import FaultSpec
            from repro.simulation.config import (
                MobilitySpec,
                NetworkConfig,
                SimulationConfig,
            )
            from repro.simulation.runner import collect_frame_statistics
            from repro.simulation.shm import ensure_shared_memory_tracker

            ensure_shared_memory_tracker()
            config = SimulationConfig(
                network=NetworkConfig(node_count=10, side=80.0, dimension=2),
                mobility=MobilitySpec.paper_drunkard(80.0),
                steps=12,
                iterations=4,
                seed=3,
                workers=2,
                transport="shm",  # forced: payloads stay small at this size
            )
            reference = collect_frame_statistics(config)
            supervised = config.with_supervision(2, retry_backoff=0.05)
            with faults.active(
                [FaultSpec(site="iteration", action="kill", at=2)],
                {str(state)!r},
            ):
                recovered = collect_frame_statistics(supervised)
            assert len(recovered) == len(reference)
            for ours, theirs in zip(recovered, reference):
                assert ours.node_count == theirs.node_count
                for field in (
                    "critical_ranges",
                    "curve_offsets",
                    "curve_ranges",
                    "curve_sizes",
                ):
                    assert np.array_equal(
                        getattr(ours, field), getattr(theirs, field)
                    ), field
            Path({str(ok)!r}).write_text("ok")
            """,
            expect_sigkill=False,
        )
        assert ok.read_text() == "ok"
        # The injected kill really happened (ordinal counter advanced
        # past the firing hit) ...
        assert int((state / "hits-0").read_text()) >= 2
        # ... and the recovery left nothing behind in /dev/shm.
        assert _wait_gone(segments() - before), "supervised recovery leaked"
