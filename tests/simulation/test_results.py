"""Tests for repro.simulation.results."""

import pickle

import numpy as np
import pytest

from repro.simulation.results import (
    FrameStatistics,
    FrameStatisticsColumns,
    IterationResult,
    MobileRunResult,
    StepColumns,
    StepRecord,
    pool_frame_statistics,
)


def make_iteration(records, iteration=0, node_count=10, transmitting_range=5.0):
    return IterationResult(
        iteration=iteration,
        node_count=node_count,
        transmitting_range=transmitting_range,
        records=tuple(records),
    )


class TestIterationResult:
    def test_connected_fraction(self):
        records = [
            StepRecord(0, True, 10),
            StepRecord(1, False, 7),
            StepRecord(2, True, 10),
            StepRecord(3, True, 10),
        ]
        result = make_iteration(records)
        assert result.connected_fraction == pytest.approx(0.75)
        assert result.step_count == 4

    def test_average_largest_when_disconnected(self):
        records = [
            StepRecord(0, True, 10),
            StepRecord(1, False, 6),
            StepRecord(2, False, 8),
        ]
        result = make_iteration(records)
        assert result.average_largest_component_when_disconnected == pytest.approx(7.0)

    def test_average_when_never_disconnected(self):
        result = make_iteration([StepRecord(0, True, 10)])
        assert result.average_largest_component_when_disconnected is None

    def test_minimum_largest_component(self):
        records = [StepRecord(0, True, 10), StepRecord(1, False, 4)]
        assert make_iteration(records).minimum_largest_component == 4

    def test_empty_records(self):
        result = make_iteration([])
        assert result.connected_fraction == 0.0
        assert result.minimum_largest_component == 0
        assert result.average_largest_component == 0.0

    def test_average_largest_component(self):
        records = [StepRecord(0, True, 10), StepRecord(1, False, 5)]
        assert make_iteration(records).average_largest_component == pytest.approx(7.5)


class TestMobileRunResult:
    def _run(self):
        first = make_iteration(
            [StepRecord(0, True, 10), StepRecord(1, False, 6)], iteration=0
        )
        second = make_iteration(
            [StepRecord(0, False, 8), StepRecord(1, False, 4)], iteration=1
        )
        return MobileRunResult(transmitting_range=5.0, node_count=10, iterations=(first, second))

    def test_connected_fraction_pools_steps(self):
        assert self._run().connected_fraction == pytest.approx(0.25)

    def test_per_iteration_fractions(self):
        assert self._run().per_iteration_connected_fraction == [0.5, 0.0]

    def test_average_largest_when_disconnected(self):
        assert self._run().average_largest_component_when_disconnected == pytest.approx(6.0)

    def test_average_largest_fraction(self):
        assert self._run().average_largest_component_fraction == pytest.approx(
            (10 + 6 + 8 + 4) / 4 / 10
        )

    def test_minimum_largest_component(self):
        assert self._run().minimum_largest_component == 4

    def test_flags(self):
        run = self._run()
        assert not run.always_connected
        assert not run.never_connected
        all_connected = MobileRunResult(
            transmitting_range=5.0,
            node_count=10,
            iterations=(make_iteration([StepRecord(0, True, 10)]),),
        )
        assert all_connected.always_connected
        never = MobileRunResult(
            transmitting_range=5.0,
            node_count=10,
            iterations=(make_iteration([StepRecord(0, False, 3)]),),
        )
        assert never.never_connected

    def test_empty_run(self):
        empty = MobileRunResult(transmitting_range=1.0, node_count=5, iterations=())
        assert empty.connected_fraction == 0.0
        assert empty.average_largest_component_when_disconnected is None
        assert empty.minimum_largest_component == 0


class TestStepColumns:
    def _records(self):
        return (
            StepRecord(0, True, 10),
            StepRecord(1, False, 7),
            StepRecord(2, True, 10),
        )

    def test_sequence_interface(self):
        columns = StepColumns.from_records(self._records())
        assert len(columns) == 3
        assert columns[1] == StepRecord(1, False, 7)
        assert columns[-1] == StepRecord(2, True, 10)
        assert list(columns) == list(self._records())
        with pytest.raises(IndexError):
            columns[3]

    def test_equality_with_record_tuples(self):
        columns = StepColumns.from_records(self._records())
        assert columns == self._records()
        assert self._records() == columns
        assert columns == StepColumns.from_records(self._records())
        assert columns != StepColumns.from_records(self._records()[:2])

    def test_slices_keep_original_step_numbers(self):
        columns = StepColumns.from_records(self._records())
        assert columns[1:3] == self._records()[1:3]
        assert columns[1:3][0].step == 1

    def test_iteration_result_accepts_columns(self):
        columnar = IterationResult(
            iteration=0, node_count=10, transmitting_range=5.0,
            records=StepColumns.from_records(self._records()),
        )
        object_list = IterationResult(
            iteration=0, node_count=10, transmitting_range=5.0,
            records=self._records(),
        )
        assert columnar == object_list
        for name in (
            "step_count", "connected_fraction", "largest_component_sizes",
            "average_largest_component_when_disconnected",
            "minimum_largest_component", "average_largest_component",
        ):
            assert getattr(columnar, name) == getattr(object_list, name), name

    def test_pickles_small(self):
        steps = 10_000
        columns = StepColumns(
            connected=np.ones(steps, dtype=bool),
            largest_component=np.full(steps, 17, dtype=np.int64),
        )
        objects = tuple(columns)
        assert len(pickle.dumps(columns)) * 10 < len(pickle.dumps(objects))
        assert pickle.loads(pickle.dumps(columns)) == columns

    def test_pickle_preserves_negative_sizes(self):
        # Hand-built containers may carry sentinels; the compact transport
        # must not wrap them through an unsigned cast.
        columns = StepColumns(
            connected=np.array([True, False]),
            largest_component=np.array([-1, 5], dtype=np.int64),
        )
        assert pickle.loads(pickle.dumps(columns)) == columns


class TestFrameStatisticsColumns:
    def _frames(self):
        return [
            FrameStatistics(3.0, ((1.0, 2), (3.0, 4)), 4),
            FrameStatistics(2.0, ((2.0, 4),), 4),
            FrameStatistics(5.0, ((0.5, 2), (1.0, 3), (5.0, 4)), 4),
        ]

    def test_round_trip_and_views(self):
        columns = FrameStatisticsColumns.from_frames(self._frames())
        assert len(columns) == 3
        assert list(columns) == self._frames()
        assert columns[1] == self._frames()[1]
        assert columns[-1] == self._frames()[-1]
        assert columns == self._frames()
        assert columns[0:2] == self._frames()[0:2]

    def test_vectorized_sizes_match_per_frame(self):
        columns = FrameStatisticsColumns.from_frames(self._frames())
        for radius in (0.0, 0.5, 0.75, 1.0, 2.0, 3.0, 4.9, 5.0, 9.0):
            expected = [
                frame.largest_component_size_at(radius) for frame in self._frames()
            ]
            assert columns.largest_component_sizes_at(radius).tolist() == expected
            assert columns.connected_at(radius).tolist() == [
                frame.is_connected_at(radius) for frame in self._frames()
            ]

    def test_concatenate_matches_pooled_list(self):
        first = FrameStatisticsColumns.from_frames(self._frames())
        second = FrameStatisticsColumns.from_frames(self._frames()[::-1])
        pooled = FrameStatisticsColumns.concatenate([first, second])
        assert list(pooled) == self._frames() + self._frames()[::-1]
        assert pool_frame_statistics([first, second]) == pooled

    def test_concatenate_rejects_mixed_node_counts(self):
        first = FrameStatisticsColumns.from_frames(self._frames())
        second = FrameStatisticsColumns.from_frames(
            [FrameStatistics(1.0, ((1.0, 2),), 2)]
        )
        with pytest.raises(ValueError):
            FrameStatisticsColumns.concatenate([first, second])

    def test_trivial_node_counts(self):
        empty = FrameStatisticsColumns.from_frames([])
        assert len(empty) == 0
        singles = FrameStatisticsColumns.from_frames(
            [FrameStatistics(0.0, (), 1), FrameStatistics(0.0, (), 1)]
        )
        assert singles.largest_component_sizes_at(3.0).tolist() == [1, 1]

    def test_pickles_small(self):
        # The float64 breakpoint ranges are irreducible (they must stay
        # bit-exact), so the curve payload shrinks by the per-object
        # overhead only; the big (>= 10x) win is on StepColumns above.
        frames = [
            FrameStatistics(
                float(n), tuple((float(j), j + 2) for j in range(8)), 10
            )
            for n in range(5_000)
        ]
        columns = FrameStatisticsColumns.from_frames(frames)
        assert int(len(pickle.dumps(columns)) * 1.3) < len(pickle.dumps(frames))
        assert pickle.loads(pickle.dumps(columns)) == columns
