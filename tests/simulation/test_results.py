"""Tests for repro.simulation.results."""

import pytest

from repro.simulation.results import IterationResult, MobileRunResult, StepRecord


def make_iteration(records, iteration=0, node_count=10, transmitting_range=5.0):
    return IterationResult(
        iteration=iteration,
        node_count=node_count,
        transmitting_range=transmitting_range,
        records=tuple(records),
    )


class TestIterationResult:
    def test_connected_fraction(self):
        records = [
            StepRecord(0, True, 10),
            StepRecord(1, False, 7),
            StepRecord(2, True, 10),
            StepRecord(3, True, 10),
        ]
        result = make_iteration(records)
        assert result.connected_fraction == pytest.approx(0.75)
        assert result.step_count == 4

    def test_average_largest_when_disconnected(self):
        records = [
            StepRecord(0, True, 10),
            StepRecord(1, False, 6),
            StepRecord(2, False, 8),
        ]
        result = make_iteration(records)
        assert result.average_largest_component_when_disconnected == pytest.approx(7.0)

    def test_average_when_never_disconnected(self):
        result = make_iteration([StepRecord(0, True, 10)])
        assert result.average_largest_component_when_disconnected is None

    def test_minimum_largest_component(self):
        records = [StepRecord(0, True, 10), StepRecord(1, False, 4)]
        assert make_iteration(records).minimum_largest_component == 4

    def test_empty_records(self):
        result = make_iteration([])
        assert result.connected_fraction == 0.0
        assert result.minimum_largest_component == 0
        assert result.average_largest_component == 0.0

    def test_average_largest_component(self):
        records = [StepRecord(0, True, 10), StepRecord(1, False, 5)]
        assert make_iteration(records).average_largest_component == pytest.approx(7.5)


class TestMobileRunResult:
    def _run(self):
        first = make_iteration(
            [StepRecord(0, True, 10), StepRecord(1, False, 6)], iteration=0
        )
        second = make_iteration(
            [StepRecord(0, False, 8), StepRecord(1, False, 4)], iteration=1
        )
        return MobileRunResult(transmitting_range=5.0, node_count=10, iterations=(first, second))

    def test_connected_fraction_pools_steps(self):
        assert self._run().connected_fraction == pytest.approx(0.25)

    def test_per_iteration_fractions(self):
        assert self._run().per_iteration_connected_fraction == [0.5, 0.0]

    def test_average_largest_when_disconnected(self):
        assert self._run().average_largest_component_when_disconnected == pytest.approx(6.0)

    def test_average_largest_fraction(self):
        assert self._run().average_largest_component_fraction == pytest.approx(
            (10 + 6 + 8 + 4) / 4 / 10
        )

    def test_minimum_largest_component(self):
        assert self._run().minimum_largest_component == 4

    def test_flags(self):
        run = self._run()
        assert not run.always_connected
        assert not run.never_connected
        all_connected = MobileRunResult(
            transmitting_range=5.0,
            node_count=10,
            iterations=(make_iteration([StepRecord(0, True, 10)]),),
        )
        assert all_connected.always_connected
        never = MobileRunResult(
            transmitting_range=5.0,
            node_count=10,
            iterations=(make_iteration([StepRecord(0, False, 3)]),),
        )
        assert never.never_connected

    def test_empty_run(self):
        empty = MobileRunResult(transmitting_range=1.0, node_count=5, iterations=())
        assert empty.connected_fraction == 0.0
        assert empty.average_largest_component_when_disconnected is None
        assert empty.minimum_largest_component == 0
