"""Intra-iteration sharding: bit-identical to serial for every split.

The contract of :mod:`repro.simulation.sharding` is that an iteration cut
into chunks at *any* boundaries — executed serially or by worker
processes, through either transport — produces exactly the serial run's
containers and leaves the parent's random stream at the serial position.
Checked here:

* mobility checkpoint/restore round trips (``checkpoint_state`` /
  ``from_state``) continue every model bit-for-bit, including the RNG,
  across pickling;
* sharded ``collect_frame_statistics`` / ``run_fixed_range`` equal the
  serial run for all models, explicit chunk sizes (hypothesis-driven
  boundaries included), worker counts and transports;
* auto-sharding engages exactly when workers outnumber pending
  iterations and the trajectory is long enough;
* sharded runs save the same per-iteration checkpoints as serial runs;
* the frame-handing hand-off (``capture_shard_frames`` →
  ``run_shard(frames=…)``) ships the *serial* trajectory to workers —
  mobility is generated once, in the parent, and workers never restore a
  checkpoint — through borrowed shared-memory segments the parent owns.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.geometry.region import Region
from repro.simulation.config import MobilitySpec, NetworkConfig, SimulationConfig
from repro.simulation.engine import (
    reduce_frames_fixed_range,
    reduce_frames_statistics,
)
from repro.simulation.results import FrameStatisticsColumns, StepColumns
from repro.simulation.runner import collect_frame_statistics, run_fixed_range
from repro.simulation.sharding import (
    MIN_SHARD_STEPS,
    capture_shard_checkpoints,
    capture_shard_frames,
    max_useful_shards,
    resolve_shard_plan,
    run_shard,
    shard_plan,
)
from repro.simulation.shm import (
    SharedColumnsHandle,
    adopt_result,
    discard_shared,
    shm_available,
)

SIDE = 90.0

MOBILITY_SPECS = {
    "stationary": MobilitySpec.stationary(),
    "waypoint": MobilitySpec.paper_waypoint(SIDE, tpause=4),
    "drunkard": MobilitySpec.paper_drunkard(SIDE),
    "random-direction": MobilitySpec(
        name="random-direction",
        parameters={"speed": 2.0, "travel_steps": 6, "tpause": 2},
    ),
    "gauss-markov": MobilitySpec(
        name="gauss-markov",
        parameters={"mean_speed": 1.5, "alpha": 0.6, "noise_std": 1.0},
    ),
    "rpgm": MobilitySpec(
        name="rpgm", parameters={"group_count": 3, "member_radius": 8.0}
    ),
}


def make_config(mobility_name, steps=31, iterations=2, **overrides):
    defaults = dict(
        network=NetworkConfig(node_count=11, side=SIDE, dimension=2),
        mobility=MOBILITY_SPECS[mobility_name],
        steps=steps,
        iterations=iterations,
        seed=20020623,
        transmitting_range=0.35 * SIDE,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestShardPlan:
    def test_even_and_ragged_splits(self):
        assert shard_plan(10, 5) == [5, 5]
        assert shard_plan(11, 5) == [5, 5, 1]
        assert shard_plan(3, 10) == [3]

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            shard_plan(10, 0)
        with pytest.raises(ConfigurationError):
            shard_plan(0, 5)

    def test_explicit_wins_over_auto(self):
        config = make_config("waypoint", steps=40)
        assert resolve_shard_plan(config, 2, shard_steps=15) == [15, 15, 10]
        assert resolve_shard_plan(config.with_shard_steps(20), 2) == [20, 20]

    def test_single_chunk_plans_are_none(self):
        config = make_config("waypoint", steps=40)
        assert resolve_shard_plan(config, 2, shard_steps=40) is None
        assert resolve_shard_plan(config, 2, shard_steps=100) is None

    def test_auto_requires_spare_workers_and_long_trajectories(self):
        short = make_config("waypoint", steps=40)
        # workers <= pending iterations: no sharding.
        assert resolve_shard_plan(short.with_workers(2), 2) is None
        # spare workers but trajectory too short to split usefully.
        assert resolve_shard_plan(short.with_workers(8), 2) is None
        long = make_config("waypoint", steps=4 * MIN_SHARD_STEPS)
        plan = resolve_shard_plan(long.with_workers(4), 1)
        assert plan is not None and len(plan) == 4
        assert sum(plan) == long.steps
        # capped by what the trajectory can usefully carry.
        plan = resolve_shard_plan(long.with_workers(64), 1)
        assert len(plan) == max_useful_shards(long.steps)

    def test_no_pending_iterations(self):
        config = make_config("waypoint", steps=400)
        assert resolve_shard_plan(config.with_workers(8), 0) is None


class TestMobilityCheckpoints:
    @pytest.mark.parametrize("name", sorted(MOBILITY_SPECS))
    def test_checkpoint_round_trip_is_bit_identical(self, name):
        """Restore mid-run (after pickling) and continue bit-for-bit."""
        spec = MOBILITY_SPECS[name]
        region = Region(side=SIDE, dimension=2)
        rng = np.random.default_rng(5)
        model = spec.create()
        model.initialize(region.sample_uniform(9, rng), region, rng)
        model.trajectory(17, rng)
        frozen = pickle.loads(pickle.dumps(model.checkpoint_state(rng)))
        continued = model.trajectory(23, rng)
        restored = spec.create()
        restored_rng = restored.from_state(frozen)
        resumed = restored.trajectory(23, restored_rng)
        assert np.array_equal(continued, resumed)
        assert np.array_equal(rng.random(8), restored_rng.random(8))
        assert restored.state.step_index == model.state.step_index

    def test_checkpoint_is_immune_to_further_stepping(self):
        spec = MOBILITY_SPECS["waypoint"]
        region = Region(side=SIDE, dimension=2)
        rng = np.random.default_rng(3)
        model = spec.create()
        model.initialize(region.sample_uniform(6, rng), region, rng)
        frozen = model.checkpoint_state(rng)
        reference = pickle.dumps(frozen)
        model.trajectory(40, rng)  # must not mutate the snapshot
        assert pickle.dumps(frozen) == reference

    def test_capture_leaves_parent_stream_at_serial_position(self):
        """The fast-forwarding parent consumes exactly the serial draws."""
        config = make_config("waypoint", steps=50)
        serial_rng = np.random.default_rng(11)
        region = config.network.region
        placement = config.network.placement_strategy(
            config.network.node_count, region, serial_rng
        )
        model = config.mobility.create()
        model.initialize(placement, region, serial_rng)
        model.trajectory(config.steps, serial_rng)

        shard_rng = np.random.default_rng(11)
        checkpoints = capture_shard_checkpoints(
            config.network, config.mobility, shard_plan(50, 13), shard_rng
        )
        assert len(checkpoints) == len(shard_plan(50, 13))
        assert np.array_equal(serial_rng.random(8), shard_rng.random(8))


class TestShardedEquality:
    @pytest.mark.parametrize("name", sorted(MOBILITY_SPECS))
    @pytest.mark.parametrize("shard_steps", [1, 7, 16, 31])
    def test_frame_statistics_all_models_and_chunk_sizes(self, name, shard_steps):
        config = make_config(name)
        serial = collect_frame_statistics(config)
        sharded = collect_frame_statistics(config, shard_steps=shard_steps)
        assert all(a == b for a, b in zip(serial, sharded))
        assert len(serial) == len(sharded)

    @pytest.mark.parametrize("name", ["waypoint", "drunkard", "gauss-markov"])
    def test_fixed_range_matches_serial(self, name):
        config = make_config(name)
        serial = run_fixed_range(config)
        for shard_steps in (5, 12):
            assert run_fixed_range(config, shard_steps=shard_steps) == serial

    @pytest.mark.parametrize("transport", ["pickle", "shm", "auto"])
    def test_sharded_process_pool_matches_serial(self, transport):
        config = make_config("waypoint")
        serial = collect_frame_statistics(config)
        sharded = collect_frame_statistics(
            config.with_workers(3).with_transport(transport), shard_steps=8
        )
        assert all(a == b for a, b in zip(serial, sharded))

    def test_auto_sharding_when_workers_exceed_iterations(self):
        config = make_config(
            "drunkard", steps=3 * MIN_SHARD_STEPS, iterations=1
        )
        serial = collect_frame_statistics(config)
        auto = collect_frame_statistics(config.with_workers(3))
        assert all(a == b for a, b in zip(serial, auto))

    @settings(max_examples=12, deadline=None)
    @given(
        data=st.data(),
        name=st.sampled_from(sorted(MOBILITY_SPECS)),
    )
    def test_hypothesis_chunk_boundaries(self, data, name):
        """Arbitrary contiguous partitions reproduce the serial run."""
        steps = 23
        config = make_config(name, steps=steps, iterations=1)
        serial = collect_frame_statistics(config)
        shard_steps = data.draw(
            st.integers(min_value=1, max_value=steps - 1), label="shard_steps"
        )
        sharded = collect_frame_statistics(config, shard_steps=shard_steps)
        assert all(a == b for a, b in zip(serial, sharded))


class TestShardedCheckpoints:
    class RecordingCheckpoint:
        def __init__(self):
            self.saved = {}

        def load(self, index):
            return None

        def save(self, index, result):
            self.saved[index] = result

    def test_sharded_run_saves_serial_iteration_results(self):
        config = make_config("waypoint", iterations=3)
        serial = collect_frame_statistics(config)
        recorder = self.RecordingCheckpoint()
        collect_frame_statistics(config, checkpoint=recorder, shard_steps=9)
        assert sorted(recorder.saved) == [0, 1, 2]
        for index, result in recorder.saved.items():
            assert result == serial[index]

    def test_sharded_resume_skips_loaded_iterations(self):
        config = make_config("drunkard", iterations=3)
        serial = collect_frame_statistics(config)

        class Preloaded(self.RecordingCheckpoint):
            def load(self, index):
                return serial[index] if index == 1 else None

        checkpoint = Preloaded()
        resumed = collect_frame_statistics(
            config, checkpoint=checkpoint, shard_steps=9
        )
        assert sorted(checkpoint.saved) == [0, 2]
        assert all(a == b for a, b in zip(serial, resumed))

    def test_fixed_range_sharded_checkpoint_records(self):
        config = make_config("waypoint", iterations=2)
        serial = run_fixed_range(config)
        recorder = self.RecordingCheckpoint()
        sharded = run_fixed_range(config, checkpoint=recorder, shard_steps=9)
        assert sharded == serial
        assert sorted(recorder.saved) == [0, 1]
        for index, records in recorder.saved.items():
            assert records == serial.iterations[index].records


def _serial_trajectory(config, seed):
    """The serial run's frames and the generator it leaves behind."""
    rng = np.random.default_rng(seed)
    region = config.network.region
    placement = config.network.placement_strategy(
        config.network.node_count, region, rng
    )
    model = config.mobility.create()
    model.initialize(placement, region, rng)
    return model.trajectory(config.steps, rng), rng


class TestFrameHanding:
    """Parent-captured frames: mobility is generated exactly once."""

    @pytest.mark.parametrize("name", sorted(MOBILITY_SPECS))
    def test_captured_chunks_are_the_serial_trajectory(self, name):
        """Stitched chunk frames == serial frames, same draws consumed."""
        config = make_config(name, steps=50)
        serial, serial_rng = _serial_trajectory(config, 11)
        chunks = shard_plan(config.steps, 13)
        shard_rng = np.random.default_rng(11)
        frames = capture_shard_frames(
            config.network, config.mobility, chunks, shard_rng
        )
        stitched = np.concatenate(
            [adopt_result(handle).frames for handle in frames]
        )
        assert np.array_equal(stitched, serial)
        assert np.array_equal(serial_rng.random(8), shard_rng.random(8))

    def test_frames_shards_need_no_mobility_or_checkpoint(self):
        """``run_shard(frames=…)`` reduces without touching mobility."""
        config = make_config("drunkard", steps=31)
        chunks = shard_plan(config.steps, 9)
        serial, _ = _serial_trajectory(config, 7)
        frames = capture_shard_frames(
            config.network, config.mobility, chunks, np.random.default_rng(7)
        )
        stats_parts = []
        fixed_parts = []
        for index, handle in enumerate(frames):
            stats_parts.append(
                adopt_result(
                    run_shard(
                        "stats", None, None, chunks[index], index == 0,
                        frames=handle,
                    )
                )
            )
            fixed_parts.append(
                adopt_result(
                    run_shard(
                        "fixed", None, None, chunks[index], index == 0,
                        transmitting_range=config.transmitting_range,
                        frames=handle,
                    )
                )
            )
        assert FrameStatisticsColumns.concatenate(
            stats_parts
        ) == reduce_frames_statistics(serial)
        assert StepColumns.concatenate(fixed_parts) == reduce_frames_fixed_range(
            serial, config.transmitting_range
        )

    def test_runner_hands_frames_not_checkpoints(self, monkeypatch):
        """The sharded runner ships frames; workers get no mobility state."""
        import repro.simulation.runner as runner_module

        config = make_config("waypoint", iterations=1)
        serial = collect_frame_statistics(config)
        calls = []
        real_run_shard = runner_module.run_shard

        def spy(mode, mobility, checkpoint, *args, **kwargs):
            calls.append((mobility, checkpoint, kwargs.get("frames")))
            return real_run_shard(mode, mobility, checkpoint, *args, **kwargs)

        monkeypatch.setattr(runner_module, "run_shard", spy)
        sharded = collect_frame_statistics(config, shard_steps=9)
        assert all(a == b for a, b in zip(serial, sharded))
        assert len(calls) == len(shard_plan(config.steps, 9))
        for mobility, checkpoint, frames in calls:
            assert mobility is None
            assert checkpoint is None
            assert frames is not None

    def test_shm_segments_are_borrowed_and_parent_owned(self):
        """Workers borrow frame segments; only the parent unlinks them."""
        if not shm_available():
            pytest.skip("no usable shared memory on this host")
        from multiprocessing import shared_memory

        config = make_config("stationary", steps=8)
        frames = capture_shard_frames(
            config.network,
            config.mobility,
            [4, 4],
            np.random.default_rng(3),
            transport="shm",
        )
        handle = frames[0]
        assert isinstance(handle, SharedColumnsHandle)
        first = adopt_result(handle, owned=False)
        pinned = np.array(first.frames, copy=True)
        del first  # borrowed release: the mapping closes, the file stays
        again = adopt_result(handle, owned=False)  # a retried worker
        assert np.array_equal(again.frames, pinned)
        del again
        for other in frames:
            discard_shared(other)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.segment_name)
        discard_shared(handle)  # double-discard is harmless


def test_auto_plans_keep_every_chunk_at_the_floor():
    """Balanced auto splits never cut a chunk below MIN_SHARD_STEPS."""
    for steps in (193, 2 * MIN_SHARD_STEPS, 10 * MIN_SHARD_STEPS + 17, 10000):
        for workers in (2, 3, 5, 64):
            config = make_config("waypoint", steps=steps, iterations=1)
            plan = resolve_shard_plan(config.with_workers(workers), 1)
            if plan is None:
                continue
            assert sum(plan) == steps
            assert min(plan) >= MIN_SHARD_STEPS, (steps, workers, plan)
            assert max(plan) - min(plan) <= 1, (steps, workers, plan)
