"""Tests for repro.simulation.engine."""

import numpy as np
import pytest

from repro.connectivity.critical_range import critical_range
from repro.connectivity.metrics import observe_placement
from repro.simulation.config import MobilitySpec, NetworkConfig
from repro.simulation.engine import (
    FrameStatistics,
    component_growth_curve,
    frame_statistics,
    simulate_frame_statistics,
    simulate_iteration,
)


class TestComponentGrowthCurve:
    def test_final_breakpoint_is_critical_range(self, small_placement):
        curve = component_growth_curve(small_placement)
        assert curve[-1][0] == pytest.approx(critical_range(small_placement))
        assert curve[-1][1] == small_placement.shape[0]

    def test_sizes_strictly_increase(self, small_placement):
        curve = component_growth_curve(small_placement)
        sizes = [size for _, size in curve]
        assert sizes == sorted(sizes)
        assert len(set(sizes)) == len(sizes)

    def test_ranges_non_decreasing(self, small_placement):
        curve = component_growth_curve(small_placement)
        ranges = [r for r, _ in curve]
        assert ranges == sorted(ranges)

    def test_trivial_inputs(self):
        assert component_growth_curve(np.empty((0, 2))) == ()
        assert component_growth_curve(np.array([[1.0, 1.0]])) == ()


class TestFrameStatistics:
    def test_matches_direct_observation(self, small_placement):
        stats = frame_statistics(small_placement)
        for radius in (0.0, 5.0, 15.0, 30.0, 200.0):
            observation = observe_placement(small_placement, radius)
            assert stats.largest_component_size_at(radius) == observation.largest_component_size
            assert stats.is_connected_at(radius) == observation.connected

    def test_critical_range_consistency(self, small_placement):
        stats = frame_statistics(small_placement)
        assert stats.critical_range == pytest.approx(critical_range(small_placement))

    def test_single_node(self):
        stats = frame_statistics(np.array([[3.0, 4.0]]))
        assert stats.critical_range == 0.0
        assert stats.largest_component_size_at(0.0) == 1
        assert stats.is_connected_at(0.0)

    def test_empty(self):
        stats = FrameStatistics(critical_range=0.0, component_curve=(), node_count=0)
        assert stats.largest_component_size_at(10.0) == 0

    def test_1d_flat_input(self):
        stats = frame_statistics(np.array([0.0, 1.0, 5.0]))
        assert stats.node_count == 3
        assert stats.critical_range == pytest.approx(4.0)


class TestSimulateIteration:
    def _network(self):
        return NetworkConfig(node_count=12, side=100.0, dimension=2)

    def test_record_count(self, rng):
        result = simulate_iteration(
            self._network(), MobilitySpec.paper_drunkard(100.0), steps=15,
            transmitting_range=30.0, rng=rng,
        )
        assert result.step_count == 15
        assert result.node_count == 12
        assert result.transmitting_range == 30.0

    def test_stationary_records_identical(self, rng):
        result = simulate_iteration(
            self._network(), MobilitySpec.stationary(), steps=5,
            transmitting_range=30.0, rng=rng,
        )
        states = {
            (record.connected, record.largest_component_size)
            for record in result.records
        }
        assert len(states) == 1

    def test_huge_range_always_connected(self, rng):
        result = simulate_iteration(
            self._network(), MobilitySpec.paper_drunkard(100.0), steps=10,
            transmitting_range=1000.0, rng=rng,
        )
        assert result.connected_fraction == 1.0

    def test_zero_range_never_connected(self, rng):
        result = simulate_iteration(
            self._network(), MobilitySpec.paper_drunkard(100.0), steps=10,
            transmitting_range=0.0, rng=rng,
        )
        assert result.connected_fraction == 0.0
        assert result.minimum_largest_component == 1

    def test_zero_steps_yields_empty_records(self, rng):
        result = simulate_iteration(
            self._network(), MobilitySpec.paper_drunkard(100.0), steps=0,
            transmitting_range=30.0, rng=rng,
        )
        assert result.step_count == 0
        assert result.connected_fraction == 0.0


class TestSimulateFrameStatistics:
    def test_one_stat_per_step(self, rng):
        network = NetworkConfig(node_count=10, side=100.0)
        stats = simulate_frame_statistics(
            network, MobilitySpec.paper_drunkard(100.0), steps=12, rng=rng
        )
        assert len(stats) == 12
        assert all(s.node_count == 10 for s in stats)

    def test_consistent_with_fixed_range_run(self):
        """Thresholds derived from frame statistics must agree with direct
        fixed-range simulation on the same random stream."""
        network = NetworkConfig(node_count=10, side=100.0)
        mobility = MobilitySpec.paper_drunkard(100.0)
        steps = 20
        stats = simulate_frame_statistics(
            network, mobility, steps, np.random.default_rng(55)
        )
        radius = 40.0
        fraction_from_stats = sum(
            1 for s in stats if s.is_connected_at(radius)
        ) / len(stats)
        direct = simulate_iteration(
            network, mobility, steps, radius, np.random.default_rng(55)
        )
        assert fraction_from_stats == pytest.approx(direct.connected_fraction)
        sizes_from_stats = [s.largest_component_size_at(radius) for s in stats]
        assert sizes_from_stats == [r.largest_component_size for r in direct.records]
