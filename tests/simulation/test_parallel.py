"""Tests for the parallel execution backend and the vectorized engine.

The contract under test: ``SimulationConfig.workers`` changes only the
wall-clock execution strategy — results are bit-identical to the serial
run for the same seed — and the vectorized per-frame reduction matches the
pre-vectorization reference implementation.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.config import MobilitySpec, NetworkConfig, SimulationConfig
from repro.simulation.engine import (
    component_growth_curve,
    component_growth_curve_reference,
    frame_statistics,
    frame_statistics_batch,
)
from repro.simulation.runner import (
    collect_frame_statistics,
    run_fixed_range,
    stationary_critical_range,
)
from repro.stats.rng import RandomSource


def parallel_config(workers=1, mobility_name="drunkard", seed=99):
    mobility = (
        MobilitySpec.paper_drunkard(200.0)
        if mobility_name == "drunkard"
        else MobilitySpec.paper_waypoint(200.0)
    )
    return SimulationConfig(
        network=NetworkConfig(node_count=12, side=200.0, dimension=2),
        mobility=mobility,
        steps=6,
        iterations=5,
        seed=seed,
        transmitting_range=60.0,
        workers=workers,
    )


class TestWorkersField:
    def test_default_is_serial(self):
        assert parallel_config().workers == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            parallel_config(workers=0)
        with pytest.raises(ConfigurationError):
            parallel_config(workers=-2)

    def test_with_workers_preserves_everything_else(self):
        config = parallel_config()
        copy = config.with_workers(4)
        assert copy.workers == 4
        assert copy.with_workers(1) == config

    def test_with_range_preserves_workers(self):
        config = parallel_config(workers=3)
        assert config.with_range(10.0).workers == 3


class TestBitIdenticalParallelism:
    @pytest.mark.parametrize("mobility_name", ["drunkard", "waypoint"])
    def test_run_fixed_range(self, mobility_name):
        serial = run_fixed_range(parallel_config(1, mobility_name))
        parallel = run_fixed_range(parallel_config(3, mobility_name))
        assert serial == parallel

    def test_collect_frame_statistics(self):
        serial = collect_frame_statistics(parallel_config(1))
        parallel = collect_frame_statistics(parallel_config(3))
        assert serial == parallel

    def test_stationary_critical_range(self):
        serial = stationary_critical_range(15, 150.0, iterations=12, seed=7, workers=1)
        parallel = stationary_critical_range(15, 150.0, iterations=12, seed=7, workers=4)
        assert serial == parallel

    def test_more_workers_than_iterations(self):
        config = parallel_config(workers=32)
        assert run_fixed_range(config) == run_fixed_range(config.with_workers(1))

    def test_entropy_seeded_parallel_run_completes(self):
        # seed=None cannot be compared against a separate serial run (each
        # run resolves fresh OS entropy), but it must execute and produce
        # the right shape.
        config = SimulationConfig(
            network=NetworkConfig(node_count=8, side=100.0),
            mobility=MobilitySpec.paper_drunkard(100.0),
            steps=3,
            iterations=4,
            seed=None,
            transmitting_range=40.0,
            workers=2,
        )
        result = run_fixed_range(config)
        assert result.iteration_count == 4


class TestRandomSourceEntropy:
    def test_entropy_of_int_seed_is_the_seed(self):
        assert RandomSource(123).entropy == 123

    def test_from_entropy_reproduces_children(self):
        source = RandomSource(None)
        clone = RandomSource.from_entropy(source.entropy)
        for index in (0, 1, 7):
            expected = source.child(index).random(5)
            assert np.array_equal(clone.child(index).random(5), expected)


class TestVectorizedEngineMatchesReference:
    def test_component_growth_curve_property(self, rng):
        """Property: the MST-sweep curve equals the dense-sweep reference on
        random placements (1-D, 2-D and 3-D, varied sizes)."""
        for dimension in (1, 2, 3):
            for n in (2, 3, 10, 40):
                for _ in range(5):
                    points = rng.uniform(0, 100, size=(n, dimension))
                    assert component_growth_curve(
                        points
                    ) == component_growth_curve_reference(points)

    def test_duplicate_points(self):
        points = np.array([[1.0, 1.0], [1.0, 1.0], [4.0, 1.0], [4.0, 1.0]])
        curve = component_growth_curve(points)
        assert curve[-1][1] == 4
        assert curve[-1][0] == pytest.approx(3.0)

    def test_batch_matches_single_frames(self, rng):
        frames = rng.uniform(0, 100, size=(20, 15, 2))
        batched = frame_statistics_batch(frames)
        assert batched == [frame_statistics(frame) for frame in frames]

    def test_batch_trivial_node_counts(self):
        assert frame_statistics_batch(np.empty((3, 1, 2)))[0].critical_range == 0.0
        assert len(frame_statistics_batch(np.empty((4, 0, 2)))) == 4


# --------------------------------------------------------------------------- #
# Iteration-granular checkpointing (PR 4)
# --------------------------------------------------------------------------- #
class RecordingIterationCheckpoint:
    """In-memory IterationCheckpoint counting loads, saves and misses."""

    def __init__(self, entries=None, fail_after=None):
        self.entries = dict(entries or {})
        self.fail_after = fail_after
        self.loads = 0
        self.saves = 0

    def load(self, index):
        result = self.entries.get(index)
        if result is not None:
            self.loads += 1
        return result

    def save(self, index, result):
        self.entries[index] = result
        self.saves += 1
        if self.fail_after is not None and self.saves >= self.fail_after:
            raise RuntimeError(f"simulated kill after {self.saves} iterations")


class TestIterationCheckpoint:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_checkpointed_run_is_bit_identical(self, workers):
        config = parallel_config(workers)
        reference = collect_frame_statistics(parallel_config(1))
        checkpoint = RecordingIterationCheckpoint()
        result = collect_frame_statistics(config, checkpoint=checkpoint)
        assert result == reference
        assert checkpoint.saves == config.iterations
        assert checkpoint.loads == 0

    @pytest.mark.parametrize("workers", [1, 3])
    def test_kill_and_resume_simulates_each_iteration_once(self, workers):
        """Interrupt after 2 of 5 iterations; the resumed run loads the
        finished iterations, simulates only the missing ones and matches
        the uninterrupted run bit for bit."""
        reference = collect_frame_statistics(parallel_config(1))

        killed = RecordingIterationCheckpoint(fail_after=2)
        with pytest.raises(RuntimeError, match="simulated kill"):
            collect_frame_statistics(parallel_config(1), checkpoint=killed)
        assert len(killed.entries) == 2

        resumed = RecordingIterationCheckpoint(entries=killed.entries)
        config = parallel_config(workers)
        result = collect_frame_statistics(config, checkpoint=resumed)
        assert result == reference
        assert resumed.loads == 2
        assert resumed.saves == config.iterations - 2  # zero re-simulation

    def test_fully_checkpointed_run_simulates_nothing(self):
        config = parallel_config(1)
        checkpoint = RecordingIterationCheckpoint()
        collect_frame_statistics(config, checkpoint=checkpoint)
        warm = RecordingIterationCheckpoint(entries=checkpoint.entries)
        result = collect_frame_statistics(config, checkpoint=warm)
        assert warm.saves == 0
        assert warm.loads == config.iterations
        assert result == collect_frame_statistics(config)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_run_fixed_range_checkpoints_step_columns(self, workers):
        """The fixed-range runner persists bare StepColumns and rebuilds
        the IterationResult wrappers from the config on load."""
        from repro.simulation.results import StepColumns

        reference = run_fixed_range(parallel_config(1))
        checkpoint = RecordingIterationCheckpoint()
        result = run_fixed_range(parallel_config(workers), checkpoint=checkpoint)
        assert result == reference
        assert checkpoint.saves == parallel_config(1).iterations
        assert all(
            isinstance(entry, StepColumns) for entry in checkpoint.entries.values()
        )

        warm = RecordingIterationCheckpoint(entries=checkpoint.entries)
        resumed = run_fixed_range(parallel_config(1), checkpoint=warm)
        assert warm.saves == 0
        assert resumed == reference


class TestAdaptiveWorkerAllotment:
    def test_breadth_with_full_queue(self):
        from repro.simulation.sweep import adaptive_worker_allotment

        # Many ready tasks: everyone gets one worker.
        assert adaptive_worker_allotment(4, 8, task_width=16) == 1
        assert adaptive_worker_allotment(4, 4, task_width=16) == 1

    def test_depth_as_queue_drains(self):
        from repro.simulation.sweep import adaptive_worker_allotment

        # Freed workers concentrate on the remaining tasks.
        assert adaptive_worker_allotment(4, 2, task_width=16) == 2
        assert adaptive_worker_allotment(4, 1, task_width=16) == 4

    def test_capped_by_task_width_and_budget(self):
        from repro.simulation.sweep import adaptive_worker_allotment

        assert adaptive_worker_allotment(8, 1, task_width=3) == 3
        assert adaptive_worker_allotment(2, 1, task_width=16) == 2
        assert adaptive_worker_allotment(1, 1, task_width=16) == 1

    def test_rejects_bad_arguments(self):
        from repro.simulation.sweep import adaptive_worker_allotment

        with pytest.raises(ConfigurationError):
            adaptive_worker_allotment(0, 1)
        with pytest.raises(ConfigurationError):
            adaptive_worker_allotment(1, 0)
