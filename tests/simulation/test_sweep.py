"""Tests for repro.simulation.sweep."""

from repro.simulation.sweep import SweepResult, sweep_parameter


class TestSweepParameter:
    def test_rows_and_series(self):
        sweep = sweep_parameter("x", [1.0, 2.0, 3.0], lambda x: {"square": x * x})
        assert sweep.parameter_values == [1.0, 2.0, 3.0]
        assert sweep.series("square") == [1.0, 4.0, 9.0]
        assert sweep.series_names() == ["square"]

    def test_multiple_series(self):
        sweep = sweep_parameter(
            "x", [2.0], lambda x: {"double": 2 * x, "half": x / 2}
        )
        assert set(sweep.series_names()) == {"double", "half"}
        assert sweep.rows[0]["x"] == 2.0

    def test_measure_called_in_order(self):
        calls = []

        def measure(value):
            calls.append(value)
            return {"v": value}

        sweep_parameter("p", [3, 1, 2], measure)
        assert calls == [3, 1, 2]

    def test_empty_sweep(self):
        sweep = sweep_parameter("x", [], lambda x: {"y": x})
        assert sweep.rows == []
        assert sweep.series_names() == []
        assert sweep.parameter_values == []


class TestSweepResult:
    def test_as_dicts(self):
        sweep = SweepResult(parameter_name="l", rows=[{"l": 1.0, "y": 2.0}])
        assert sweep.as_dicts()[0]["y"] == 2.0
