"""Tests for repro.simulation.sweep."""

from dataclasses import dataclass, replace

import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.sweep import SweepResult, split_worker_budget, sweep_parameter


class TestSweepParameter:
    def test_rows_and_series(self):
        sweep = sweep_parameter("x", [1.0, 2.0, 3.0], lambda x: {"square": x * x})
        assert sweep.parameter_values == [1.0, 2.0, 3.0]
        assert sweep.series("square") == [1.0, 4.0, 9.0]
        assert sweep.series_names() == ["square"]

    def test_multiple_series(self):
        sweep = sweep_parameter(
            "x", [2.0], lambda x: {"double": 2 * x, "half": x / 2}
        )
        assert set(sweep.series_names()) == {"double", "half"}
        assert sweep.rows[0]["x"] == 2.0

    def test_measure_called_in_order(self):
        calls = []

        def measure(value):
            calls.append(value)
            return {"v": value}

        sweep_parameter("p", [3, 1, 2], measure)
        assert calls == [3, 1, 2]

    def test_empty_sweep(self):
        sweep = sweep_parameter("x", [], lambda x: {"y": x})
        assert sweep.rows == []
        assert sweep.series_names() == []
        assert sweep.parameter_values == []

    def test_rejects_bad_worker_counts(self):
        with pytest.raises(ConfigurationError):
            sweep_parameter("x", [1.0], lambda x: {"y": x}, workers=0)
        with pytest.raises(ConfigurationError):
            sweep_parameter(
                "x", [1.0], lambda x: {"y": x}, iteration_workers=0
            )


class TestSweepResult:
    def test_as_dicts(self):
        sweep = SweepResult(parameter_name="l", rows=[{"l": 1.0, "y": 2.0}])
        assert sweep.as_dicts()[0]["y"] == 2.0

    def test_series_names_unions_all_rows(self):
        """Regression: series appearing only at later parameter values must
        not be dropped (series_names used to read rows[0] only)."""
        sweep = SweepResult(
            parameter_name="l",
            rows=[
                {"l": 1.0, "always": 1.0},
                {"l": 2.0, "always": 2.0, "late": 0.5},
                {"l": 3.0, "always": 3.0, "later": 0.1},
            ],
        )
        assert sweep.series_names() == ["always", "late", "later"]


class TestSplitWorkerBudget:
    def test_budget_product_bounded(self):
        for total in (1, 2, 3, 4, 6, 8, 16):
            for values in (1, 2, 4, 5, 11):
                sweep_workers, iteration_workers = split_worker_budget(total, values)
                assert sweep_workers * iteration_workers <= max(total, 1)
                assert sweep_workers >= 1 and iteration_workers >= 1
                assert sweep_workers <= values

    def test_exact_splits(self):
        assert split_worker_budget(8, 4) == (4, 2)
        assert split_worker_budget(4, 8) == (4, 1)
        assert split_worker_budget(1, 4) == (1, 1)
        assert split_worker_budget(6, 2) == (2, 3)

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            split_worker_budget(0, 3)
        with pytest.raises(ConfigurationError):
            split_worker_budget(4, 0)


# --------------------------------------------------------------------------- #
# Parallel sweep execution: measures must live at module level so they pickle.
# --------------------------------------------------------------------------- #
def _square_measure(value):
    return {"square": value * value, "negated": -value}


@dataclass(frozen=True)
class RecordingMeasure:
    """Measure that reports which iteration-worker budget it carries."""

    iteration_workers: int = 1

    def __call__(self, value):
        return {"value": float(value), "workers": float(self.iteration_workers)}

    def with_iteration_workers(self, count):
        return replace(self, iteration_workers=count)


class TestParallelSweep:
    def test_parallel_equals_serial(self):
        values = [0.5, 1.5, 2.5, 3.5, 4.5]
        serial = sweep_parameter("x", values, _square_measure)
        parallel = sweep_parameter("x", values, _square_measure, workers=3)
        assert serial.rows == parallel.rows
        assert serial.series_names() == parallel.series_names()

    def test_more_workers_than_values(self):
        values = [1.0, 2.0]
        parallel = sweep_parameter("x", values, _square_measure, workers=16)
        assert parallel.rows == sweep_parameter("x", values, _square_measure).rows

    def test_iteration_workers_rebinds_measure(self):
        sweep = sweep_parameter(
            "x", [1.0, 2.0], RecordingMeasure(), workers=2, iteration_workers=3
        )
        assert [row["workers"] for row in sweep.rows] == [3.0, 3.0]

    def test_iteration_workers_ignored_without_support(self):
        sweep = sweep_parameter(
            "x", [2.0], _square_measure, iteration_workers=4
        )
        assert sweep.rows[0]["square"] == 4.0


class DictCheckpoint:
    """In-memory SweepCheckpoint: rows keyed by parameter value."""

    def __init__(self, rows=None):
        self.rows = dict(rows or {})
        self.loads = 0
        self.saves = 0

    def load(self, value):
        self.loads += 1
        row = self.rows.get(value)
        return dict(row) if row is not None else None

    def save(self, value, row):
        self.saves += 1
        self.rows[value] = dict(row)


class TestCheckpointedSweep:
    def test_fresh_checkpoint_measures_and_saves_everything(self):
        checkpoint = DictCheckpoint()
        sweep = sweep_parameter("x", [1.0, 2.0], _square_measure, checkpoint=checkpoint)
        assert checkpoint.saves == 2
        assert checkpoint.rows[1.0]["square"] == 1.0
        assert sweep.rows == sweep_parameter("x", [1.0, 2.0], _square_measure).rows

    def test_checkpointed_values_are_not_remeasured(self):
        calls = []

        def measure(value):
            calls.append(value)
            return {"square": value * value}

        checkpoint = DictCheckpoint(
            {2.0: {"x": 2.0, "square": 4.0}}
        )
        sweep = sweep_parameter("x", [1.0, 2.0, 3.0], measure, checkpoint=checkpoint)
        assert calls == [1.0, 3.0]
        # Rows come back in sweep order regardless of their provenance.
        assert sweep.parameter_values == [1.0, 2.0, 3.0]
        assert sweep.series("square") == [1.0, 4.0, 9.0]

    def test_fully_checkpointed_sweep_measures_nothing(self):
        reference = sweep_parameter("x", [1.0, 2.0], _square_measure)
        checkpoint = DictCheckpoint(
            {row["x"]: row for row in reference.rows}
        )

        def explode(value):
            raise AssertionError("measure must not be called")

        sweep = sweep_parameter("x", [1.0, 2.0], explode, checkpoint=checkpoint)
        assert sweep.rows == reference.rows
        assert checkpoint.saves == 0

    def test_interrupted_sweep_resumes_where_it_stopped(self):
        """A measure that dies mid-sweep leaves its finished rows behind;
        re-running with the same checkpoint completes the remainder and the
        result equals an uninterrupted run."""
        checkpoint = DictCheckpoint()

        def failing(value):
            if value >= 3.0:
                raise RuntimeError("killed")
            return _square_measure(value)

        with pytest.raises(RuntimeError):
            sweep_parameter("x", [1.0, 2.0, 3.0, 4.0], failing, checkpoint=checkpoint)
        assert sorted(checkpoint.rows) == [1.0, 2.0]

        calls = []

        def resumed_measure(value):
            calls.append(value)
            return _square_measure(value)

        resumed = sweep_parameter(
            "x", [1.0, 2.0, 3.0, 4.0], resumed_measure, checkpoint=checkpoint
        )
        assert calls == [3.0, 4.0]
        assert resumed.rows == sweep_parameter(
            "x", [1.0, 2.0, 3.0, 4.0], _square_measure
        ).rows

    def test_parallel_sweep_checkpoints_and_matches_serial(self):
        values = [0.5, 1.5, 2.5, 3.5, 4.5]
        checkpoint = DictCheckpoint({1.5: {"x": 1.5, "square": 2.25, "negated": -1.5}})
        parallel = sweep_parameter(
            "x", values, _square_measure, workers=3, checkpoint=checkpoint
        )
        assert parallel.rows == sweep_parameter("x", values, _square_measure).rows
        # Every missing value was persisted; the preloaded one was not re-saved.
        assert checkpoint.saves == len(values) - 1
        assert sorted(checkpoint.rows) == values
