"""Tests for repro.simulation.metrics."""

import numpy as np
import pytest

from repro.exceptions import SearchError
from repro.simulation.engine import frame_statistics
from repro.simulation.metrics import (
    average_largest_fraction_at,
    connectivity_fraction_at,
    largest_component_size_at,
    minimum_largest_fraction_at,
    range_for_component_fraction,
    range_for_connectivity_fraction,
    range_for_no_connectivity,
)


@pytest.fixture
def frames(rng):
    """Frame statistics of 30 random placements of 15 nodes."""
    placements = [rng.uniform(0, 100, size=(15, 2)) for _ in range(30)]
    return [frame_statistics(p) for p in placements]


class TestPointwiseMetrics:
    def test_connectivity_fraction_monotone(self, frames):
        fractions = [connectivity_fraction_at(frames, r) for r in (0, 20, 40, 80, 200)]
        assert fractions == sorted(fractions)
        assert fractions[0] == 0.0
        assert fractions[-1] == 1.0

    def test_average_fraction_monotone(self, frames):
        values = [average_largest_fraction_at(frames, r) for r in (0, 10, 30, 60, 200)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_zero_range_values(self, frames):
        assert average_largest_fraction_at(frames, 0.0) == pytest.approx(1 / 15)
        assert minimum_largest_fraction_at(frames, 0.0) == pytest.approx(1 / 15)

    def test_minimum_below_average(self, frames):
        for r in (10.0, 30.0, 60.0):
            assert minimum_largest_fraction_at(frames, r) <= average_largest_fraction_at(
                frames, r
            ) + 1e-12

    def test_largest_component_sizes(self, frames):
        sizes = largest_component_size_at(frames, 50.0)
        assert len(sizes) == len(frames)
        assert all(1 <= s <= 15 for s in sizes)

    def test_empty_frames(self):
        assert connectivity_fraction_at([], 1.0) == 0.0
        assert average_largest_fraction_at([], 1.0) == 0.0
        assert minimum_largest_fraction_at([], 1.0) == 0.0

    def test_zero_node_frames_do_not_deflate_average(self, frames):
        """Regression: empty frames must be excluded from the denominator
        too, not just the numerator."""
        empty = frame_statistics(np.empty((0, 2)))
        for r in (0.0, 30.0, 200.0):
            expected = average_largest_fraction_at(frames, r)
            assert average_largest_fraction_at(
                frames + [empty, empty], r
            ) == pytest.approx(expected)
        assert average_largest_fraction_at([empty], 10.0) == 0.0


class TestConnectivityThresholds:
    def test_r100_is_max_critical_range(self, frames):
        assert range_for_connectivity_fraction(frames, 1.0) == max(
            f.critical_range for f in frames
        )

    def test_r0_is_min_critical_range(self, frames):
        assert range_for_no_connectivity(frames) == min(f.critical_range for f in frames)

    def test_threshold_achieves_fraction(self, frames):
        for fraction in (1.0, 0.9, 0.5, 0.1):
            threshold = range_for_connectivity_fraction(frames, fraction)
            assert connectivity_fraction_at(frames, threshold) >= fraction
            # Just below the threshold the fraction must drop below the target.
            assert connectivity_fraction_at(frames, threshold - 1e-9) < fraction

    def test_monotone_in_fraction(self, frames):
        thresholds = [
            range_for_connectivity_fraction(frames, f) for f in (0.1, 0.5, 0.9, 1.0)
        ]
        assert thresholds == sorted(thresholds)

    def test_invalid_fraction(self, frames):
        with pytest.raises(SearchError):
            range_for_connectivity_fraction(frames, 0.0)
        with pytest.raises(SearchError):
            range_for_connectivity_fraction(frames, 1.5)

    def test_empty_frames_raise(self):
        with pytest.raises(SearchError):
            range_for_connectivity_fraction([], 0.5)
        with pytest.raises(SearchError):
            range_for_no_connectivity([])


class TestComponentFractionThresholds:
    def test_threshold_achieves_target(self, frames):
        for target in (0.9, 0.75, 0.5):
            threshold = range_for_component_fraction(frames, target)
            assert average_largest_fraction_at(frames, threshold) >= target
            assert average_largest_fraction_at(frames, threshold * 0.999) < target

    def test_ordering_matches_paper(self, frames):
        rl50 = range_for_component_fraction(frames, 0.5)
        rl75 = range_for_component_fraction(frames, 0.75)
        rl90 = range_for_component_fraction(frames, 0.9)
        r100 = range_for_connectivity_fraction(frames, 1.0)
        assert rl50 <= rl75 <= rl90 <= r100

    def test_tiny_target_is_zero(self, frames):
        # A single node (fraction 1/15) is already achieved at range 0.
        assert range_for_component_fraction(frames, 1 / 15) == 0.0

    def test_invalid_target(self, frames):
        with pytest.raises(SearchError):
            range_for_component_fraction(frames, 0.0)
        with pytest.raises(SearchError):
            range_for_component_fraction([], 0.5)
