"""Tests for repro.simulation.search."""

import pytest

from repro.exceptions import SearchError
from repro.simulation.config import MobilitySpec, NetworkConfig, SimulationConfig
from repro.simulation.runner import collect_frame_statistics
from repro.simulation.search import (
    average_component_fraction_at_range,
    estimate_component_thresholds,
    estimate_component_thresholds_from_statistics,
    estimate_thresholds,
    estimate_thresholds_from_statistics,
    r100_for_parameter,
)


def mobile_config(seed=23, steps=12, iterations=3):
    return SimulationConfig(
        network=NetworkConfig(node_count=12, side=100.0, dimension=2),
        mobility=MobilitySpec.paper_drunkard(100.0),
        steps=steps,
        iterations=iterations,
        seed=seed,
    )


class TestEstimateThresholds:
    def test_ordering(self):
        thresholds = estimate_thresholds(mobile_config())
        assert thresholds.r0 <= thresholds.r10 <= thresholds.r90 <= thresholds.r100

    def test_reproducible(self):
        a = estimate_thresholds(mobile_config(seed=9))
        b = estimate_thresholds(mobile_config(seed=9))
        assert a == b

    def test_ratios(self):
        thresholds = estimate_thresholds(mobile_config())
        ratios = thresholds.ratios_to(100.0)
        assert set(ratios) == {"r100", "r90", "r10", "r0"}
        assert ratios["r100"] == pytest.approx(thresholds.r100 / 100.0)

    def test_ratios_invalid_reference(self):
        thresholds = estimate_thresholds(mobile_config())
        with pytest.raises(SearchError):
            thresholds.ratios_to(0.0)

    def test_from_statistics_requires_data(self):
        with pytest.raises(SearchError):
            estimate_thresholds_from_statistics([])

    def test_thresholds_are_averages_of_per_iteration_values(self):
        from repro.simulation.metrics import (
            range_for_connectivity_fraction,
            range_for_no_connectivity,
        )

        config = mobile_config()
        statistics = collect_frame_statistics(config)
        thresholds = estimate_thresholds_from_statistics(statistics)
        per_iteration_r100 = [
            range_for_connectivity_fraction(frames, 1.0) for frames in statistics
        ]
        per_iteration_r0 = [range_for_no_connectivity(frames) for frames in statistics]
        assert thresholds.r100 == pytest.approx(
            sum(per_iteration_r100) / len(per_iteration_r100)
        )
        assert thresholds.r0 == pytest.approx(
            sum(per_iteration_r0) / len(per_iteration_r0)
        )


class TestComponentThresholds:
    def test_ordering(self):
        thresholds = estimate_component_thresholds(mobile_config())
        assert thresholds.rl50 <= thresholds.rl75 <= thresholds.rl90

    def test_component_thresholds_below_r100(self):
        config = mobile_config()
        statistics = collect_frame_statistics(config)
        connectivity = estimate_thresholds_from_statistics(statistics)
        components = estimate_component_thresholds_from_statistics(statistics)
        assert components.rl90 <= connectivity.r100 + 1e-9

    def test_ratios(self):
        thresholds = estimate_component_thresholds(mobile_config())
        ratios = thresholds.ratios_to(50.0)
        assert set(ratios) == {"rl90", "rl75", "rl50"}

    def test_from_statistics_requires_data(self):
        with pytest.raises(SearchError):
            estimate_component_thresholds_from_statistics([])


class TestAverageComponentFraction:
    def test_at_large_range_is_one(self):
        statistics = collect_frame_statistics(mobile_config())
        assert average_component_fraction_at_range(statistics, 1000.0) == pytest.approx(1.0)

    def test_monotone_in_range(self):
        statistics = collect_frame_statistics(mobile_config())
        values = [
            average_component_fraction_at_range(statistics, r) for r in (0, 20, 50, 150)
        ]
        assert values == sorted(values)


class TestR100ForParameter:
    def test_sweep_shapes(self):
        def make_config(p):
            return SimulationConfig(
                network=NetworkConfig(node_count=10, side=100.0),
                mobility=MobilitySpec.paper_waypoint(100.0, pstationary=float(p)),
                steps=6,
                iterations=2,
                seed=31,
            )

        results = r100_for_parameter(make_config, [0.0, 0.5, 1.0])
        assert len(results) == 3
        assert all(value > 0 for _, value in results)

    def test_reference_normalisation(self):
        def make_config(p):
            return mobile_config(seed=41, steps=6, iterations=2)

        raw = r100_for_parameter(make_config, [0.0])
        normalised = r100_for_parameter(make_config, [0.0], reference_range=10.0)
        assert normalised[0][1] == pytest.approx(raw[0][1] / 10.0)

    def test_invalid_reference(self):
        def make_config(p):
            return mobile_config(seed=41, steps=4, iterations=1)

        with pytest.raises(SearchError):
            r100_for_parameter(make_config, [0.0], reference_range=0.0)
