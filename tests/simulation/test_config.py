"""Tests for repro.simulation.config."""

import pytest

from repro.exceptions import ConfigurationError
from repro.mobility.drunkard import DrunkardModel
from repro.mobility.stationary import StationaryModel
from repro.mobility.waypoint import RandomWaypointModel
from repro.simulation.config import MobilitySpec, NetworkConfig, SimulationConfig


class TestNetworkConfig:
    def test_region_and_strategy(self):
        config = NetworkConfig(node_count=10, side=100.0, dimension=2)
        assert config.region.side == 100.0
        assert callable(config.placement_strategy)

    def test_paper_scaling(self):
        config = NetworkConfig.paper_scaling(4096.0)
        assert config.node_count == 64
        assert config.side == 4096.0

    def test_paper_scaling_small_side(self):
        assert NetworkConfig.paper_scaling(256.0).node_count == 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(node_count=0, side=10.0)
        with pytest.raises(ConfigurationError):
            NetworkConfig(node_count=5, side=-1.0)
        with pytest.raises(ConfigurationError):
            NetworkConfig(node_count=5, side=10.0, dimension=0)
        with pytest.raises(ConfigurationError):
            NetworkConfig(node_count=5, side=10.0, placement="voronoi")


class TestMobilitySpec:
    def test_stationary_factory(self):
        model = MobilitySpec.stationary().create()
        assert isinstance(model, StationaryModel)

    def test_paper_waypoint_defaults(self):
        spec = MobilitySpec.paper_waypoint(4096.0)
        model = spec.create()
        assert isinstance(model, RandomWaypointModel)
        assert model.vmax == pytest.approx(40.96)
        assert model.tpause == 2000
        assert model.pstationary == 0.0

    def test_paper_waypoint_overrides(self):
        spec = MobilitySpec.paper_waypoint(1024.0, pstationary=0.4, tpause=100)
        model = spec.create()
        assert model.pstationary == pytest.approx(0.4)
        assert model.tpause == 100

    def test_paper_drunkard_defaults(self):
        model = MobilitySpec.paper_drunkard(4096.0).create()
        assert isinstance(model, DrunkardModel)
        assert model.step_radius == pytest.approx(40.96)
        assert model.ppause == pytest.approx(0.3)
        assert model.pstationary == pytest.approx(0.1)

    def test_create_returns_fresh_instances(self):
        spec = MobilitySpec.paper_drunkard(100.0)
        assert spec.create() is not spec.create()


class TestSimulationConfig:
    def test_defaults(self):
        config = SimulationConfig(network=NetworkConfig(node_count=5, side=10.0))
        assert config.steps == 1
        assert config.iterations == 1
        assert config.is_stationary

    def test_is_stationary_detection(self):
        network = NetworkConfig(node_count=5, side=10.0)
        mobile = SimulationConfig(
            network=network, mobility=MobilitySpec.paper_drunkard(10.0), steps=10
        )
        assert not mobile.is_stationary
        single_step = SimulationConfig(
            network=network, mobility=MobilitySpec.paper_drunkard(10.0), steps=1
        )
        assert single_step.is_stationary

    def test_with_range(self):
        config = SimulationConfig(network=NetworkConfig(node_count=5, side=10.0))
        updated = config.with_range(3.0)
        assert updated.transmitting_range == 3.0
        assert config.transmitting_range is None
        assert updated.network is config.network

    def test_validation(self):
        network = NetworkConfig(node_count=5, side=10.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(network=network, steps=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(network=network, iterations=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(network=network, transmitting_range=-1.0)

    def test_paper_presets(self):
        waypoint = SimulationConfig.paper_waypoint(1024.0, steps=50, iterations=2, seed=1)
        assert waypoint.network.node_count == 32
        assert waypoint.mobility.name == "waypoint"
        drunkard = SimulationConfig.paper_drunkard(1024.0, steps=50, iterations=2, seed=1)
        assert drunkard.mobility.name == "drunkard"
