"""Unit semantics of the lease/heartbeat/publish work queue.

Every test injects explicit ``now`` timestamps — the queue's clock is a
parameter precisely so expiry, backoff and harvest ordering can be
pinned deterministically, with no sleeps.
"""

import queue as queue_module

import pytest

from repro.distributed.queue import WorkQueue
from repro.exceptions import ConfigurationError
from repro.supervision import RetryPolicy


def make_queue(max_retries=2, backoff=0.5, lease_seconds=10.0):
    policy = RetryPolicy(max_retries=max_retries, backoff=backoff)
    return WorkQueue(policy=policy, lease_seconds=lease_seconds)


def drain(work_queue):
    events = []
    while True:
        try:
            events.append(work_queue.events.get_nowait())
        except queue_module.Empty:
            return events


class TestLeasing:
    def test_rejects_nonpositive_lease(self):
        with pytest.raises(ConfigurationError):
            make_queue(lease_seconds=0.0)

    def test_grants_in_enqueue_order(self):
        work_queue = make_queue()
        work_queue.add("b", b"second")
        work_queue.add("a", b"first")
        work_queue.seal()
        first = work_queue.lease("w1", now=0.0)
        second = work_queue.lease("w2", now=0.0)
        assert first["status"] == "ok" and first["task"] == "b"
        assert first["payload"] == b"second"
        assert second["task"] == "a"

    def test_empty_unsealed_queue_says_wait_not_done(self):
        # A worker racing the driver's enqueue loop must poll, not exit.
        work_queue = make_queue()
        assert work_queue.lease("w", now=0.0)["status"] == "wait"
        assert not work_queue.done()
        work_queue.seal()
        assert work_queue.lease("w", now=0.0)["status"] == "done"
        assert work_queue.done()

    def test_all_leased_says_wait(self):
        work_queue = make_queue()
        work_queue.add("t", b"x")
        work_queue.seal()
        assert work_queue.lease("w1", now=0.0)["status"] == "ok"
        answer = work_queue.lease("w2", now=1.0)
        assert answer["status"] == "wait"
        assert answer["retry_after"] >= 0.05


class TestHeartbeat:
    def test_heartbeat_extends_deadline(self):
        work_queue = make_queue(lease_seconds=10.0)
        work_queue.add("t", b"x")
        work_queue.seal()
        work_queue.lease("w", now=0.0)
        assert work_queue.heartbeat("t", "w", now=8.0)
        # Past the original deadline (10.0) but inside the renewed one.
        assert work_queue.expire(now=12.0) == 0
        assert work_queue.expire(now=18.1) == 1

    def test_heartbeat_from_wrong_worker_or_state_fails(self):
        work_queue = make_queue()
        work_queue.add("t", b"x")
        work_queue.seal()
        assert not work_queue.heartbeat("t", "w", now=0.0)  # not leased
        work_queue.lease("w", now=0.0)
        assert not work_queue.heartbeat("t", "impostor", now=1.0)
        assert not work_queue.heartbeat("ghost", "w", now=1.0)


class TestChargingAndBackoff:
    def test_expiry_charges_with_policy_backoff(self):
        work_queue = make_queue(max_retries=2, backoff=0.5, lease_seconds=5.0)
        work_queue.add("t", b"x")
        work_queue.seal()
        work_queue.lease("w", now=0.0)
        assert work_queue.expire(now=5.0) == 1
        events = drain(work_queue)
        assert len(events) == 1
        kind, task_id, error, attempt, delay = events[0]
        assert kind == "retried" and task_id == "t" and attempt == 1
        assert "lease expired" in error and "silent" in error
        assert delay == pytest.approx(0.5)  # policy.delay_for(1)
        # Re-enqueued but backing off: not leasable until not_before.
        assert work_queue.lease("w2", now=5.1)["status"] == "wait"
        assert work_queue.lease("w2", now=5.6)["status"] == "ok"

    def test_published_error_charges_like_expiry(self):
        work_queue = make_queue(max_retries=1, backoff=0.25)
        work_queue.add("t", b"x")
        work_queue.seal()
        work_queue.lease("w", now=0.0)
        assert work_queue.publish_error("t", "w", "ValueError: boom", now=1.0)
        kind, _, error, attempt, delay = drain(work_queue)[0]
        assert kind == "retried" and attempt == 1
        assert error == "ValueError: boom"
        assert delay == pytest.approx(0.25)

    def test_giveup_after_max_retries(self):
        work_queue = make_queue(max_retries=1, backoff=0.0001)
        work_queue.add("t", b"x")
        work_queue.seal()
        work_queue.lease("w", now=0.0)
        work_queue.publish_error("t", "w", "first", now=0.0)
        work_queue.lease("w", now=1.0)
        work_queue.publish_error("t", "w", "second", now=1.0)
        events = drain(work_queue)
        assert events[0][0] == "retried"
        assert events[1] == ("giveup", "t", "second", 2)
        assert work_queue.stats()["poisoned"] == 1
        assert work_queue.done()

    def test_unsupervised_policy_gives_up_on_first_failure(self):
        work_queue = make_queue(max_retries=0)
        work_queue.add("t", b"x")
        work_queue.seal()
        work_queue.lease("w", now=0.0)
        work_queue.publish_error("t", "w", "boom", now=0.0)
        assert drain(work_queue) == [("giveup", "t", "boom", 1)]


class TestPublishing:
    def test_result_completes_task(self):
        work_queue = make_queue()
        work_queue.add("t", b"x")
        work_queue.seal()
        work_queue.lease("w", now=0.0)
        assert work_queue.publish_result("t", "w", b"answer", now=2.0)
        assert drain(work_queue) == [("result", "t", b"answer")]
        assert work_queue.done()

    def test_late_survivor_result_is_harvested_once(self):
        # The lease expired and the task was re-enqueued — but the
        # "dead" worker finishes anyway.  Its result is harvested, and
        # a second publish (from the replacement worker) is dropped.
        work_queue = make_queue(max_retries=2, backoff=0.0001, lease_seconds=5.0)
        work_queue.add("t", b"x")
        work_queue.seal()
        work_queue.lease("slow", now=0.0)
        work_queue.expire(now=5.0)
        assert work_queue.publish_result("t", "slow", b"late", now=6.0)
        assert not work_queue.publish_result("t", "fast", b"dup", now=7.0)
        events = drain(work_queue)
        results = [event for event in events if event[0] == "result"]
        assert results == [("result", "t", b"late")]
        assert work_queue.done()

    def test_unknown_task_publish_is_dropped(self):
        work_queue = make_queue()
        work_queue.seal()
        assert not work_queue.publish_result("ghost", "w", b"x", now=0.0)
        assert not work_queue.publish_error("ghost", "w", "boom", now=0.0)

    def test_stats_counts_states(self):
        work_queue = make_queue()
        work_queue.add("a", b"1")
        work_queue.add("b", b"2")
        work_queue.seal()
        work_queue.lease("w", now=0.0)
        stats = work_queue.stats()
        assert stats == {
            "pending": 1,
            "leased": 1,
            "done": 0,
            "poisoned": 0,
            "total": 2,
            "sealed": 1,
        }
