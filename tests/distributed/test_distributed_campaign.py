"""End-to-end distributed campaigns: serve + real worker processes.

The acceptance bar of the distributed PR, exercised for real: an
N-worker loopback run must be **bit-identical** to the single-host
scheduler — the same store keys, the same entry payload bytes, the same
sweep rows — and must survive a worker *process group* SIGKILLed while
holding a lease, with zero lost and zero duplicated measure work
(counted by the marker-file protocol of ``tests/campaigns/test_faults``:
each successful measure execution leaves exactly one marker file, in
whatever process it ran).
"""

import glob
import multiprocessing
import os
import signal
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Dict, Optional

import pytest

from repro.campaigns import CampaignRunner, CampaignSpec
from repro.campaigns.progress import TaskQuarantined, TaskRetried
from repro.distributed import serve_campaign
from repro.distributed.campaign import RemoteTaskError
from repro.distributed.worker import QueueClient, run_worker
from repro.experiments.registry import (
    _REGISTRY,
    Experiment,
    ExperimentScale,
    register_experiment,
)
from repro.faults import FaultSpec, write_plan
from repro.simulation.sweep import SweepCheckpoint, SweepResult, sweep_parameter
from repro.store import ResultStore

DIST_ID = "dist-test-exp"

#: Mutable module config read when the measure is constructed (in the
#: serving parent; the constructed measure pickles into worker tasks).
DIST = {"calls_dir": None}


def _mark(calls_dir, prefix):
    with open(os.path.join(calls_dir, f"{prefix}-{uuid.uuid4().hex}"), "w"):
        pass


def _count(calls_dir, prefix="measure"):
    return len(glob.glob(os.path.join(calls_dir, f"{prefix}-*")))


@dataclass(frozen=True)
class DistMeasure:
    """Picklable measure leaving one marker per successful execution.

    The ``measure`` fault site fires before this body runs, and the
    distributed ``queue.lease`` / ``queue.publish`` sites bracket it in
    the worker — so a worker killed at any of those sites leaves either
    no marker (died before measuring) or exactly one (died after), and
    the total marker count across *all* processes equals the number of
    completed measure executions.
    """

    seed: int
    calls_dir: str

    def __call__(self, value: float) -> Dict[str, float]:
        _mark(self.calls_dir, f"measure-{self.seed}")
        return {
            "metric": value * 2.0 + self.seed,
            "root": float(value**0.5) + self.seed,
        }


def _dist_measure(scale: ExperimentScale) -> DistMeasure:
    return DistMeasure(seed=scale.seed or 0, calls_dir=DIST["calls_dir"])


def run_dist_experiment(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    return sweep_parameter(
        "side",
        scale.sides,
        _dist_measure(scale),
        workers=scale.sweep_workers,
        checkpoint=checkpoint,
    )


@pytest.fixture
def dist_experiment(tmp_path):
    calls_dir = tmp_path / "calls"
    calls_dir.mkdir()
    DIST["calls_dir"] = str(calls_dir)
    experiment = register_experiment(
        Experiment(
            identifier=DIST_ID,
            title="Distributed test experiment",
            description="Counts successful measures for the loopback tests.",
            paper_reference="(test only)",
            run=run_dist_experiment,
            parameter_name="side",
            sweep_measure=_dist_measure,
        )
    )
    yield experiment, str(calls_dir)
    _REGISTRY.pop(DIST_ID, None)


def dist_spec():
    return CampaignSpec.from_dict({
        "name": "dist",
        "experiments": [DIST_ID],
        "scale": "smoke",
        "overrides": {
            "sides": [10.0, 20.0, 30.0],
            "steps": 1,
            "iterations": 1,
            "stationary_iterations": 1,
        },
        "matrix": {"seed": [1, 2]},
    })


def store_fingerprint(store):
    """key -> payload sha256: the byte-level identity of a store."""
    return {key: store.entry(key)["payload_sha256"] for key in store.keys()}


def assert_bit_identical(result, reference):
    assert result.sweeps.keys() == reference.sweeps.keys()
    for scenario_id, sweep in result.sweeps.items():
        assert sweep.rows == reference.sweeps[scenario_id].rows


# --------------------------------------------------------------------------- #
# Worker process management (fork: workers inherit the test registry)
# --------------------------------------------------------------------------- #
def _worker_main(url, environment, new_process_group):
    if environment:
        os.environ.update(environment)
    # A short HTTP timeout: a worker forked from the serving test process
    # inherits the server's listening socket, so after the serve ends its
    # polls hang in the dead backlog instead of being refused — the
    # timeout turns that artifact into a prompt "server left" exit.
    run_worker(
        url,
        poll_interval=0.05,
        new_process_group=new_process_group,
        timeout=5.0,
    )


def start_worker(url, environment=None, new_process_group=False):
    process = multiprocessing.get_context("fork").Process(
        target=_worker_main, args=(url, environment, new_process_group)
    )
    process.start()
    return process


def reap(workers, timeout=60.0):
    for process in workers:
        process.join(timeout=timeout)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)
            raise AssertionError("worker did not exit after the campaign")


# --------------------------------------------------------------------------- #
class TestLoopbackFanOut:
    def test_two_worker_run_bit_identical_to_scheduler(
        self, dist_experiment, tmp_path
    ):
        _, calls_dir = dist_experiment
        local_store = ResultStore(tmp_path / "local")
        local_result = CampaignRunner(dist_spec(), local_store).run()
        local_markers = _count(calls_dir)
        assert local_markers == 6  # 3 sides x 2 seeds, nothing retried

        workers = []
        dist_store = ResultStore(tmp_path / "dist")
        result = serve_campaign(
            dist_spec(),
            dist_store,
            max_retries=2,
            retry_backoff=0.05,
            telemetry_enabled=False,
            on_ready=lambda url: workers.extend(
                start_worker(url) for _ in range(2)
            ),
        )
        reap(workers)

        assert_bit_identical(result, local_result)
        # Same store keys, same entry bytes: the distributed transport
        # is invisible in the artifacts.
        assert store_fingerprint(dist_store) == store_fingerprint(local_store)
        # Zero lost, zero duplicated measure work.
        assert _count(calls_dir) - local_markers == local_markers

    def test_warm_serve_rerun_recomputes_nothing(
        self, dist_experiment, tmp_path
    ):
        _, calls_dir = dist_experiment
        store = ResultStore(tmp_path / "store")
        workers = []
        first = serve_campaign(
            dist_spec(),
            store,
            max_retries=2,
            retry_backoff=0.05,
            telemetry_enabled=False,
            on_ready=lambda url: workers.append(start_worker(url)),
        )
        reap(workers)
        assert first.computed_values == 6
        markers = _count(calls_dir)

        # Warm re-serve with NO workers: every scenario is answered from
        # the store before any task would be enqueued, so the drive
        # finishes against an empty (sealed) queue.
        second = serve_campaign(
            dist_spec(), store, telemetry_enabled=False
        )
        assert second.computed_values == 0
        assert second.cache_hits == len(first.outcomes) == 2
        assert _count(calls_dir) == markers
        assert_bit_identical(second, first)


class TestLeaseRecovery:
    def test_sigkilled_worker_process_group_mid_lease(
        self, dist_experiment, tmp_path
    ):
        """SIGKILL a whole worker process group while it holds a lease.

        Worker A arms a ``queue.lease`` hang fault (600 s, every hit) in
        its own environment only, so it wedges the moment its first
        lease is granted — before any measure runs.  A monitor thread
        watches the queue stats, SIGKILLs A's process group once the
        lease is held, then starts the healthy worker B.  The expired
        lease must be re-enqueued and the campaign must finish
        bit-identically with zero lost or duplicated measure work.
        """
        _, calls_dir = dist_experiment
        local_store = ResultStore(tmp_path / "local")
        local_result = CampaignRunner(dist_spec(), local_store).run()
        local_markers = _count(calls_dir)

        plan_dir = tmp_path / "faultplan"
        plan_dir.mkdir()
        plan = write_plan(
            plan_dir / "plan.json",
            [FaultSpec(site="queue.lease", action="hang", seconds=600.0, count=0)],
        )
        workers = []
        events = []

        def monitor(url):
            hung = start_worker(
                url,
                environment={"REPRO_FAULTS": str(plan)},
                new_process_group=True,
            )
            workers.append(hung)
            client = QueueClient(url)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if client.stats().get("leased", 0) >= 1:
                    break
                time.sleep(0.05)
            # A is wedged inside the fault hook, holding its lease; kill
            # its entire process group, modelling a vanished host.
            os.killpg(os.getpgid(hung.pid), signal.SIGKILL)
            workers.append(start_worker(url))

        def on_ready(url):
            threading.Thread(target=monitor, args=(url,), daemon=True).start()

        dist_store = ResultStore(tmp_path / "dist")
        result = serve_campaign(
            dist_spec(),
            dist_store,
            lease_seconds=1.0,
            max_retries=2,
            retry_backoff=0.05,
            telemetry_enabled=False,
            on_ready=on_ready,
            progress=events.append,
        )
        reap(workers)

        expiries = [
            event
            for event in events
            if isinstance(event, TaskRetried) and "lease expired" in event.error
        ]
        assert expiries, "the killed worker's lease never expired"
        assert_bit_identical(result, local_result)
        assert store_fingerprint(dist_store) == store_fingerprint(local_store)
        # A died before its measure ran, B recomputed it exactly once:
        # the distributed marker count equals the healthy reference's.
        assert _count(calls_dir) - local_markers == local_markers
        assert result.quarantined_tasks == 0

    def test_fault_killed_worker_recovers_via_expiry(
        self, dist_experiment, tmp_path
    ):
        # The pure repro.faults variant: worker A SIGKILLs itself the
        # moment its first lease is granted (site ``queue.lease``,
        # action ``kill``); worker B, fault-free, drains everything.
        _, calls_dir = dist_experiment
        plan_dir = tmp_path / "faultplan"
        plan_dir.mkdir()
        plan = write_plan(
            plan_dir / "plan.json",
            [FaultSpec(site="queue.lease", action="kill", at=1)],
        )
        workers = []

        def on_ready(url):
            workers.append(
                start_worker(url, environment={"REPRO_FAULTS": str(plan)})
            )
            workers.append(start_worker(url))

        store = ResultStore(tmp_path / "store")
        result = serve_campaign(
            dist_spec(),
            store,
            lease_seconds=1.0,
            max_retries=2,
            retry_backoff=0.05,
            telemetry_enabled=False,
            on_ready=on_ready,
        )
        reap(workers)
        assert result.computed_values == 6
        assert result.quarantined_tasks == 0
        assert _count(calls_dir) == 6


class TestFailureDispositions:
    def test_unsupervised_policy_fails_fast(self, dist_experiment, tmp_path):
        # A task failure under max_retries=0 aborts the serve, exactly
        # like the local scheduler's fail-fast path.
        _, calls_dir = dist_experiment
        plan_dir = tmp_path / "faultplan"
        plan_dir.mkdir()
        plan = write_plan(
            plan_dir / "plan.json",
            [FaultSpec(site="measure", action="raise", count=0)],
        )
        workers = []
        store = ResultStore(tmp_path / "store")
        with pytest.raises(RemoteTaskError):
            serve_campaign(
                dist_spec(),
                store,
                max_retries=0,
                telemetry_enabled=False,
                on_ready=lambda url: workers.append(
                    start_worker(url, environment={"REPRO_FAULTS": str(plan)})
                ),
            )
        reap(workers)

    def test_exhausted_retries_quarantine_with_poison_records(
        self, dist_experiment, tmp_path
    ):
        # A persistent failure burns the retry budget, and the giveup
        # lands as the scheduler's own quarantine disposition: a poison
        # record in the store (verbatim fields) plus a TaskQuarantined
        # progress event — the campaign completes around it.
        _, calls_dir = dist_experiment
        plan_dir = tmp_path / "faultplan"
        plan_dir.mkdir()
        plan = write_plan(
            plan_dir / "plan.json",
            [FaultSpec(site="measure", action="raise", match="side=10", count=0)],
        )
        workers = []
        events = []
        store = ResultStore(tmp_path / "store")
        result = serve_campaign(
            dist_spec(),
            store,
            max_retries=1,
            retry_backoff=0.05,
            telemetry_enabled=False,
            progress=events.append,
            on_ready=lambda url: workers.append(
                start_worker(url, environment={"REPRO_FAULTS": str(plan)})
            ),
        )
        reap(workers)
        quarantined = [e for e in events if isinstance(e, TaskQuarantined)]
        assert len(quarantined) == 2  # side=10 in both seed scenarios
        assert result.quarantined_tasks == 2
        poison_keys = store.poison_keys()
        assert len(poison_keys) == 2
        for key in poison_keys:
            record = store.poison(key)
            assert record["campaign"] == "dist"
            assert record["attempts"] == 2
            assert "InjectedFault" in record["error"]
        # The healthy values still completed and checkpointed.
        assert result.computed_values == 4
