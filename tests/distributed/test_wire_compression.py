"""Transparent gzip on the result-server wire path.

The digest sideband always covers the *identity* bytes on both
directions — compression is a transfer detail stripped before any
verification — so these tests assert three things: round trips are
unchanged, large payloads actually travel compressed, and a corrupt
gzip body fails loudly instead of corrupting the store.
"""

import gzip
import hashlib
import json
import urllib.error
import urllib.request

import pytest

from repro.distributed import RemoteResultStore, ResultServer
from repro.distributed.server import GZIP_MIN_BYTES, KIND_HEADER, SHA_HEADER
from repro.store import ResultStore
from repro.store.codecs import encode_payload

#: Compresses extremely well and clears the size floor by a mile.
BIG_VALUE = {"rows": [{"l": 256.0, "r100": 1.25}] * 400}
SMALL_VALUE = {"l": 256.0}


def key_of(label):
    return hashlib.sha256(label.encode("utf-8")).hexdigest()


BIG = key_of("big")
SMALL = key_of("small")


@pytest.fixture
def served(tmp_path):
    store = ResultStore(tmp_path / "store")
    with ResultServer(store) as server:
        yield store, server, RemoteResultStore(server.url)


def opener():
    return urllib.request.build_opener(urllib.request.ProxyHandler({}))


def raw_get(url, key, accept_gzip):
    headers = {"Accept-Encoding": "gzip"} if accept_gzip else {}
    request = urllib.request.Request(f"{url}/objects/{key}", headers=headers)
    with opener().open(request, timeout=10.0) as response:
        return dict(response.headers), response.read()


def raw_put(url, key, body, headers):
    request = urllib.request.Request(
        f"{url}/objects/{key}", data=body, method="PUT", headers=headers
    )
    with opener().open(request, timeout=10.0) as response:
        return response.status


class TestWireCompression:
    def test_large_payload_round_trips_unchanged(self, served):
        store, _, remote = served
        remote.put(BIG, BIG_VALUE)
        assert remote.get(BIG) == BIG_VALUE
        assert store.get(BIG) == BIG_VALUE  # server-side copy identical

    def test_large_download_travels_gzipped_with_identity_digest(self, served):
        store, server, _ = served
        store.put(BIG, BIG_VALUE)
        headers, body = raw_get(server.url, BIG, accept_gzip=True)
        assert headers.get("Content-Encoding") == "gzip"
        identity = gzip.decompress(body)
        assert len(body) < len(identity)
        # The digest covers the identity bytes, not the wire bytes.
        assert headers[SHA_HEADER] == hashlib.sha256(identity).hexdigest()

    def test_client_without_gzip_support_gets_identity(self, served):
        store, server, _ = served
        store.put(BIG, BIG_VALUE)
        headers, body = raw_get(server.url, BIG, accept_gzip=False)
        assert "Content-Encoding" not in headers
        assert headers[SHA_HEADER] == hashlib.sha256(body).hexdigest()

    def test_small_payloads_are_never_compressed(self, served):
        store, server, _ = served
        store.put(SMALL, SMALL_VALUE)
        kind, _, payload = encode_payload(SMALL_VALUE)
        assert len(payload) < GZIP_MIN_BYTES
        headers, body = raw_get(server.url, SMALL, accept_gzip=True)
        assert "Content-Encoding" not in headers
        assert body == payload

    def test_gzipped_upload_is_accepted_and_verified(self, served):
        store, server, _ = served
        kind, _, payload = encode_payload(BIG_VALUE)
        status = raw_put(
            server.url,
            BIG,
            gzip.compress(payload, 1),
            {
                KIND_HEADER: kind,
                SHA_HEADER: hashlib.sha256(payload).hexdigest(),
                "Content-Encoding": "gzip",
            },
        )
        assert status == 200
        assert store.get(BIG) == BIG_VALUE

    def test_corrupt_gzip_upload_is_a_400_not_a_store_write(self, served):
        store, server, _ = served
        kind, _, payload = encode_payload(BIG_VALUE)
        body = bytearray(gzip.compress(payload, 1))
        body[-3] ^= 0xFF  # smash the gzip trailer
        with pytest.raises(urllib.error.HTTPError) as caught:
            raw_put(
                server.url,
                BIG,
                bytes(body),
                {
                    KIND_HEADER: kind,
                    SHA_HEADER: hashlib.sha256(payload).hexdigest(),
                    "Content-Encoding": "gzip",
                },
            )
        assert caught.value.code == 400
        message = json.loads(caught.value.read())["error"]
        assert "gzip" in message
        assert not store.contains(BIG)

    def test_unknown_content_encoding_is_rejected(self, served):
        _, server, _ = served
        kind, _, payload = encode_payload(SMALL_VALUE)
        with pytest.raises(urllib.error.HTTPError) as caught:
            raw_put(
                server.url,
                SMALL,
                payload,
                {KIND_HEADER: kind, "Content-Encoding": "br"},
            )
        assert caught.value.code == 400

    def test_client_put_compresses_large_bodies(self, served, monkeypatch):
        # Spy on the client's request to see the wire bytes it sends.
        _, _, remote = served
        seen = {}
        original = RemoteResultStore._request

        def spying(self, method, path, body=None, headers=None):
            if method == "PUT":
                seen["body"] = body
                seen["headers"] = dict(headers or {})
            return original(self, method, path, body=body, headers=headers)

        monkeypatch.setattr(RemoteResultStore, "_request", spying)
        remote.put(BIG, BIG_VALUE)
        _, _, identity = encode_payload(BIG_VALUE)
        assert seen["headers"].get("Content-Encoding") == "gzip"
        assert len(seen["body"]) < len(identity)
        assert seen["headers"][SHA_HEADER] == hashlib.sha256(
            identity
        ).hexdigest()
        assert remote.get(BIG) == BIG_VALUE
