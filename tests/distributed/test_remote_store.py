"""The HTTP result server and its store-shaped client, end to end.

Every test runs against a real :class:`ResultServer` on a loopback
socket — the same threaded server ``campaign serve`` starts — so the
wire protocol, both-end sha256 verification and error mapping are
exercised for real, not mocked.
"""

import hashlib
import json
import socket
import threading

import numpy as np
import pytest

from repro.distributed import RemoteResultStore, ResultServer
from repro.distributed.remote_store import RemoteStoreError
from repro.distributed.server import KIND_HEADER, LABEL_HEADER, SHA_HEADER
from repro.exceptions import ConfigurationError
from repro.simulation.results import FrameStatisticsColumns, StepColumns
from repro.simulation.sweep import SweepResult
from repro.store import ResultStore, StoreIntegrityError, StoreSweepCheckpoint


def key_of(label):
    return hashlib.sha256(label.encode("utf-8")).hexdigest()


def make_sweep():
    return SweepResult(
        parameter_name="l",
        rows=[{"l": 256.0, "r100": 1.2000000000000002}, {"l": 1024.0, "r100": 1.25}],
    )


def make_step_columns():
    return StepColumns(
        connected=np.array([True, False, True]),
        largest_component=np.array([9, 4, 9]),
    )


def make_frame_columns():
    return FrameStatisticsColumns(
        node_count=9,
        critical_ranges=np.array([1.5, 2.25]),
        curve_offsets=np.array([0, 2, 3]),
        curve_ranges=np.array([0.5, 1.5, 2.25]),
        curve_sizes=np.array([4, 9, 9]),
    )


@pytest.fixture
def served(tmp_path):
    store = ResultStore(tmp_path / "store")
    with ResultServer(store) as server:
        yield store, RemoteResultStore(server.url)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "value",
        [make_sweep(), make_step_columns(), make_frame_columns(), {"l": 1.0, "r": 2.5}],
        ids=["sweep", "steps", "frames", "row"],
    )
    def test_all_codec_kinds_round_trip(self, served, value):
        _, remote = served
        key = key_of("round-trip")
        assert not remote.contains(key)
        remote.put(key, value, metadata={"campaign": "t"}, kind="sweep")
        assert remote.contains(key)
        fetched = remote.get(key)
        if isinstance(value, SweepResult):
            assert fetched.rows == value.rows
            assert fetched.parameter_name == value.parameter_name
        else:
            assert fetched == value

    def test_remote_entry_matches_local_entry(self, served):
        local, remote = served
        key = key_of("entry")
        remote.put(key, {"l": 1.0}, metadata={"who": "remote"}, kind="sweep-row")
        assert remote.entry(key) == local.entry(key)
        assert remote.entry(key)["metadata"] == {"who": "remote"}
        assert remote.entry(key)["kind"] == "sweep-row"

    def test_remote_put_is_bit_identical_to_local_put(self, served, tmp_path):
        # The acceptance bar: an entry written over HTTP must be the
        # entry a local put would have produced — same payload digest.
        local, remote = served
        reference = ResultStore(tmp_path / "reference")
        key = key_of("identical")
        remote.put(key, make_sweep())
        reference.put(key, make_sweep())
        assert (
            local.entry(key)["payload_sha256"]
            == reference.entry(key)["payload_sha256"]
        )

    def test_keys_len_size_evict(self, served):
        local, remote = served
        first, second = key_of("one"), key_of("two")
        remote.put(first, {"l": 1.0})
        remote.put(second, {"l": 2.0})
        assert sorted(remote.keys()) == sorted(local.keys())
        assert len(remote) == 2
        assert remote.size_bytes() == local.size_bytes() > 0
        assert remote.evict(first)
        assert not remote.evict(first)
        assert len(remote) == 1

    def test_missing_key_raises_keyerror(self, served):
        _, remote = served
        with pytest.raises(KeyError):
            remote.get(key_of("missing"))
        with pytest.raises(KeyError):
            remote.entry(key_of("missing"))

    def test_malformed_key_raises_configuration_error(self, served):
        _, remote = served
        with pytest.raises(ConfigurationError):
            remote.get("not-hex-at-all")

    def test_bad_url_rejected_and_dead_server_unreachable(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RemoteResultStore("ftp://nope")
        store = ResultStore(tmp_path / "store")
        server = ResultServer(store).start()
        url = server.url
        server.stop()
        dead = RemoteResultStore(url, timeout=2.0)
        with pytest.raises(RemoteStoreError):
            dead.get(key_of("gone"))
        assert not dead.health()

    def test_mid_response_disconnect_maps_to_remote_store_error(self):
        # A server that accepts the connection and slams it shut without
        # answering reproduces the shutdown race: urllib leaves that as a
        # raw RemoteDisconnected/ConnectionResetError rather than a
        # URLError, and the client must still map it to RemoteStoreError
        # (run_worker treats post-contact RemoteStoreError as "server
        # gone, exit cleanly").
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def slam():
            connection, _ = listener.accept()
            connection.close()

        thread = threading.Thread(target=slam, daemon=True)
        thread.start()
        try:
            flaky = RemoteResultStore(f"http://127.0.0.1:{port}", timeout=5.0)
            with pytest.raises(RemoteStoreError):
                len(flaky)
            thread.join(timeout=5.0)
        finally:
            listener.close()


class TestIntegrity:
    def test_server_rejects_corrupted_upload(self, served):
        # Declare one digest, send different bytes: the server must
        # recompute, answer 422, and leave no entry behind.
        local, remote = served
        key = key_of("transit")
        payload = json.dumps({"schema_version": 1, "row": {"l": 1.0}}).encode()
        status, _, _ = remote._request(
            "PUT",
            f"/objects/{key}",
            body=payload,
            headers={
                KIND_HEADER: "sweep-row",
                SHA_HEADER: hashlib.sha256(b"other bytes").hexdigest(),
            },
        )
        assert status == 422
        assert not local.contains(key)

    def test_client_verifies_downloaded_digest(self, served):
        # Corrupt the payload on disk *without* touching the header —
        # the server streams the damaged bytes with the original digest
        # sideband and the client's own verification catches it.
        local, remote = served
        key = key_of("disk-corrupt")
        remote.put(key, {"l": 1.0, "r": 2.0})
        entry = local.entry(key)
        payload_path = (
            local.root / "objects" / key[:2] / key / entry["payload_file"]
        )
        payload_path.write_bytes(b"garbage")
        with pytest.raises(StoreIntegrityError):
            remote.get(key)

    def test_upload_without_kind_header_rejected(self, served):
        _, remote = served
        status, _, _ = remote._request(
            "PUT", f"/objects/{key_of('kindless')}", body=b"x", headers={}
        )
        assert status == 400


class TestStoreSurface:
    def test_poison_records_round_trip(self, served):
        local, remote = served
        key = key_of("poison")
        remote.record_poison(key, {"error": "boom", "attempts": 3})
        assert remote.poison_keys() == [key]
        record = remote.poison(key)
        assert record["error"] == "boom" and record["attempts"] == 3
        assert local.poison(key) == record  # verbatim server-side record
        assert remote.clear_poison(key)
        assert remote.poison(key) is None

    def test_quarantine_round_trip(self, served):
        local, remote = served
        key = key_of("quarantine")
        remote.put(key, {"l": 1.0})
        assert remote.quarantine_entry(key, reason="checksum mismatch")
        assert remote.quarantined_entries() == [key]
        provenance = remote.entry_provenance(key)
        assert provenance["reason"] == "checksum mismatch"
        assert remote.entry_provenance(key_of("other")) is None
        assert remote.clear_quarantine() == 1
        assert remote.quarantined_entries() == []

    def test_gc_round_trip(self, served):
        local, remote = served
        remote.put(key_of("gc-a"), {"l": 1.0})
        remote.put(key_of("gc-b"), {"l": 2.0})
        report = remote.gc(max_bytes=0, now=1e12)
        assert report.scanned == 2
        assert report.evicted == 2
        assert report.remaining_bytes == 0
        assert len(remote) == 0

    def test_staging_hygiene_passthrough(self, served):
        local, remote = served
        staging = local.root / "staging" / "424242-deadbeef"
        staging.mkdir(parents=True)
        assert remote.sweep_dead_staging() == 1
        assert remote.clear_staging(older_than=0.0) == 0

    def test_checkpoint_writes_through_remote_store(self, served, tmp_path):
        # The distributed worker path: a StoreSweepCheckpoint bound to
        # the remote store must land rows a *local* checkpoint over the
        # same payload can read back — and bit-identically so.
        local, remote = served
        payload = {"experiment": "fig2", "scale": "smoke", "seed": 1}
        remote_checkpoint = StoreSweepCheckpoint(remote, payload)
        row = {"l": 256.0, "r100": 1.2000000000000002}
        remote_checkpoint.save(256.0, row)
        assert remote_checkpoint.saved == 1

        local_checkpoint = StoreSweepCheckpoint(local, payload)
        assert local_checkpoint.load(256.0) == row
        key = local_checkpoint.key_for(256.0)
        assert key == remote_checkpoint.key_for(256.0)

        reference_store = ResultStore(tmp_path / "reference")
        StoreSweepCheckpoint(reference_store, payload).save(256.0, row)
        assert (
            local.entry(key)["payload_sha256"]
            == reference_store.entry(key)["payload_sha256"]
        )
