"""The worker-side content-addressed object cache."""

import hashlib
import json
import os
import pickle
import time

import pytest

from repro.distributed import LocalObjectCache, RemoteResultStore, ResultServer
from repro.distributed.object_cache import (
    CACHE_BYTES_ENV,
    CACHE_DIR_ENV,
    DEFAULT_MAX_BYTES,
    cache_from_environment,
)
from repro.store import ResultStore
from repro.store.codecs import encode_payload

VALUE = {"rows": [{"l": 256.0, "r100": 1.25}] * 50}


def key_of(label):
    return hashlib.sha256(label.encode("utf-8")).hexdigest()


KEY = key_of("entry")


class TestLocalObjectCache:
    def test_round_trip(self, tmp_path):
        cache = LocalObjectCache(tmp_path / "cache")
        cache.put("abcd", "json", b'{"x": 1}')
        assert cache.get("abcd") == ("json", b'{"x": 1}')
        assert cache.get("missing") is None

    def test_corrupt_payload_is_evicted_not_served(self, tmp_path):
        cache = LocalObjectCache(tmp_path / "cache")
        cache.put("abcd", "json", b'{"x": 1}')
        payload_path = tmp_path / "cache" / "ab" / "abcd.payload"
        payload_path.write_bytes(b'{"x": 2}')  # digest no longer matches
        assert cache.get("abcd") is None
        assert not payload_path.exists()  # evicted, never served again

    def test_tampered_meta_is_evicted(self, tmp_path):
        cache = LocalObjectCache(tmp_path / "cache")
        cache.put("abcd", "json", b'{"x": 1}')
        meta_path = tmp_path / "cache" / "ab" / "abcd.meta"
        meta_path.write_text(json.dumps({"kind": "json"}))  # no digest
        assert cache.get("abcd") is None

    def test_lru_eviction_under_a_byte_budget(self, tmp_path):
        cache = LocalObjectCache(tmp_path / "cache", max_bytes=250)
        cache.put("aa11", "json", b"x" * 100)
        cache.put("bb22", "json", b"y" * 100)
        # Make aa11 the most recently used, with mtimes far enough apart
        # for coarse filesystem timestamps.
        past = time.time() - 60.0
        os.utime(tmp_path / "cache" / "bb" / "bb22.payload", (past, past))
        assert cache.get("aa11") is not None
        cache.put("cc33", "json", b"z" * 100)  # 300 bytes > 250: evict LRU
        assert cache.get("bb22") is None
        assert cache.get("aa11") is not None
        assert cache.get("cc33") is not None
        assert cache.size_bytes() <= 250

    def test_put_never_raises(self, tmp_path):
        unwritable = tmp_path / "file-not-dir"
        unwritable.write_text("occupied")
        cache = LocalObjectCache(unwritable / "cache")
        cache.put("abcd", "json", b"payload")  # must degrade silently
        assert cache.get("abcd") is None


class TestEnvironmentResolution:
    def test_absent_variable_disables_the_cache(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert cache_from_environment() is None

    def test_directory_and_budget_resolve(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        monkeypatch.delenv(CACHE_BYTES_ENV, raising=False)
        cache = cache_from_environment()
        assert cache is not None
        assert cache.max_bytes == DEFAULT_MAX_BYTES
        monkeypatch.setenv(CACHE_BYTES_ENV, "12345")
        assert cache_from_environment().max_bytes == 12345
        monkeypatch.setenv(CACHE_BYTES_ENV, "0")
        assert cache_from_environment().max_bytes is None  # unbounded


class TestRemoteStoreIntegration:
    @pytest.fixture
    def served(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with ResultServer(store) as server:
            cache = LocalObjectCache(tmp_path / "cache")
            yield store, RemoteResultStore(server.url, object_cache=cache), cache

    def test_get_fills_the_cache_and_hits_avoid_the_network(
        self, served, monkeypatch
    ):
        store, remote, cache = served
        store.put(KEY, VALUE)
        assert remote.get(KEY) == VALUE  # network read, fills the cache
        kind, _, payload = encode_payload(VALUE)
        assert cache.get(KEY) == (kind, payload)

        def refuse(*args, **kwargs):
            raise AssertionError("a cache hit must not touch the network")

        monkeypatch.setattr(RemoteResultStore, "_request", refuse)
        assert remote.get(KEY) == VALUE  # served from the local copy

    def test_put_populates_the_cache(self, served, monkeypatch):
        _, remote, cache = served
        remote.put(KEY, VALUE)
        assert cache.get(KEY) is not None

        def refuse(*args, **kwargs):
            raise AssertionError("read-after-write must be cache-local")

        monkeypatch.setattr(RemoteResultStore, "_request", refuse)
        assert remote.get(KEY) == VALUE

    def test_corrupt_cache_copy_falls_back_to_the_network(self, served):
        store, remote, cache = served
        store.put(KEY, VALUE)
        assert remote.get(KEY) == VALUE
        # Corrupt the local copy; the digest check evicts it and the
        # next read re-downloads instead of serving garbage.
        payload_path = next(cache.root.glob(f"*/{KEY}.payload"))
        payload_path.write_bytes(b"garbage")
        assert remote.get(KEY) == VALUE
        kind, _, payload = encode_payload(VALUE)
        assert cache.get(KEY) == (kind, payload)  # re-filled, verified

    def test_evict_drops_the_local_copy_too(self, served):
        store, remote, cache = served
        remote.put(KEY, VALUE)
        assert remote.evict(KEY)
        assert cache.get(KEY) is None
        assert not store.contains(KEY)

    def test_environment_cache_engages_without_an_explicit_instance(
        self, tmp_path, monkeypatch
    ):
        store = ResultStore(tmp_path / "store")
        store.put(KEY, VALUE)
        with ResultServer(store) as server:
            remote = RemoteResultStore(server.url)
            monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envcache"))
            assert remote.get(KEY) == VALUE
            cache = cache_from_environment()
            assert cache.get(KEY) is not None

    def test_unpickled_client_adopts_the_worker_environment(
        self, tmp_path, monkeypatch
    ):
        store = ResultStore(tmp_path / "store")
        store.put(KEY, VALUE)
        with ResultServer(store) as server:
            monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
            shipped = pickle.dumps(RemoteResultStore(server.url))
            # The "worker" process sets its own cache directory after
            # unpickling; resolution is per call, so it is honored.
            monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "worker-cache"))
            worker_client = pickle.loads(shipped)
            assert worker_client.get(KEY) == VALUE
            assert cache_from_environment().get(KEY) is not None
