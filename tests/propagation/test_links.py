"""Tests for repro.propagation.links."""

import numpy as np
import pytest

from repro.graph.builder import build_communication_graph
from repro.propagation.links import (
    build_probabilistic_graph,
    connectivity_probability_monte_carlo,
    expected_degree,
    link_probability_matrix,
)
from repro.propagation.shadowing import LogNormalShadowing


class TestLinkProbabilityMatrix:
    def test_symmetric_zero_diagonal(self, small_placement):
        model = LogNormalShadowing.with_nominal_range(30.0)
        matrix = link_probability_matrix(small_placement, model)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)
        assert np.all((matrix >= 0.0) & (matrix <= 1.0))

    def test_single_node(self):
        model = LogNormalShadowing.with_nominal_range(30.0)
        assert link_probability_matrix(np.array([[0.0, 0.0]]), model).shape == (1, 1)


class TestBuildProbabilisticGraph:
    def test_zero_shadowing_matches_disk_builder(self, small_placement):
        nominal = 25.0
        model = LogNormalShadowing.with_nominal_range(nominal, shadowing_std=0.0)
        probabilistic = build_probabilistic_graph(
            small_placement, model, np.random.default_rng(1)
        )
        disk = build_communication_graph(small_placement, nominal)
        assert set(probabilistic.edges()) == set(disk.edges())

    def test_reproducible_with_seed(self, small_placement):
        model = LogNormalShadowing.with_nominal_range(25.0, shadowing_std=6.0)
        a = build_probabilistic_graph(small_placement, model, np.random.default_rng(5))
        b = build_probabilistic_graph(small_placement, model, np.random.default_rng(5))
        assert a.edges() == b.edges()

    def test_edge_frequency_tracks_probability(self):
        positions = np.array([[0.0, 0.0], [100.0, 0.0]])
        model = LogNormalShadowing.with_nominal_range(100.0, shadowing_std=6.0)
        rng = np.random.default_rng(2)
        trials = 2000
        count = sum(
            build_probabilistic_graph(positions, model, rng).edge_count
            for _ in range(trials)
        )
        assert count / trials == pytest.approx(0.5, abs=0.05)

    def test_records_nominal_range(self, small_placement):
        model = LogNormalShadowing.with_nominal_range(40.0)
        graph = build_probabilistic_graph(small_placement, model, np.random.default_rng(0))
        assert graph.transmitting_range == pytest.approx(40.0, rel=1e-9)


class TestExpectedDegree:
    def test_matches_matrix_row_sums(self, small_placement):
        model = LogNormalShadowing.with_nominal_range(30.0, shadowing_std=5.0)
        degrees = expected_degree(small_placement, model)
        matrix = link_probability_matrix(small_placement, model)
        assert np.allclose(degrees, matrix.sum(axis=1))

    def test_grows_with_nominal_range(self, small_placement):
        short = expected_degree(
            small_placement, LogNormalShadowing.with_nominal_range(10.0)
        )
        long = expected_degree(
            small_placement, LogNormalShadowing.with_nominal_range(60.0)
        )
        assert long.sum() > short.sum()


class TestConnectivityProbability:
    def test_disk_equivalent_is_deterministic(self, small_placement):
        from repro.connectivity.critical_range import critical_range

        r_star = critical_range(small_placement)
        connected_model = LogNormalShadowing.with_nominal_range(
            r_star * 1.01, shadowing_std=0.0
        )
        assert connectivity_probability_monte_carlo(
            small_placement, connected_model, iterations=20, seed=1
        ) == 1.0

    def test_shadowing_blurs_the_connectivity_threshold(self, small_placement):
        from repro.connectivity.critical_range import critical_range

        r_star = critical_range(small_placement)
        # Just below the critical range the disk model is never connected...
        below_disk = LogNormalShadowing.with_nominal_range(
            r_star * 0.9, shadowing_std=0.0
        )
        assert connectivity_probability_monte_carlo(
            small_placement, below_disk, iterations=20, seed=2
        ) == 0.0
        # ...while a shadowed model with the same nominal range is no longer
        # deterministic: lucky links sometimes bridge the critical gap and
        # unlucky ones sometimes break others, so the probability is strictly
        # between 0 and 1 (deterministic here because the fixture placement
        # and the Monte-Carlo seed are fixed).
        shadowed = LogNormalShadowing.with_nominal_range(r_star * 0.9, shadowing_std=4.0)
        probability = connectivity_probability_monte_carlo(
            small_placement, shadowed, iterations=60, seed=2
        )
        assert 0.0 < probability < 1.0
        # And the probability is monotone in the nominal range.
        low = connectivity_probability_monte_carlo(
            small_placement,
            LogNormalShadowing.with_nominal_range(r_star * 0.3, shadowing_std=4.0),
            iterations=30,
            seed=3,
        )
        high = connectivity_probability_monte_carlo(
            small_placement,
            LogNormalShadowing.with_nominal_range(r_star * 1.2, shadowing_std=4.0),
            iterations=30,
            seed=3,
        )
        assert low <= high

    def test_invalid_iterations(self, small_placement):
        model = LogNormalShadowing.with_nominal_range(30.0)
        with pytest.raises(ValueError):
            connectivity_probability_monte_carlo(small_placement, model, iterations=0)
