"""Tests for repro.propagation.shadowing."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.propagation.pathloss import LogDistancePathLoss
from repro.propagation.shadowing import LogNormalShadowing


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogNormalShadowing(shadowing_std=-1.0)
        with pytest.raises(ConfigurationError):
            LogNormalShadowing(tx_power_dbm=-100.0, sensitivity_dbm=-90.0)

    def test_with_nominal_range(self):
        model = LogNormalShadowing.with_nominal_range(150.0, shadowing_std=6.0)
        assert model.nominal_range == pytest.approx(150.0, rel=1e-9)
        with pytest.raises(ConfigurationError):
            LogNormalShadowing.with_nominal_range(0.0)


class TestLinkProbability:
    def test_zero_shadowing_is_disk_model(self):
        model = LogNormalShadowing.with_nominal_range(100.0, shadowing_std=0.0)
        assert model.link_probability(99.0) == 1.0
        assert model.link_probability(101.0) == 0.0

    def test_half_at_nominal_range(self):
        model = LogNormalShadowing.with_nominal_range(100.0, shadowing_std=6.0)
        assert model.link_probability(100.0) == pytest.approx(0.5, abs=1e-6)

    def test_monotone_decreasing_in_distance(self):
        model = LogNormalShadowing.with_nominal_range(100.0, shadowing_std=4.0)
        values = [model.link_probability(d) for d in (1.0, 50.0, 100.0, 150.0, 400.0)]
        assert values == sorted(values, reverse=True)

    def test_more_shadowing_softens_the_edge(self):
        sharp = LogNormalShadowing.with_nominal_range(100.0, shadowing_std=1.0)
        soft = LogNormalShadowing.with_nominal_range(100.0, shadowing_std=10.0)
        # Inside the nominal range, shadowing can only hurt; outside it can
        # only help.
        assert soft.link_probability(60.0) < sharp.link_probability(60.0)
        assert soft.link_probability(160.0) > sharp.link_probability(160.0)

    def test_invalid_distance(self):
        with pytest.raises(ConfigurationError):
            LogNormalShadowing().link_probability(-1.0)


class TestSampling:
    def test_sample_frequency_matches_probability(self):
        model = LogNormalShadowing.with_nominal_range(100.0, shadowing_std=6.0)
        rng = np.random.default_rng(3)
        distance = 110.0
        trials = 4000
        successes = sum(model.sample_link(distance, rng) for _ in range(trials))
        assert successes / trials == pytest.approx(
            model.link_probability(distance), abs=0.03
        )

    def test_deterministic_extremes_need_no_rng(self):
        model = LogNormalShadowing.with_nominal_range(100.0, shadowing_std=0.0)
        assert model.sample_link(10.0) is True
        assert model.sample_link(1000.0) is False
