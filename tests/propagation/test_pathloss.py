"""Tests for repro.propagation.pathloss."""

import pytest

from repro.exceptions import ConfigurationError
from repro.propagation.pathloss import LogDistancePathLoss


class TestPathLoss:
    def test_loss_at_reference_distance(self):
        model = LogDistancePathLoss(exponent=2.0, reference_distance=1.0, reference_loss=40.0)
        assert model.path_loss_db(1.0) == pytest.approx(40.0)

    def test_loss_grows_with_distance(self):
        model = LogDistancePathLoss()
        values = [model.path_loss_db(d) for d in (1.0, 10.0, 100.0, 1000.0)]
        assert values == sorted(values)

    def test_ten_times_distance_adds_10_alpha_db(self):
        model = LogDistancePathLoss(exponent=3.0)
        assert model.path_loss_db(10.0) - model.path_loss_db(1.0) == pytest.approx(30.0)

    def test_near_field_clamped(self):
        model = LogDistancePathLoss(reference_distance=1.0)
        assert model.path_loss_db(0.1) == model.path_loss_db(1.0)

    def test_received_power(self):
        model = LogDistancePathLoss(reference_loss=40.0)
        assert model.received_power_dbm(10.0, 1.0) == pytest.approx(-30.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss(exponent=0.5)
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss(reference_distance=0.0)
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss(reference_loss=-1.0)
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss().path_loss_db(-1.0)


class TestEffectiveRange:
    def test_round_trip_with_path_loss(self):
        model = LogDistancePathLoss(exponent=2.5, reference_loss=40.0)
        tx, sensitivity = 5.0, -85.0
        r = model.effective_range(tx, sensitivity)
        # At the effective range the received power equals the sensitivity.
        assert model.received_power_dbm(tx, r) == pytest.approx(sensitivity, abs=1e-9)

    def test_zero_when_budget_negative(self):
        model = LogDistancePathLoss()
        assert model.effective_range(-100.0, -90.0) == 0.0

    def test_larger_budget_larger_range(self):
        model = LogDistancePathLoss()
        assert model.effective_range(10.0, -90.0) > model.effective_range(0.0, -90.0)

    def test_higher_exponent_smaller_range(self):
        free_space = LogDistancePathLoss(exponent=2.0)
        cluttered = LogDistancePathLoss(exponent=4.0)
        assert cluttered.effective_range(0.0, -90.0) < free_space.effective_range(0.0, -90.0)

    def test_required_power_inverts_range(self):
        model = LogDistancePathLoss(exponent=3.0)
        sensitivity = -80.0
        needed = model.required_tx_power_dbm(123.0, sensitivity)
        assert model.effective_range(needed, sensitivity) == pytest.approx(123.0, rel=1e-9)
