"""Tests for :mod:`repro.backend`: the array-backend seam.

Three layers are pinned here:

* the registry contract — names, availability, lazy resolution, caching,
  and the registration/validation split (configs may *name* a backend the
  host cannot resolve);
* the ``numpy-strict`` verification backend — its guarded namespace must
  reject NumPy-isms outside the portable surface while still serving the
  portable names, and its functional idiom helpers must match the NumPy
  in-place forms bitwise;
* kernel parity — the refactored hot-path kernels (distance matrix, Prim
  MST single and batched, frame-statistics reduction) must be
  bit-identical under every available host backend.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.backend import (
    DEFAULT_BACKEND,
    NUMPY_BACKEND,
    ArrayBackend,
    available_backends,
    backend_names,
    register_backend,
    resolve_backend,
    validate_backend,
)
from repro.connectivity.critical_range import (
    minimum_spanning_edges_batch,
    minimum_spanning_edges_from_squared,
)
from repro.exceptions import ConfigurationError
from repro.geometry.distance import squared_distance_matrix
from repro.simulation.engine import frame_statistics, frame_statistics_columns

HOST_BACKENDS = [
    name for name in available_backends() if resolve_backend(name).is_host
]


def random_frames(batch: int, n: int, dimension: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((batch, n, dimension)) * 100.0


class TestRegistry:
    def test_default_backend_is_numpy(self):
        assert DEFAULT_BACKEND == "numpy"
        assert resolve_backend(None) is NUMPY_BACKEND
        assert NUMPY_BACKEND.name == "numpy"
        assert NUMPY_BACKEND.is_host
        assert NUMPY_BACKEND.xp is np

    def test_builtin_names_are_registered(self):
        names = backend_names()
        assert names == tuple(sorted(names))
        for name in ("numpy", "numpy-strict", "cupy", "torch"):
            assert name in names

    def test_host_backends_always_available(self):
        available = available_backends()
        assert "numpy" in available
        assert "numpy-strict" in available
        assert set(available) <= set(backend_names())

    def test_resolution_is_cached(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")
        assert resolve_backend("numpy-strict") is resolve_backend("numpy-strict")

    def test_instances_pass_through(self):
        handle = resolve_backend("numpy-strict")
        assert resolve_backend(handle) is handle

    def test_unknown_backend_is_rejected_with_registered_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_backend("jax")
        message = str(excinfo.value)
        assert "jax" in message
        assert "numpy" in message

    def test_validation_does_not_require_availability(self):
        # A config naming a GPU backend must build (and produce a cache
        # key) on a GPU-less host; only *resolving* it may fail.
        for name in ("cupy", "torch"):
            assert validate_backend(name) == name

    @pytest.mark.parametrize("name", ["cupy", "torch"])
    def test_missing_accelerator_backend_raises_on_resolve(self, name):
        if importlib.util.find_spec(name) is not None:
            pytest.skip(f"{name} is installed on this host")
        with pytest.raises(ConfigurationError, match=name):
            resolve_backend(name)
        assert name not in available_backends()

    def test_register_backend_replaces_and_invalidates_cache(self):
        class _Probe(ArrayBackend):
            name = "probe"

        try:
            register_backend("probe", _Probe)
            first = resolve_backend("probe")
            assert first.name == "probe"
            assert resolve_backend("probe") is first
            register_backend("probe", _Probe)
            assert resolve_backend("probe") is not first
        finally:
            from repro import backend as backend_module

            backend_module._REGISTRY.pop("probe", None)
            backend_module._RESOLVED.pop("probe", None)
        assert "probe" not in backend_names()

    def test_register_backend_rejects_bad_names(self):
        with pytest.raises(ConfigurationError):
            register_backend("", lambda: NUMPY_BACKEND)


class TestStrictNamespaceGuard:
    @pytest.fixture()
    def strict(self):
        return resolve_backend("numpy-strict")

    def test_portable_names_are_served(self, strict):
        xp = strict.xp
        values = xp.asarray([4.0, 1.0, 9.0])
        assert np.array_equal(xp.sqrt(values), np.sqrt([4.0, 1.0, 9.0]))
        assert xp.sum(values) == 14.0
        joined = xp.concat([values, values])
        assert joined.shape == (6,)

    @pytest.mark.parametrize("name", ["fill_diagonal", "intp", "put_along_axis", "ix_"])
    def test_numpy_only_names_are_rejected(self, strict, name):
        if importlib.util.find_spec("array_api_strict") is not None:
            pytest.skip("real array_api_strict namespace enforces its own surface")
        with pytest.raises(AttributeError, match="portable"):
            getattr(strict.xp, name)

    def test_arrays_are_host_ndarrays(self, strict):
        produced = strict.xp.zeros((2, 3))
        assert isinstance(produced, np.ndarray)
        assert np.array_equal(strict.to_host(produced), produced)
        round_tripped = strict.from_host(np.arange(4.0))
        assert np.array_equal(strict.to_host(round_tripped), np.arange(4.0))

    def test_idiom_helpers_match_numpy_forms(self, strict):
        rng = np.random.default_rng(7)
        for backend_pair in [(NUMPY_BACKEND, strict)]:
            fast, portable = backend_pair
            base = rng.random((4, 5, 5))
            mask = rng.random((4, 5, 5)) < 0.3
            expected = fast.fill_mask(base.copy(), mask, np.inf)
            observed = portable.fill_mask(portable.copy(base), mask, np.inf)
            assert np.array_equal(expected, observed)

            accumulator = rng.random((3, 6))
            update = rng.random((3, 6))
            expected = fast.minimum_update(accumulator.copy(), update)
            observed = portable.minimum_update(portable.copy(accumulator), update)
            assert np.array_equal(expected, observed)

            matrix = rng.random((3, 5, 5))
            batch_rows = np.arange(3)
            cols = rng.integers(0, 5, size=3)
            assert np.array_equal(
                fast.take_rows(matrix, batch_rows, cols),
                portable.take_rows(matrix, batch_rows, cols),
            )

            flat = rng.random((3, 25))
            pairs = rng.integers(0, 25, size=3)
            assert np.array_equal(
                fast.take_pairs(flat, batch_rows, pairs),
                portable.take_pairs(flat, batch_rows, pairs),
            )
            filled = fast.put_pairs(flat.copy(), batch_rows, pairs, np.inf)
            assert np.array_equal(
                filled,
                portable.put_pairs(portable.copy(flat), batch_rows, pairs, np.inf),
            )

            lengths = rng.random((2, 9))
            order_fast = fast.stable_argsort(lengths, axis=-1)
            order_portable = portable.stable_argsort(lengths, axis=-1)
            assert np.array_equal(order_fast, order_portable)
            assert np.array_equal(
                fast.take_along(lengths, order_fast, axis=-1),
                portable.take_along(lengths, order_portable, axis=-1),
            )


@pytest.mark.parametrize("backend_name", HOST_BACKENDS)
class TestKernelParity:
    """The refactored kernels are bit-identical across host backends."""

    def test_squared_distance_matrix(self, backend_name):
        backend = resolve_backend(backend_name)
        points = random_frames(1, 17, 3, seed=11)[0]
        expected = squared_distance_matrix(points)
        observed = squared_distance_matrix(points, xp=backend.xp)
        assert np.array_equal(backend.to_host(observed), expected)

    @pytest.mark.parametrize("dimension", [1, 2, 4])
    def test_prim_from_squared(self, backend_name, dimension):
        backend = resolve_backend(backend_name)
        points = random_frames(1, 23, dimension, seed=dimension)[0]
        squared = squared_distance_matrix(points)
        reference = minimum_spanning_edges_from_squared(squared)
        observed = minimum_spanning_edges_from_squared(squared, backend=backend)
        for expected_column, observed_column in zip(reference, observed):
            assert np.array_equal(expected_column, observed_column)

    def test_prim_batch(self, backend_name):
        backend = resolve_backend(backend_name)
        frames = random_frames(5, 19, 2, seed=3)
        reference = minimum_spanning_edges_batch(frames)
        observed = minimum_spanning_edges_batch(
            backend.from_host(frames), backend=backend
        )
        backend.synchronize()
        for expected_column, observed_column in zip(reference, observed):
            assert np.array_equal(
                NUMPY_BACKEND.to_host(expected_column),
                backend.to_host(observed_column),
            )

    def test_frame_statistics_columns(self, backend_name):
        frames = random_frames(6, 14, 2, seed=29)
        reference = frame_statistics_columns(frames)
        observed = frame_statistics_columns(frames, backend=backend_name)
        assert observed.node_count == reference.node_count
        assert np.array_equal(observed.critical_ranges, reference.critical_ranges)
        assert np.array_equal(observed.curve_offsets, reference.curve_offsets)
        assert np.array_equal(observed.curve_ranges, reference.curve_ranges)
        assert np.array_equal(observed.curve_sizes, reference.curve_sizes)

    def test_frame_statistics_columns_matches_per_frame_reference(self, backend_name):
        frames = random_frames(4, 12, 2, seed=41)
        columns = frame_statistics_columns(frames, backend=backend_name)
        for frame, statistics in zip(frames, columns):
            assert statistics == frame_statistics(frame)
