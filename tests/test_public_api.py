"""Tests of the top-level public API (`import repro`)."""

import inspect

import pytest

import repro


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists {name} but it is missing"

    def test_all_is_sorted_and_unique(self):
        names = [n for n in repro.__all__]
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_key_entry_points_are_callable_or_classes(self):
        for name in (
            "critical_range",
            "build_communication_graph",
            "estimate_thresholds",
            "stationary_critical_range",
            "uniform_placement",
            "simulate_epidemic_dissemination",
        ):
            assert callable(getattr(repro, name))
        for name in ("Region", "SimulationConfig", "RandomWaypointModel", "EnergyModel"):
            assert inspect.isclass(getattr(repro, name))

    def test_exceptions_form_a_hierarchy(self):
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.SimulationError, repro.ReproError)
        assert issubclass(repro.SearchError, repro.ReproError)
        assert issubclass(repro.AnalysisError, repro.ReproError)

    def test_quickstart_docstring_flow(self):
        """The flow shown in the package docstring works as written."""
        region = repro.Region.square(200.0)
        points = repro.uniform_placement(20, region, repro.make_rng(7))
        r_star = repro.critical_range(points)
        assert r_star > 0.0
        config = repro.SimulationConfig.paper_waypoint(
            side=200.0, steps=10, iterations=2, seed=7
        )
        thresholds = repro.estimate_thresholds(config)
        assert thresholds.r0 <= thresholds.r100

    def test_every_public_object_has_a_docstring(self):
        missing = []
        for name in repro.__all__:
            if name == "__version__":
                continue
            obj = getattr(repro, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"public objects without docstrings: {missing}"

    def test_experiment_registry_reachable_from_top_level(self):
        identifiers = {e.identifier for e in repro.list_experiments()}
        assert {"fig2", "fig9", "theorem5-1d"} <= identifiers
        assert repro.get_experiment("fig2").paper_reference == "Figure 2"
