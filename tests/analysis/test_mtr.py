"""Tests for repro.analysis.mtr."""

import pytest

from repro.analysis.mtr import MTRInstance, MTRMInstance
from repro.exceptions import ConfigurationError


class TestMTRInstance:
    def test_basic_properties(self):
        instance = MTRInstance(node_count=100, side=1000.0, dimension=2)
        assert instance.region.side == 1000.0
        assert instance.density == pytest.approx(100 / 1000.0**2)

    def test_cells_and_alpha(self):
        instance = MTRInstance(node_count=50, side=100.0, dimension=1)
        assert instance.cells_for_range(10.0) == pytest.approx(10.0)
        assert instance.alpha_for_range(10.0) == pytest.approx(5.0)
        assert instance.range_product(10.0) == pytest.approx(500.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MTRInstance(node_count=0, side=10.0)
        with pytest.raises(ConfigurationError):
            MTRInstance(node_count=5, side=0.0)
        with pytest.raises(ConfigurationError):
            MTRInstance(node_count=5, side=10.0, dimension=0)
        instance = MTRInstance(node_count=5, side=10.0)
        with pytest.raises(ConfigurationError):
            instance.cells_for_range(0.0)


class TestMTRMInstance:
    def test_basic_properties(self):
        instance = MTRMInstance(
            node_count=64, side=4096.0, steps=10000, connectivity_fraction=0.9
        )
        assert instance.region.dimension == 2
        stationary = instance.stationary_instance
        assert stationary.node_count == 64
        assert stationary.side == 4096.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MTRMInstance(node_count=0, side=10.0, steps=10, connectivity_fraction=0.5)
        with pytest.raises(ConfigurationError):
            MTRMInstance(node_count=5, side=10.0, steps=0, connectivity_fraction=0.5)
        with pytest.raises(ConfigurationError):
            MTRMInstance(node_count=5, side=10.0, steps=10, connectivity_fraction=0.0)
        with pytest.raises(ConfigurationError):
            MTRMInstance(node_count=5, side=10.0, steps=10, connectivity_fraction=1.2)

    def test_frozen(self):
        instance = MTRMInstance(
            node_count=5, side=10.0, steps=10, connectivity_fraction=1.0
        )
        with pytest.raises(AttributeError):
            instance.steps = 20
