"""Tests for repro.analysis.worst_best_case."""

import math

import numpy as np
import pytest

from repro.analysis.worst_best_case import (
    best_case_range_1d,
    best_case_range_2d,
    random_placement_range_order_1d,
    worst_case_range,
)
from repro.connectivity.critical_range import critical_range
from repro.exceptions import AnalysisError
from repro.geometry.region import Region
from repro.placement.strategies import grid_placement


class TestWorstCase:
    def test_is_region_diagonal(self):
        assert worst_case_range(100.0, 2) == pytest.approx(100.0 * math.sqrt(2))
        assert worst_case_range(100.0, 1) == pytest.approx(100.0)

    def test_invalid(self):
        with pytest.raises(AnalysisError):
            worst_case_range(0.0)
        with pytest.raises(AnalysisError):
            worst_case_range(10.0, 0)

    def test_corner_placement_needs_roughly_this_range(self, rng):
        from repro.placement.strategies import corner_clusters_placement

        region = Region.square(100.0)
        points = corner_clusters_placement(20, region, rng, spread=0.001)
        needed = critical_range(points)
        assert needed <= worst_case_range(100.0, 2)
        assert needed >= 0.9 * worst_case_range(100.0, 2)


class TestBestCase:
    def test_1d_value(self):
        assert best_case_range_1d(10, 100.0) == pytest.approx(10.0)
        assert best_case_range_1d(1, 100.0) == 0.0

    def test_1d_matches_grid_placement(self):
        region = Region.line(100.0)
        points = grid_placement(10, region)
        assert critical_range(points) == pytest.approx(best_case_range_1d(10, 100.0))

    def test_2d_value(self):
        assert best_case_range_2d(16, 100.0) == pytest.approx(25.0)
        assert best_case_range_2d(1, 100.0) == 0.0

    def test_2d_grid_connects_at_predicted_range(self):
        region = Region.square(100.0)
        points = grid_placement(16, region)
        predicted = best_case_range_2d(16, 100.0)
        assert critical_range(points) <= predicted + 1e-9

    def test_invalid(self):
        with pytest.raises(AnalysisError):
            best_case_range_1d(0, 10.0)
        with pytest.raises(AnalysisError):
            best_case_range_2d(5, 0.0)


class TestOrderComparison:
    def test_random_between_best_and_worst(self):
        side = 1000.0
        n = int(side)  # n linear in l, the paper's comparison regime.
        best = best_case_range_1d(n, side)
        random_order = random_placement_range_order_1d(n, side)
        worst = worst_case_range(side, 1)
        assert best < random_order < worst

    def test_invalid(self):
        with pytest.raises(AnalysisError):
            random_placement_range_order_1d(0, 10.0)
