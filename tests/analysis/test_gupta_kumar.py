"""Tests for repro.analysis.gupta_kumar."""

import math

import numpy as np
import pytest

from repro.analysis.gupta_kumar import gupta_kumar_critical_range, gupta_kumar_node_count
from repro.exceptions import AnalysisError


class TestCriticalRange:
    def test_unit_square_formula(self):
        n = 100
        expected = math.sqrt(math.log(n) / (math.pi * n))
        assert gupta_kumar_critical_range(n) == pytest.approx(expected)

    def test_scales_linearly_with_side(self):
        assert gupta_kumar_critical_range(100, side=50.0) == pytest.approx(
            50.0 * gupta_kumar_critical_range(100, side=1.0)
        )

    def test_decreasing_in_n(self):
        values = [gupta_kumar_critical_range(n) for n in (10, 100, 1000, 10000)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_constant_increases_range(self):
        assert gupta_kumar_critical_range(100, constant=2.0) > gupta_kumar_critical_range(
            100, constant=0.0
        )

    def test_invalid(self):
        with pytest.raises(AnalysisError):
            gupta_kumar_critical_range(1)
        with pytest.raises(AnalysisError):
            gupta_kumar_critical_range(100, side=0.0)

    def test_roughly_predicts_simulated_critical_range(self):
        """The GK threshold should be within a small constant factor of the
        simulated stationary critical range for a dense 2-D network."""
        from repro.simulation.runner import stationary_critical_range

        n, side = 200, 1000.0
        simulated = stationary_critical_range(
            n, side, dimension=2, iterations=60, seed=1, confidence=0.5
        )
        analytical = gupta_kumar_critical_range(n, side)
        assert 0.5 * analytical < simulated < 3.0 * analytical


class TestNodeCount:
    def test_inverts_range(self):
        n = 500
        r = gupta_kumar_critical_range(n, side=100.0)
        recovered = gupta_kumar_node_count(r, side=100.0)
        assert recovered == pytest.approx(n, rel=0.05)

    def test_smaller_range_needs_more_nodes(self):
        assert gupta_kumar_node_count(1.0, side=100.0) > gupta_kumar_node_count(
            5.0, side=100.0
        )

    def test_invalid(self):
        with pytest.raises(AnalysisError):
            gupta_kumar_node_count(0.0)
        with pytest.raises(AnalysisError):
            gupta_kumar_node_count(1.0, side=-2.0)
