"""Tests for repro.analysis.bounds_1d (Theorems 3-5)."""

import numpy as np
import pytest

from repro.analysis.bounds_1d import (
    connectivity_probability_1d_exact,
    critical_product_1d,
    nodes_for_connectivity_1d,
    range_for_connectivity_1d,
    range_for_connectivity_probability_1d,
    range_lower_bound_1d,
    range_upper_bound_1d,
)
from repro.connectivity.metrics import is_placement_connected
from repro.exceptions import AnalysisError


class TestCriticalProduct:
    def test_value(self):
        assert critical_product_1d(np.e) == pytest.approx(np.e)
        assert critical_product_1d(100.0) == pytest.approx(100.0 * np.log(100.0))

    def test_small_side_clamped_to_zero(self):
        assert critical_product_1d(1.0) == 0.0
        assert critical_product_1d(0.5) == 0.0

    def test_invalid(self):
        with pytest.raises(AnalysisError):
            critical_product_1d(0.0)


class TestPredictors:
    def test_range_and_nodes_are_duals(self):
        side = 10000.0
        n = 500
        r = range_for_connectivity_1d(n, side)
        assert nodes_for_connectivity_1d(r, side) == pytest.approx(n, abs=1)

    def test_upper_bound_exceeds_lower_bound(self):
        assert range_upper_bound_1d(100, 1000.0) > range_lower_bound_1d(100, 1000.0)

    def test_invalid_arguments(self):
        with pytest.raises(AnalysisError):
            range_for_connectivity_1d(0, 100.0)
        with pytest.raises(AnalysisError):
            range_for_connectivity_1d(10, 100.0, constant=0.0)
        with pytest.raises(AnalysisError):
            nodes_for_connectivity_1d(0.0, 100.0)


class TestExactProbability:
    def test_trivial_cases(self):
        assert connectivity_probability_1d_exact(1, 100.0, 0.0) == 1.0
        assert connectivity_probability_1d_exact(5, 100.0, 0.0) == 0.0
        assert connectivity_probability_1d_exact(5, 100.0, 100.0) == 1.0
        assert connectivity_probability_1d_exact(5, 100.0, 200.0) == 1.0

    def test_monotone_in_range(self):
        # Allow a tiny tolerance: the alternating inclusion-exclusion sum
        # leaves ~1e-10 cancellation noise at very small probabilities.
        probabilities = [
            connectivity_probability_1d_exact(20, 100.0, r) for r in np.linspace(1, 60, 30)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(probabilities, probabilities[1:]))

    def test_monotone_in_nodes_when_dense(self):
        # In the dense regime (r comfortably above l/n) adding nodes helps;
        # note this is NOT true in the sparse regime, where extra nodes add
        # extra gaps that must also be covered.
        values = [connectivity_probability_1d_exact(n, 100.0, 30.0) for n in (5, 10, 20, 40)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_two_nodes_closed_form(self):
        # For n=2, P(connected) = P(|X1 - X2| <= r) = 2r/l - (r/l)^2.
        side, r = 10.0, 3.0
        expected = 2 * r / side - (r / side) ** 2
        assert connectivity_probability_1d_exact(2, side, r) == pytest.approx(expected)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        side, n, r = 100.0, 15, 15.0
        trials = 3000
        connected = 0
        for _ in range(trials):
            points = np.sort(rng.uniform(0, side, size=n))
            if np.max(np.diff(points)) <= r:
                connected += 1
        empirical = connected / trials
        assert connectivity_probability_1d_exact(n, side, r) == pytest.approx(
            empirical, abs=0.03
        )

    def test_invalid_arguments(self):
        with pytest.raises(AnalysisError):
            connectivity_probability_1d_exact(0, 10.0, 1.0)
        with pytest.raises(AnalysisError):
            connectivity_probability_1d_exact(5, -1.0, 1.0)
        with pytest.raises(AnalysisError):
            connectivity_probability_1d_exact(5, 10.0, -1.0)


class TestRangeForProbability:
    def test_achieves_requested_probability(self):
        side, n = 1000.0, 50
        r = range_for_connectivity_probability_1d(n, side, 0.9)
        assert connectivity_probability_1d_exact(n, side, r) >= 0.9
        assert connectivity_probability_1d_exact(n, side, r * 0.95) < 0.9

    def test_higher_probability_needs_larger_range(self):
        side, n = 1000.0, 50
        assert range_for_connectivity_probability_1d(
            n, side, 0.99
        ) > range_for_connectivity_probability_1d(n, side, 0.5)

    def test_invalid_probability(self):
        with pytest.raises(AnalysisError):
            range_for_connectivity_probability_1d(10, 100.0, 1.0)


class TestTheorem5Empirically:
    """The headline result: r n ~ l log l separates connectivity regimes."""

    def test_upper_bound_connects_with_high_probability(self):
        rng = np.random.default_rng(42)
        side = 2000.0
        n = 200
        r = range_upper_bound_1d(n, side, constant=2.0)
        connected = sum(
            is_placement_connected(rng.uniform(0, side, size=(n, 1)), r)
            for _ in range(40)
        )
        assert connected >= 36  # At least 90% of placements connected.

    def test_lower_bound_disconnects_frequently(self):
        rng = np.random.default_rng(43)
        side = 2000.0
        n = 200
        r = range_lower_bound_1d(n, side, constant=0.15)
        connected = sum(
            is_placement_connected(rng.uniform(0, side, size=(n, 1)), r)
            for _ in range(40)
        )
        assert connected <= 20  # Far from always connected.
