"""Tests for repro.analysis.bounds_2d (Penrose / Gupta-Kumar 2-D theory)."""

import numpy as np
import pytest

from repro.analysis.bounds_2d import (
    critical_range_distribution_2d,
    isolated_node_probability_2d,
    nodes_for_connectivity_2d,
    range_for_connectivity_2d,
)
from repro.analysis.gupta_kumar import gupta_kumar_critical_range
from repro.connectivity.critical_range import critical_range
from repro.exceptions import AnalysisError


class TestCriticalRangeDistribution:
    def test_bounds(self):
        for r in (0.0, 10.0, 100.0, 1000.0):
            value = critical_range_distribution_2d(50, 1000.0, r)
            assert 0.0 <= value <= 1.0

    def test_monotone_in_radius(self):
        values = [
            critical_range_distribution_2d(50, 1000.0, r)
            for r in np.linspace(1.0, 600.0, 40)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_zero_radius(self):
        assert critical_range_distribution_2d(50, 1000.0, 0.0) == 0.0

    def test_large_radius_near_one(self):
        assert critical_range_distribution_2d(50, 1000.0, 900.0) > 0.999

    def test_matches_monte_carlo_on_torus(self):
        """The predicted critical-range quantiles track the empirical
        quantiles of the *toroidal* critical range (the law is stated
        without boundary effects).  The comparison is made on the range
        scale because the probability scale converges only at a
        log-log-slow rate."""
        from repro.connectivity.critical_range import critical_range_toroidal

        rng = np.random.default_rng(0)
        n, side = 80, 1000.0
        samples = [
            critical_range_toroidal(rng.uniform(0, side, size=(n, 2)), side)
            for _ in range(300)
        ]
        for quantile in (0.5, 0.9, 0.99):
            empirical = float(np.quantile(samples, quantile))
            predicted = range_for_connectivity_2d(n, side, quantile)
            assert predicted == pytest.approx(empirical, rel=0.15)

    def test_square_region_needs_larger_range_than_torus(self):
        """Boundary effects: the square's critical range exceeds the torus's."""
        from repro.connectivity.critical_range import critical_range_toroidal

        rng = np.random.default_rng(5)
        n, side = 60, 1000.0
        square = []
        torus = []
        for _ in range(60):
            points = rng.uniform(0, side, size=(n, 2))
            square.append(critical_range(points))
            torus.append(critical_range_toroidal(points, side))
        assert np.mean(square) > np.mean(torus)
        # The toroidal range never exceeds the Euclidean one for the same
        # placement (wrap-around can only shorten links).
        assert all(t <= s + 1e-9 for s, t in zip(square, torus))

    def test_invalid_arguments(self):
        with pytest.raises(AnalysisError):
            critical_range_distribution_2d(1, 100.0, 10.0)
        with pytest.raises(AnalysisError):
            critical_range_distribution_2d(10, 0.0, 10.0)
        with pytest.raises(AnalysisError):
            critical_range_distribution_2d(10, 100.0, -1.0)


class TestRangeForConnectivity:
    def test_round_trip_with_distribution(self):
        n, side, p = 60, 500.0, 0.95
        r = range_for_connectivity_2d(n, side, p)
        assert critical_range_distribution_2d(n, side, r) == pytest.approx(p, abs=1e-9)

    def test_monotone_in_probability(self):
        assert range_for_connectivity_2d(60, 500.0, 0.99) > range_for_connectivity_2d(
            60, 500.0, 0.5
        )

    def test_reduces_to_gupta_kumar_order(self):
        n, side = 500, 1000.0
        penrose = range_for_connectivity_2d(n, side, 0.5)
        gk = gupta_kumar_critical_range(n, side)
        assert 0.5 * gk < penrose < 2.0 * gk

    def test_tracks_simulated_rstationary(self):
        from repro.simulation.runner import stationary_critical_range

        n, side = 64, 1000.0
        simulated = stationary_critical_range(
            n, side, dimension=2, iterations=150, seed=4, confidence=0.9
        )
        predicted = range_for_connectivity_2d(n, side, 0.9)
        assert predicted == pytest.approx(simulated, rel=0.35)

    def test_invalid_probability(self):
        with pytest.raises(AnalysisError):
            range_for_connectivity_2d(10, 100.0, 1.0)


class TestNodesForConnectivity:
    def test_inverts_range(self):
        n, side, p = 300, 1000.0, 0.9
        r = range_for_connectivity_2d(n, side, p)
        recovered = nodes_for_connectivity_2d(r, side, p)
        assert recovered == pytest.approx(n, rel=0.05)

    def test_smaller_range_needs_more_nodes(self):
        assert nodes_for_connectivity_2d(20.0, 1000.0) > nodes_for_connectivity_2d(
            80.0, 1000.0
        )

    def test_invalid_arguments(self):
        with pytest.raises(AnalysisError):
            nodes_for_connectivity_2d(0.0, 100.0)
        with pytest.raises(AnalysisError):
            nodes_for_connectivity_2d(10.0, 100.0, probability=0.0)


class TestIsolatedNodeProbability:
    def test_bounds_and_monotonicity(self):
        values = [
            isolated_node_probability_2d(50, 1000.0, r) for r in (10.0, 50.0, 150.0, 400.0)
        ]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_huge_range_no_isolation(self):
        assert isolated_node_probability_2d(10, 100.0, 100.0) == 0.0

    def test_isolation_lower_bounds_disconnection(self):
        """P(some isolated node) <= P(disconnected): isolated nodes are the
        weaker criterion the paper improves on in 1-D."""
        rng = np.random.default_rng(1)
        n, side, r = 40, 1000.0, 150.0
        trials = 300
        disconnected = 0
        for _ in range(trials):
            points = rng.uniform(0, side, size=(n, 2))
            if critical_range(points) > r:
                disconnected += 1
        empirical_disconnection = disconnected / trials
        estimate = isolated_node_probability_2d(n, side, r)
        # The union bound can overshoot; only check it is not wildly above
        # the empirical disconnection probability when it is informative.
        if estimate < 0.5:
            assert estimate <= empirical_disconnection + 0.15
