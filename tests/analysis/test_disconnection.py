"""Tests for repro.analysis.disconnection."""

import numpy as np
import pytest

from repro.analysis.disconnection import (
    disconnection_probability_estimate_1d,
    gap_event_probability_at_mean,
    gap_event_probability_estimate,
    isolated_node_probability_1d,
)
from repro.exceptions import AnalysisError
from repro.occupancy.cells import cell_occupancy_from_positions


class TestGapEventProbability:
    def test_bounds(self):
        for n in (5, 20, 80):
            value = gap_event_probability_estimate(n, 10)
            assert 0.0 <= value <= 1.0

    def test_decreasing_in_n(self):
        cells = 12
        values = [gap_event_probability_estimate(n, cells) for n in (12, 24, 48, 96, 192)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_many_balls_rarely_gap(self):
        assert gap_event_probability_estimate(500, 10) < 0.01

    def test_few_balls_usually_gap(self):
        assert gap_event_probability_estimate(5, 50) > 0.9

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(7)
        n, cells = 20, 10
        side = float(cells)
        trials = 4000
        hits = 0
        for _ in range(trials):
            positions = rng.uniform(0, side, size=(n, 1))
            occupancy = cell_occupancy_from_positions(positions, side, 1.0)
            if occupancy.has_gap:
                hits += 1
        empirical = hits / trials
        assert gap_event_probability_estimate(n, cells) == pytest.approx(
            empirical, abs=0.03
        )

    def test_invalid_arguments(self):
        with pytest.raises(AnalysisError):
            gap_event_probability_estimate(-1, 5)
        with pytest.raises(AnalysisError):
            gap_event_probability_estimate(5, 0)


class TestGapEventAtMean:
    def test_is_lower_bound_of_full_estimate(self):
        for n, cells in [(30, 20), (60, 20), (100, 40)]:
            single_term = gap_event_probability_at_mean(n, cells)
            full = gap_event_probability_estimate(n, cells)
            assert single_term <= full + 1e-9

    def test_positive_in_rhid_regime(self):
        # l << rn << l log l translates to C << n << C log C.
        cells = 200
        n = int(cells * 2.5)
        assert gap_event_probability_at_mean(n, cells) > 0.0


class TestIsolatedNodeProbability:
    def test_bounds(self):
        assert 0.0 <= isolated_node_probability_1d(50, 1000.0, 10.0) <= 1.0

    def test_large_range_no_isolation(self):
        assert isolated_node_probability_1d(10, 100.0, 100.0) == 0.0

    def test_decreasing_in_range(self):
        values = [
            isolated_node_probability_1d(50, 1000.0, r) for r in (5.0, 20.0, 50.0, 100.0)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_isolation_is_weaker_than_disconnection(self):
        # P(isolated node) <= P(disconnected): the isolated-node estimate
        # (when below 1) should not exceed the exact disconnection probability.
        n, side, r = 40, 1000.0, 40.0
        isolated = isolated_node_probability_1d(n, side, r)
        disconnected = disconnection_probability_estimate_1d(n, side, r)
        if isolated < 1.0:
            assert isolated <= disconnected + 0.05


class TestDisconnectionProbability:
    def test_complements_connectivity(self):
        from repro.analysis.bounds_1d import connectivity_probability_1d_exact

        n, side, r = 25, 500.0, 30.0
        assert disconnection_probability_estimate_1d(n, side, r) == pytest.approx(
            1.0 - connectivity_probability_1d_exact(n, side, r)
        )

    def test_gap_estimate_lower_bounds_disconnection(self):
        # Lemma 1: the gap event is a sufficient condition for disconnection,
        # so its probability must not exceed the disconnection probability.
        n, side = 30, 100.0
        for r in (5.0, 10.0, 20.0):
            cells = int(side / r)
            gap = gap_event_probability_estimate(n, cells)
            disconnected = disconnection_probability_estimate_1d(n, side, r)
            assert gap <= disconnected + 0.02
