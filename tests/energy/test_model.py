"""Tests for repro.energy.model."""

import pytest

from repro.energy.model import (
    EnergyModel,
    FREE_SPACE_EXPONENT,
    TWO_RAY_GROUND_EXPONENT,
    transmission_power,
)
from repro.exceptions import ConfigurationError


class TestTransmissionPower:
    def test_free_space_square_law(self):
        assert transmission_power(3.0) == pytest.approx(9.0)

    def test_exponent(self):
        assert transmission_power(2.0, path_loss_exponent=4.0) == pytest.approx(16.0)

    def test_coefficient(self):
        assert transmission_power(2.0, coefficient=0.5) == pytest.approx(2.0)

    def test_zero_range(self):
        assert transmission_power(0.0) == 0.0

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            transmission_power(-1.0)
        with pytest.raises(ConfigurationError):
            transmission_power(1.0, path_loss_exponent=0.5)
        with pytest.raises(ConfigurationError):
            transmission_power(1.0, coefficient=0.0)

    def test_exponent_constants(self):
        assert FREE_SPACE_EXPONENT == 2.0
        assert TWO_RAY_GROUND_EXPONENT == 4.0


class TestEnergyModel:
    def test_node_power_includes_electronics(self):
        model = EnergyModel(electronics_power=5.0)
        assert model.node_power(0.0) == 5.0
        assert model.node_power(2.0) == pytest.approx(9.0)

    def test_power_ratio(self):
        model = EnergyModel()
        assert model.power_ratio(1.0, 2.0) == pytest.approx(0.25)

    def test_power_ratio_zero_denominator(self):
        model = EnergyModel()
        with pytest.raises(ConfigurationError):
            model.power_ratio(1.0, 0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(path_loss_exponent=0.0)
        with pytest.raises(ConfigurationError):
            EnergyModel(amplifier_coefficient=-1.0)
        with pytest.raises(ConfigurationError):
            EnergyModel(electronics_power=-1.0)

    def test_higher_exponent_amplifies_savings(self):
        free_space = EnergyModel(path_loss_exponent=2.0)
        two_ray = EnergyModel(path_loss_exponent=4.0)
        assert two_ray.power_ratio(0.5, 1.0) < free_space.power_ratio(0.5, 1.0)
