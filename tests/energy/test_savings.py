"""Tests for repro.energy.savings."""

import math

import pytest

from repro.energy.model import EnergyModel
from repro.energy.savings import (
    energy_savings_fraction,
    equivalent_lifetime_factor,
    network_energy,
    range_reduction_for_savings,
    savings_table,
)
from repro.exceptions import ConfigurationError


class TestNetworkEnergy:
    def test_scales_with_nodes(self):
        assert network_energy(10, 2.0) == pytest.approx(10 * 4.0)

    def test_zero_nodes(self):
        assert network_energy(0, 5.0) == 0.0

    def test_invalid_node_count(self):
        with pytest.raises(ConfigurationError):
            network_energy(-1, 5.0)


class TestSavingsFraction:
    def test_halving_range_saves_75_percent(self):
        assert energy_savings_fraction(0.5, 1.0) == pytest.approx(0.75)

    def test_no_reduction_no_savings(self):
        assert energy_savings_fraction(1.0, 1.0) == pytest.approx(0.0)

    def test_paper_scenario_r90(self):
        # The paper reports r90 is ~35-40% below r100; at alpha=2 that is a
        # 58-64% transmission-energy saving.
        saving = energy_savings_fraction(0.62, 1.0)
        assert 0.55 < saving < 0.65

    def test_negative_range_rejected(self):
        with pytest.raises(ConfigurationError):
            energy_savings_fraction(-0.1, 1.0)

    def test_zero_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            energy_savings_fraction(0.5, 0.0)

    def test_electronics_power_dampens_savings(self):
        pure = energy_savings_fraction(0.5, 1.0, EnergyModel())
        with_overhead = energy_savings_fraction(
            0.5, 1.0, EnergyModel(electronics_power=1.0)
        )
        assert with_overhead < pure


class TestRangeReduction:
    def test_inverts_savings(self):
        ratio = range_reduction_for_savings(0.75)
        assert ratio == pytest.approx(0.5)
        assert energy_savings_fraction(ratio, 1.0) == pytest.approx(0.75)

    def test_higher_exponent_needs_smaller_reduction(self):
        alpha2 = range_reduction_for_savings(0.5, EnergyModel(path_loss_exponent=2.0))
        alpha4 = range_reduction_for_savings(0.5, EnergyModel(path_loss_exponent=4.0))
        assert alpha4 > alpha2

    def test_invalid_target(self):
        with pytest.raises(ConfigurationError):
            range_reduction_for_savings(1.0)

    def test_rejects_electronics_term(self):
        with pytest.raises(ConfigurationError):
            range_reduction_for_savings(0.5, EnergyModel(electronics_power=1.0))


class TestSavingsTable:
    def test_pure_path_loss(self):
        table = savings_table({"r90": 0.6, "r10": 0.4})
        assert table["r90"] == pytest.approx(1 - 0.36)
        assert table["r10"] == pytest.approx(1 - 0.16)

    def test_reference_ratio_gives_zero(self):
        assert savings_table({"r100": 1.0})["r100"] == pytest.approx(0.0)

    def test_invalid_ratio(self):
        with pytest.raises(ConfigurationError):
            savings_table({"bad": -0.5})

    def test_with_electronics_term(self):
        table = savings_table({"r90": 0.5}, EnergyModel(electronics_power=1.0))
        assert 0.0 < table["r90"] < 0.75


class TestLifetimeFactor:
    def test_halving_range_quadruples_lifetime(self):
        assert equivalent_lifetime_factor(0.5, 1.0) == pytest.approx(4.0)

    def test_zero_reduced_power_is_infinite(self):
        assert math.isinf(equivalent_lifetime_factor(0.0, 1.0))
