"""Tests for repro.dissemination.contacts."""

import numpy as np
import pytest

from repro.dissemination.contacts import (
    ContactStatistics,
    contact_statistics,
    intercontact_times,
)
from repro.exceptions import ConfigurationError
from repro.geometry.region import Region
from repro.mobility.drunkard import DrunkardModel
from repro.mobility.trace import record_trace


def oscillating_frames():
    """Two nodes alternating between in-range and out-of-range positions."""
    near = np.array([[0.0, 0.0], [1.0, 0.0]])
    far = np.array([[0.0, 0.0], [50.0, 0.0]])
    # Steps: contact, contact, gap, gap, contact, gap, contact
    return [near, near, far, far, near, far, near]


class TestContactStatistics:
    def test_oscillating_pair(self):
        stats = contact_statistics(oscillating_frames(), 2.0)
        assert stats.pair_count == 1
        assert stats.pairs_with_contact == 1
        assert stats.total_contacts == 3       # {0,1}, {4}, {6}
        assert stats.mean_contact_duration == pytest.approx((2 + 1 + 1) / 3)
        assert stats.mean_intercontact_time == pytest.approx((2 + 1) / 2)
        assert stats.contact_pair_fraction == 1.0

    def test_always_in_contact(self):
        near = np.array([[0.0, 0.0], [1.0, 0.0]])
        stats = contact_statistics([near] * 5, 2.0)
        assert stats.total_contacts == 1
        assert stats.mean_contact_duration == 5.0
        assert stats.mean_intercontact_time == 0.0

    def test_never_in_contact(self):
        far = np.array([[0.0, 0.0], [50.0, 0.0]])
        stats = contact_statistics([far] * 5, 2.0)
        assert stats.pairs_with_contact == 0
        assert stats.total_contacts == 0
        assert stats.contact_pair_fraction == 0.0

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            contact_statistics([], 1.0)

    def test_single_node(self):
        stats = contact_statistics([np.array([[0.0, 0.0]])] * 3, 1.0)
        assert stats.pair_count == 0
        assert stats.contact_pair_fraction == 0.0

    def test_larger_range_more_contact_pairs(self):
        region = Region.square(100.0)
        rng = np.random.default_rng(8)
        trace = record_trace(
            DrunkardModel(step_radius=8.0),
            region.sample_uniform(12, rng),
            region,
            steps=40,
            seed=8,
        )
        short = contact_statistics(trace.frames, 10.0)
        long = contact_statistics(trace.frames, 60.0)
        assert long.pairs_with_contact >= short.pairs_with_contact
        assert long.contact_pair_fraction >= short.contact_pair_fraction


class TestIntercontactTimes:
    def test_oscillating_pair(self):
        gaps = intercontact_times(oscillating_frames(), 2.0)
        assert gaps == {(0, 1): [2, 1]}

    def test_no_contacts(self):
        far = np.array([[0.0, 0.0], [50.0, 0.0]])
        assert intercontact_times([far] * 3, 2.0) == {}

    def test_gap_lengths_bounded_by_trace(self):
        region = Region.square(100.0)
        rng = np.random.default_rng(9)
        trace = record_trace(
            DrunkardModel(step_radius=10.0),
            region.sample_uniform(8, rng),
            region,
            steps=30,
            seed=9,
        )
        gaps = intercontact_times(trace.frames, 20.0)
        for pair_gaps in gaps.values():
            assert all(0 < gap < 30 for gap in pair_gaps)
