"""Tests for repro.dissemination.epidemic."""

import numpy as np
import pytest

from repro.dissemination.epidemic import (
    contact_events,
    simulate_epidemic_dissemination,
)
from repro.exceptions import ConfigurationError
from repro.geometry.region import Region
from repro.mobility.drunkard import DrunkardModel
from repro.mobility.stationary import StationaryModel
from repro.mobility.trace import record_trace


def static_frames(positions, steps):
    return [np.asarray(positions, dtype=float)] * steps


class TestValidation:
    def test_empty_trace(self):
        with pytest.raises(ConfigurationError):
            simulate_epidemic_dissemination([], 1.0)

    def test_bad_source(self):
        frames = static_frames([[0.0, 0.0], [1.0, 0.0]], 2)
        with pytest.raises(ConfigurationError):
            simulate_epidemic_dissemination(frames, 1.0, source=5)

    def test_negative_range(self):
        frames = static_frames([[0.0, 0.0]], 1)
        with pytest.raises(ConfigurationError):
            simulate_epidemic_dissemination(frames, -1.0)

    def test_inconsistent_frames(self):
        frames = [np.zeros((2, 2)), np.zeros((3, 2))]
        with pytest.raises(ConfigurationError):
            simulate_epidemic_dissemination(frames, 1.0)


class TestStaticNetworks:
    def test_connected_network_delivers_in_one_step(self):
        positions = [[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0]]
        result = simulate_epidemic_dissemination(static_frames(positions, 3), 1.5)
        assert result.fully_delivered
        assert result.coverage_by_step[0] == 1.0
        assert result.steps_to_reach(1.0) == 0
        assert all(delay == 0 for delay in result.delivery_times)

    def test_disconnected_network_never_delivers_to_far_component(self):
        positions = [[0.0, 0.0], [1.0, 0.0], [100.0, 0.0]]
        result = simulate_epidemic_dissemination(static_frames(positions, 5), 2.0)
        assert not result.fully_delivered
        assert result.final_coverage == pytest.approx(2 / 3)
        assert result.delivery_times[2] is None
        assert result.steps_to_reach(1.0) is None

    def test_source_in_other_component(self):
        positions = [[0.0, 0.0], [1.0, 0.0], [100.0, 0.0]]
        result = simulate_epidemic_dissemination(
            static_frames(positions, 3), 2.0, source=2
        )
        assert result.final_coverage == pytest.approx(1 / 3)

    def test_zero_range_only_source_informed(self):
        positions = [[0.0, 0.0], [5.0, 0.0]]
        result = simulate_epidemic_dissemination(static_frames(positions, 4), 0.0)
        assert result.final_coverage == pytest.approx(0.5)
        assert result.mean_delivery_delay() == 0.0


class TestMobileNetworks:
    def _trace(self, seed=4, steps=120, node_count=15, side=100.0):
        region = Region.square(side)
        rng = np.random.default_rng(seed)
        initial = region.sample_uniform(node_count, rng)
        return record_trace(
            DrunkardModel(step_radius=10.0), initial, region, steps=steps, seed=seed
        )

    def test_mobility_spreads_message_beyond_initial_component(self):
        trace = self._trace()
        small_range = 20.0
        static = simulate_epidemic_dissemination(
            [trace.positions_at(0)] * trace.step_count, small_range
        )
        mobile = simulate_epidemic_dissemination(trace.frames, small_range)
        # Movement can only help an epidemic: coverage is at least as large.
        assert mobile.final_coverage >= static.final_coverage

    def test_coverage_monotone_over_time(self):
        trace = self._trace()
        result = simulate_epidemic_dissemination(trace.frames, 15.0)
        coverage = list(result.coverage_by_step)
        assert coverage == sorted(coverage)

    def test_larger_range_faster_delivery(self):
        trace = self._trace()
        slow = simulate_epidemic_dissemination(trace.frames, 12.0)
        fast = simulate_epidemic_dissemination(trace.frames, 60.0)
        assert fast.final_coverage >= slow.final_coverage
        target = 0.8
        fast_steps = fast.steps_to_reach(target)
        slow_steps = slow.steps_to_reach(target)
        if fast_steps is not None and slow_steps is not None:
            assert fast_steps <= slow_steps

    def test_delivery_times_consistent_with_coverage(self):
        trace = self._trace()
        result = simulate_epidemic_dissemination(trace.frames, 18.0)
        delivered = [d for d in result.delivery_times if d is not None]
        assert len(delivered) == round(result.final_coverage * result.node_count)
        assert result.mean_delivery_delay() is not None


class TestContactEvents:
    def test_static_contacts_every_step(self):
        positions = [[0.0, 0.0], [1.0, 0.0], [50.0, 0.0]]
        contacts = contact_events(static_frames(positions, 4), 2.0)
        assert contacts == {(0, 1): [0, 1, 2, 3]}

    def test_contact_count_grows_with_range(self):
        region = Region.square(100.0)
        rng = np.random.default_rng(9)
        initial = region.sample_uniform(10, rng)
        trace = record_trace(StationaryModel(), initial, region, steps=3, seed=9)
        few = sum(len(v) for v in contact_events(trace.frames, 10.0).values())
        many = sum(len(v) for v in contact_events(trace.frames, 60.0).values())
        assert many >= few

    def test_negative_range_rejected(self):
        with pytest.raises(ConfigurationError):
            contact_events([np.zeros((2, 2))], -1.0)
