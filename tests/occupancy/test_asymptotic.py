"""Tests for repro.occupancy.asymptotic (Theorem 1)."""

import pytest

from repro.exceptions import AnalysisError
from repro.occupancy.asymptotic import (
    asymptotic_empty_cells_mean,
    asymptotic_empty_cells_variance,
    empty_cells_mean_upper_bound,
    expected_empty_cells_for_range,
)
from repro.occupancy.exact import empty_cells_mean, empty_cells_variance


class TestUpperBound:
    def test_bounds_exact_mean(self):
        # Theorem 1: E[mu] <= C e^{-alpha} for *every* n, C.
        for n in (0, 1, 10, 100, 1000):
            for cells in (2, 10, 100):
                assert empty_cells_mean(n, cells) <= empty_cells_mean_upper_bound(
                    n, cells
                ) + 1e-12

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            empty_cells_mean_upper_bound(-1, 10)
        with pytest.raises(AnalysisError):
            empty_cells_mean_upper_bound(5, 0)


class TestAsymptoticMean:
    def test_close_to_exact_for_large_cells(self):
        n, cells = 2000, 1000
        assert asymptotic_empty_cells_mean(n, cells) == pytest.approx(
            empty_cells_mean(n, cells), rel=0.01
        )

    def test_improves_with_size(self):
        # The relative error shrinks as C grows (with alpha fixed).
        errors = []
        for cells in (10, 100, 1000):
            n = 2 * cells
            exact = empty_cells_mean(n, cells)
            approx = asymptotic_empty_cells_mean(n, cells)
            errors.append(abs(exact - approx) / exact)
        assert errors[0] > errors[-1]


class TestAsymptoticVariance:
    def test_close_to_exact_for_large_cells(self):
        n, cells = 2000, 1000
        assert asymptotic_empty_cells_variance(n, cells) == pytest.approx(
            empty_cells_variance(n, cells), rel=0.05
        )

    def test_non_negative(self):
        for n in (0, 1, 10, 1000):
            assert asymptotic_empty_cells_variance(n, 100) >= 0.0


class TestRangeWrapper:
    def test_consistent_with_direct_call(self):
        value = expected_empty_cells_for_range(100, length=1000.0, radius=10.0)
        assert value == pytest.approx(asymptotic_empty_cells_mean(100, 100))

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            expected_empty_cells_for_range(10, length=0.0, radius=1.0)
        with pytest.raises(AnalysisError):
            expected_empty_cells_for_range(10, length=10.0, radius=0.0)
