"""Tests for repro.occupancy.domains."""

import math

import pytest

from repro.exceptions import AnalysisError
from repro.occupancy.domains import (
    OccupancyDomain,
    classify_domain,
    domain_for_line_network,
)


class TestClassifyDomain:
    def test_central_domain(self):
        assert classify_domain(1000, 1000) == OccupancyDomain.CENTRAL
        assert classify_domain(2000, 1000) == OccupancyDomain.CENTRAL

    def test_right_hand_domain(self):
        cells = 1000
        n = int(cells * math.log(cells))
        assert classify_domain(n, cells) == OccupancyDomain.RIGHT_HAND

    def test_left_hand_domain(self):
        cells = 10000
        n = int(math.sqrt(cells))
        assert classify_domain(n, cells) == OccupancyDomain.LEFT_HAND

    def test_right_intermediate(self):
        cells = 100000
        # Between C and C log C but Theta of neither with default tolerance:
        n = int(cells * math.log(cells) ** 0.5)
        domain = classify_domain(n, cells)
        assert domain in (
            OccupancyDomain.RIGHT_INTERMEDIATE,
            OccupancyDomain.RIGHT_HAND,
            OccupancyDomain.CENTRAL,
        )
        # With a tight tolerance it must be classified as intermediate.
        assert classify_domain(n, cells, tolerance=1.5) == OccupancyDomain.RIGHT_INTERMEDIATE

    def test_left_intermediate(self):
        cells = 100000
        n = int(cells**0.75)
        assert classify_domain(n, cells, tolerance=1.5) == OccupancyDomain.LEFT_INTERMEDIATE

    def test_below_sqrt_maps_to_lhd(self):
        assert classify_domain(2, 10000, tolerance=1.5) == OccupancyDomain.LEFT_HAND

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            classify_domain(-1, 10)
        with pytest.raises(AnalysisError):
            classify_domain(10, 1)
        with pytest.raises(AnalysisError):
            classify_domain(10, 10, tolerance=0.5)


class TestLineNetworkDomain:
    def test_paper_regime_is_rhid(self):
        # l << r n << l log l is the RHID (proof of Theorem 4).
        side = 1e6
        n = 10000
        # Choose r so that r n = l * sqrt(log l) (strictly between l and l log l).
        r = side * math.sqrt(math.log(side)) / n
        domain = domain_for_line_network(n, side, r, tolerance=1.5)
        assert domain == OccupancyDomain.RIGHT_INTERMEDIATE

    def test_requires_at_least_two_cells(self):
        with pytest.raises(AnalysisError):
            domain_for_line_network(10, side := 100.0, radius=side)

    def test_invalid_geometry(self):
        with pytest.raises(AnalysisError):
            domain_for_line_network(10, 0.0, 1.0)
        with pytest.raises(AnalysisError):
            domain_for_line_network(10, 10.0, 0.0)
