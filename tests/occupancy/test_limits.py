"""Tests for repro.occupancy.limits (Theorem 2)."""

import numpy as np
import pytest

from repro.occupancy.cells import simulate_empty_cells
from repro.occupancy.domains import OccupancyDomain
from repro.occupancy.exact import empty_cells_distribution, empty_cells_mean
from repro.occupancy.limits import LimitLaw, limit_law, rhd_poisson_rate


class TestLimitLawSelection:
    def test_central_domain_is_normal(self):
        law = limit_law(1000, 1000)
        assert law.kind == "normal"
        assert law.domain == OccupancyDomain.CENTRAL
        assert law.std is not None

    def test_rhd_is_poisson(self):
        import math

        cells = 500
        n = int(cells * math.log(cells))
        law = limit_law(n, cells)
        assert law.kind == "poisson"
        assert law.domain == OccupancyDomain.RIGHT_HAND
        assert law.rate is not None and law.rate >= 0.0

    def test_lhd_is_recentred_poisson(self):
        cells = 10000
        n = 100
        law = limit_law(n, cells, domain=OccupancyDomain.LEFT_HAND)
        assert law.kind == "poisson"
        assert law.recentered

    def test_forced_domain(self):
        law = limit_law(100, 100, domain=OccupancyDomain.RIGHT_HAND)
        assert law.domain == OccupancyDomain.RIGHT_HAND

    def test_asymptotic_moments_option(self):
        exact_law = limit_law(2000, 1000, use_exact_moments=True)
        asymptotic_law = limit_law(2000, 1000, use_exact_moments=False)
        assert exact_law.mean == pytest.approx(asymptotic_law.mean, rel=0.05)


class TestLimitLawPmf:
    def test_normal_pmf_close_to_exact(self):
        n, cells = 60, 30
        law = limit_law(n, cells, domain=OccupancyDomain.CENTRAL)
        exact = empty_cells_distribution(n, cells)
        k = int(round(empty_cells_mean(n, cells)))
        assert law.pmf(k) == pytest.approx(exact[k], abs=0.05)

    def test_pmf_is_probability(self):
        law = limit_law(100, 50)
        for k in range(0, 50, 5):
            assert 0.0 <= law.pmf(k) <= 1.0

    def test_degenerate_normal(self):
        law = LimitLaw(domain=OccupancyDomain.CENTRAL, kind="normal", mean=3.0, std=0.0)
        assert law.pmf(3) == 1.0
        assert law.pmf(4) == 0.0

    def test_peak_probability_positive(self):
        law = limit_law(200, 100)
        assert law.peak_probability() > 0.0

    def test_poisson_pmf_matches_simulation_in_rhd(self):
        import math

        cells = 100
        n = int(cells * math.log(cells))
        law = limit_law(n, cells)
        rng = np.random.default_rng(3)
        samples = simulate_empty_cells(n, cells, 20000, rng)
        empirical_p0 = float(np.mean(np.asarray(samples) == 0))
        assert law.pmf(0) == pytest.approx(empirical_p0, abs=0.03)


class TestRhdRate:
    def test_rate_matches_asymptotic_mean(self):
        import math

        cells = 1000
        n = int(cells * math.log(cells))
        assert rhd_poisson_rate(n, cells) == pytest.approx(
            empty_cells_mean(n, cells), rel=0.05
        )

    def test_invalid_cells(self):
        from repro.exceptions import AnalysisError

        with pytest.raises(AnalysisError):
            rhd_poisson_rate(10, 0)
