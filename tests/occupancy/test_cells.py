"""Tests for repro.occupancy.cells (Lemma 1 machinery)."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.occupancy.cells import (
    cell_counts,
    cell_occupancy_from_positions,
    empty_cell_count,
    gap_widths,
    has_gap_pattern,
    occupancy_bitstring,
    simulate_empty_cells,
)


class TestCellCounts:
    def test_basic_binning(self):
        counts = cell_counts([0.5, 1.5, 1.6, 9.9], line_length=10.0, cell_length=1.0)
        assert counts[0] == 1
        assert counts[1] == 2
        assert counts[9] == 1
        assert sum(counts) == 4

    def test_position_at_boundary_goes_to_last_cell(self):
        counts = cell_counts([10.0], line_length=10.0, cell_length=1.0)
        assert counts[9] == 1

    def test_out_of_range_position(self):
        with pytest.raises(AnalysisError):
            cell_counts([11.0], line_length=10.0, cell_length=1.0)
        with pytest.raises(AnalysisError):
            cell_counts([-0.1], line_length=10.0, cell_length=1.0)

    def test_invalid_geometry(self):
        with pytest.raises(AnalysisError):
            cell_counts([1.0], line_length=10.0, cell_length=0.0)
        with pytest.raises(AnalysisError):
            cell_counts([1.0], line_length=0.0, cell_length=1.0)
        with pytest.raises(AnalysisError):
            cell_counts([1.0], line_length=1.0, cell_length=2.0)

    def test_non_divisible_length_merges_remainder(self):
        counts = cell_counts([9.8], line_length=10.0, cell_length=3.0)
        # Cells are [0,3), [3,6), [6,10]; the 9.8 falls in the merged last cell.
        assert len(counts) == 3
        assert counts[2] == 1


class TestBitstringAndGaps:
    def test_bitstring(self):
        assert occupancy_bitstring([2, 0, 1, 0]) == "1010"

    def test_empty_cell_count(self):
        assert empty_cell_count([2, 0, 1, 0]) == 2

    def test_gap_pattern_detection(self):
        assert has_gap_pattern("101")
        assert has_gap_pattern("110011")
        assert has_gap_pattern("1001")
        assert not has_gap_pattern("111")
        assert not has_gap_pattern("0110")
        assert not has_gap_pattern("0000")
        assert not has_gap_pattern("")

    def test_leading_trailing_zeros_not_gaps(self):
        assert not has_gap_pattern("00111100")

    def test_invalid_characters(self):
        with pytest.raises(AnalysisError):
            has_gap_pattern("10x1")

    def test_gap_widths(self):
        assert gap_widths("1001011") == [2, 1]
        assert gap_widths("1111") == []
        assert gap_widths("0000") == []


class TestCellOccupancy:
    def test_from_positions(self):
        positions = np.array([[0.5], [5.5]])
        occupancy = cell_occupancy_from_positions(positions, 10.0, 1.0)
        assert occupancy.cell_count == 10
        assert occupancy.empty_cells == 8
        assert occupancy.bitstring == "1000010000"
        assert occupancy.has_gap

    def test_flat_sequence_accepted(self):
        occupancy = cell_occupancy_from_positions([0.5, 1.5], 10.0, 1.0)
        assert occupancy.counts[0] == 1 and occupancy.counts[1] == 1

    def test_rejects_2d_positions(self):
        with pytest.raises(AnalysisError):
            cell_occupancy_from_positions(np.zeros((3, 2)), 10.0, 1.0)

    def test_lemma1_gap_implies_disconnected(self, rng):
        """Lemma 1: a {10*1} pattern implies a disconnected graph."""
        from repro.connectivity.metrics import is_placement_connected

        line_length = 100.0
        cell_length = 10.0
        for _ in range(50):
            positions = rng.uniform(0.0, line_length, size=(8, 1))
            occupancy = cell_occupancy_from_positions(positions, line_length, cell_length)
            if occupancy.has_gap:
                assert not is_placement_connected(positions, cell_length)


class TestSimulateEmptyCells:
    def test_sample_bounds(self, rng):
        samples = simulate_empty_cells(10, 6, 100, rng)
        assert len(samples) == 100
        assert all(0 <= s <= 6 for s in samples)

    def test_zero_balls(self, rng):
        samples = simulate_empty_cells(0, 5, 10, rng)
        assert all(s == 5 for s in samples)

    def test_invalid_arguments(self, rng):
        with pytest.raises(AnalysisError):
            simulate_empty_cells(5, 5, 0, rng)
        with pytest.raises(AnalysisError):
            simulate_empty_cells(5, 0, 10, rng)
