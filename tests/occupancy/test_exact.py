"""Tests for repro.occupancy.exact."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.occupancy.cells import simulate_empty_cells
from repro.occupancy.exact import (
    empty_cells_distribution,
    empty_cells_mean,
    empty_cells_pmf,
    empty_cells_variance,
    probability_all_cells_occupied,
)


class TestMean:
    def test_formula(self):
        assert empty_cells_mean(10, 5) == pytest.approx(5 * (0.8) ** 10)

    def test_zero_balls(self):
        assert empty_cells_mean(0, 7) == 7.0

    def test_single_cell(self):
        assert empty_cells_mean(3, 1) == 0.0
        assert empty_cells_mean(0, 1) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            empty_cells_mean(-1, 5)
        with pytest.raises(AnalysisError):
            empty_cells_mean(5, 0)

    def test_decreasing_in_n(self):
        values = [empty_cells_mean(n, 20) for n in range(0, 100, 10)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_matches_simulation(self):
        rng = np.random.default_rng(0)
        samples = simulate_empty_cells(30, 20, 4000, rng)
        assert np.mean(samples) == pytest.approx(empty_cells_mean(30, 20), rel=0.05)


class TestVariance:
    def test_non_negative(self):
        for n in (0, 1, 5, 50, 500):
            assert empty_cells_variance(n, 25) >= 0.0

    def test_zero_balls_zero_variance(self):
        assert empty_cells_variance(0, 10) == pytest.approx(0.0, abs=1e-9)

    def test_single_cell(self):
        assert empty_cells_variance(5, 1) == 0.0

    def test_matches_simulation(self):
        rng = np.random.default_rng(1)
        samples = simulate_empty_cells(40, 20, 6000, rng)
        assert np.var(samples, ddof=1) == pytest.approx(
            empty_cells_variance(40, 20), rel=0.15
        )


class TestAllOccupied:
    def test_fewer_balls_than_cells(self):
        assert probability_all_cells_occupied(3, 5) == 0.0

    def test_equal_balls_and_cells(self):
        # n = C: probability all occupied is C! / C^C.
        assert probability_all_cells_occupied(3, 3) == pytest.approx(6 / 27)

    def test_many_balls_close_to_one(self):
        assert probability_all_cells_occupied(200, 5) > 0.99

    def test_one_cell(self):
        assert probability_all_cells_occupied(1, 1) == 1.0


class TestPmf:
    def test_sums_to_one(self):
        for n, cells in [(5, 4), (10, 6), (20, 8)]:
            distribution = empty_cells_distribution(n, cells)
            assert sum(distribution) == pytest.approx(1.0, abs=1e-9)

    def test_zero_balls_all_empty(self):
        assert empty_cells_pmf(0, 5, 5) == 1.0
        assert empty_cells_pmf(0, 5, 3) == 0.0

    def test_out_of_range_k(self):
        assert empty_cells_pmf(5, 4, -1) == 0.0
        assert empty_cells_pmf(5, 4, 5) == 0.0

    def test_mean_consistency(self):
        n, cells = 12, 6
        distribution = empty_cells_distribution(n, cells)
        mean_from_pmf = sum(k * p for k, p in enumerate(distribution))
        assert mean_from_pmf == pytest.approx(empty_cells_mean(n, cells), abs=1e-9)

    def test_variance_consistency(self):
        n, cells = 12, 6
        distribution = empty_cells_distribution(n, cells)
        mean = sum(k * p for k, p in enumerate(distribution))
        second_moment = sum(k * k * p for k, p in enumerate(distribution))
        assert second_moment - mean**2 == pytest.approx(
            empty_cells_variance(n, cells), abs=1e-9
        )

    def test_matches_simulation_histogram(self):
        rng = np.random.default_rng(2)
        n, cells = 8, 5
        samples = simulate_empty_cells(n, cells, 20000, rng)
        histogram = np.bincount(samples, minlength=cells + 1) / len(samples)
        expected = empty_cells_distribution(n, cells)
        assert np.allclose(histogram, expected, atol=0.02)
