"""Tests for repro.availability.estimator."""

import pytest

from repro.availability.estimator import (
    availability_from_connectivity_series,
    availability_from_frames,
    partial_availability_from_frames,
)
from repro.exceptions import ConfigurationError
from repro.simulation.engine import frame_statistics


class TestFromSeries:
    def test_fully_available(self):
        report = availability_from_connectivity_series([True] * 10)
        assert report.availability == 1.0
        assert report.down_periods == 0
        assert report.up_periods == 1
        assert report.longest_down_length == 0

    def test_fully_unavailable(self):
        report = availability_from_connectivity_series([False] * 5)
        assert report.availability == 0.0
        assert report.unavailability == 1.0
        assert report.mean_down_length == 5.0

    def test_mixed_series(self):
        series = [True, True, False, True, False, False, True, True]
        report = availability_from_connectivity_series(series)
        assert report.availability == pytest.approx(5 / 8)
        assert report.up_periods == 3
        assert report.down_periods == 2
        assert report.longest_down_length == 2
        assert report.mean_up_length == pytest.approx(5 / 3)
        assert report.mean_down_length == pytest.approx(1.5)

    def test_empty_series(self):
        report = availability_from_connectivity_series([])
        assert report.availability == 0.0
        assert report.step_count == 0


class TestFromFrames:
    def _frames(self, rng):
        placements = [rng.uniform(0, 100, size=(12, 2)) for _ in range(25)]
        return [frame_statistics(p) for p in placements]

    def test_availability_monotone_in_range(self, rng):
        frames = self._frames(rng)
        values = [
            availability_from_frames(frames, r).availability for r in (5, 20, 50, 200)
        ]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_availability_matches_connectivity_fraction(self, rng):
        from repro.simulation.metrics import connectivity_fraction_at

        frames = self._frames(rng)
        radius = 40.0
        assert availability_from_frames(frames, radius).availability == pytest.approx(
            connectivity_fraction_at(frames, radius)
        )

    def test_partial_availability_at_least_full(self, rng):
        frames = self._frames(rng)
        radius = 35.0
        full = availability_from_frames(frames, radius).availability
        partial = partial_availability_from_frames(frames, radius, 0.5).availability
        assert partial >= full

    def test_partial_availability_monotone_in_required_fraction(self, rng):
        frames = self._frames(rng)
        radius = 35.0
        values = [
            partial_availability_from_frames(frames, radius, f).availability
            for f in (0.25, 0.5, 0.75, 1.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_invalid_required_fraction(self, rng):
        frames = self._frames(rng)
        with pytest.raises(ConfigurationError):
            partial_availability_from_frames(frames, 10.0, 0.0)
        with pytest.raises(ConfigurationError):
            partial_availability_from_frames(frames, 10.0, 1.5)
