"""Tests for repro.visualization.ascii_art."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.geometry.region import Region
from repro.graph.builder import build_communication_graph
from repro.visualization.ascii_art import (
    render_connectivity_timeline,
    render_graph,
    render_placement,
)


class TestRenderPlacement:
    def test_dimensions(self, square_region, small_placement):
        picture = render_placement(small_placement, square_region, width=40, height=10)
        lines = picture.splitlines()
        assert len(lines) == 12  # top border + 10 rows + bottom border
        assert all(len(line) == 42 for line in lines)

    def test_marker_count_bounded_by_nodes(self, square_region, small_placement):
        picture = render_placement(small_placement, square_region, marker="o")
        drawn = picture.count("o") + picture.count("*")
        assert 0 < drawn <= small_placement.shape[0]

    def test_empty_placement(self, square_region):
        picture = render_placement(np.empty((0, 2)), square_region)
        assert "o" not in picture

    def test_corner_nodes_land_in_corners(self):
        region = Region.square(100.0)
        picture = render_placement(
            np.array([[0.0, 0.0], [100.0, 100.0]]), region, width=10, height=5
        )
        lines = picture.splitlines()
        assert lines[1][-2] == "o"   # top-right corner (max x, max y)
        assert lines[-2][1] == "o"   # bottom-left corner (min x, min y)

    def test_invalid_arguments(self, square_region, small_placement):
        with pytest.raises(ConfigurationError):
            render_placement(small_placement, square_region, width=1)
        with pytest.raises(ConfigurationError):
            render_placement(small_placement, Region.line(10.0))


class TestRenderGraph:
    def test_symbols_present(self, square_region, small_placement):
        graph = build_communication_graph(small_placement, 25.0)
        picture = render_graph(graph, square_region)
        assert "#" in picture
        assert "largest component" in picture

    def test_isolated_nodes_marked(self, square_region):
        positions = np.array([[10.0, 10.0], [12.0, 10.0], [90.0, 90.0]])
        graph = build_communication_graph(positions, 5.0)
        picture = render_graph(graph, square_region)
        assert "." in picture

    def test_requires_positions(self):
        from repro.graph.adjacency import CommunicationGraph

        with pytest.raises(ConfigurationError):
            render_graph(CommunicationGraph(3, edges=[(0, 1)]))

    def test_region_inferred_when_missing(self, small_placement):
        graph = build_communication_graph(small_placement, 25.0)
        picture = render_graph(graph)
        assert picture.count("\n") > 5


class TestRenderTimeline:
    def test_all_connected(self):
        timeline = render_connectivity_timeline([True] * 20, width=10)
        assert timeline.startswith("#" * 10)
        assert "100.0%" in timeline

    def test_never_connected(self):
        timeline = render_connectivity_timeline([False] * 20, width=10)
        assert timeline.startswith("-" * 10)

    def test_mixed_bucket(self):
        timeline = render_connectivity_timeline([True, False], width=1)
        assert timeline.startswith("+")
        assert "50.0%" in timeline

    def test_empty_series(self):
        assert render_connectivity_timeline([]) == "(empty timeline)"

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            render_connectivity_timeline([True], width=0)
