"""Property-based tests for the graph substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import build_communication_graph, neighbor_pairs
from repro.graph.components import (
    component_sizes,
    connected_components,
    is_connected,
    largest_component_size,
)
from repro.graph.traversal import components_by_bfs
from repro.graph.union_find import UnionFind


@st.composite
def placements(draw, max_nodes=40, side=100.0, dimension=2):
    """Random placements as (n, d) float arrays."""
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=side, allow_nan=False),
            min_size=n * dimension,
            max_size=n * dimension,
        )
    )
    return np.asarray(values, dtype=float).reshape(n, dimension)


@st.composite
def edge_lists(draw, max_nodes=30):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    edge_count = draw(st.integers(min_value=0, max_value=min(60, n * (n - 1) // 2)))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=edge_count,
            max_size=edge_count,
        )
    )
    return n, edges


class TestBuilderProperties:
    # Radii are either exactly zero or at least 1e-9: sub-denormal radii make
    # the two (mathematically equivalent) squared-distance formulas disagree
    # at the 1e-90 scale, which is far outside the library's supported regime.
    @given(
        placements(),
        st.one_of(st.just(0.0), st.floats(min_value=1e-9, max_value=150.0)),
    )
    @settings(max_examples=40, deadline=None)
    def test_grid_and_brute_force_agree(self, points, radius):
        assert neighbor_pairs(points, radius, method="brute") == neighbor_pairs(
            points, radius, method="grid"
        )

    @given(placements(max_nodes=25), st.floats(min_value=0.0, max_value=80.0),
           st.floats(min_value=0.0, max_value=80.0))
    @settings(max_examples=40, deadline=None)
    def test_edges_monotone_in_range(self, points, r1, r2):
        small, large = sorted((r1, r2))
        assert set(neighbor_pairs(points, small)) <= set(neighbor_pairs(points, large))

    @given(placements(max_nodes=25), st.floats(min_value=0.0, max_value=80.0))
    @settings(max_examples=40, deadline=None)
    def test_edges_respect_distance(self, points, radius):
        graph = build_communication_graph(points, radius)
        for u, v in graph.edges():
            assert np.linalg.norm(points[u] - points[v]) <= radius + 1e-9


class TestComponentProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_union_find_matches_bfs(self, n_and_edges):
        n, edges = n_and_edges
        from repro.graph.adjacency import CommunicationGraph

        graph = CommunicationGraph(n, edges=(e for e in edges if e[0] != e[1]))
        assert sorted(map(tuple, connected_components(graph))) == sorted(
            map(tuple, components_by_bfs(graph))
        )

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_component_sizes_partition_nodes(self, n_and_edges):
        n, edges = n_and_edges
        from repro.graph.adjacency import CommunicationGraph

        graph = CommunicationGraph(n, edges=(e for e in edges if e[0] != e[1]))
        sizes = component_sizes(graph)
        assert sum(sizes) == n
        assert largest_component_size(graph) == (max(sizes) if sizes else 0)
        assert is_connected(graph) == (len(sizes) <= 1)

    @given(st.integers(min_value=1, max_value=50), st.data())
    @settings(max_examples=40, deadline=None)
    def test_union_find_component_count_invariant(self, n, data):
        operations = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=80,
            )
        )
        structure = UnionFind(n)
        merges = 0
        for a, b in operations:
            if structure.union(a, b):
                merges += 1
        assert structure.component_count == n - merges
        assert sum(len(group) for group in structure.groups()) == n
