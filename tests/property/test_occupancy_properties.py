"""Property-based tests for the occupancy machinery (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds_1d import connectivity_probability_1d_exact
from repro.analysis.disconnection import gap_event_probability_estimate
from repro.occupancy.asymptotic import empty_cells_mean_upper_bound
from repro.occupancy.cells import (
    cell_occupancy_from_positions,
    has_gap_pattern,
    occupancy_bitstring,
)
from repro.occupancy.exact import (
    empty_cells_distribution,
    empty_cells_mean,
    empty_cells_variance,
)


class TestExactOccupancyProperties:
    @given(st.integers(min_value=0, max_value=60), st.integers(min_value=1, max_value=12))
    @settings(max_examples=80, deadline=None)
    def test_distribution_sums_to_one(self, n, cells):
        distribution = empty_cells_distribution(n, cells)
        assert sum(distribution) == pytest.approx(1.0, abs=1e-8)
        assert all(0.0 <= p <= 1.0 for p in distribution)

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_mean_bounds(self, n, cells):
        mean = empty_cells_mean(n, cells)
        assert 0.0 <= mean <= cells
        assert mean <= empty_cells_mean_upper_bound(n, cells) + 1e-9

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_variance_non_negative(self, n, cells):
        assert empty_cells_variance(n, cells) >= 0.0

    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=2, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_gap_probability_is_probability(self, n, cells):
        assert 0.0 <= gap_event_probability_estimate(n, cells) <= 1.0


class TestBitstringProperties:
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_bitstring_length_and_alphabet(self, counts):
        bits = occupancy_bitstring(counts)
        assert len(bits) == len(counts)
        assert set(bits) <= {"0", "1"}

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_gap_requires_an_empty_and_two_occupied(self, counts):
        bits = occupancy_bitstring(counts)
        if has_gap_pattern(bits):
            assert bits.count("1") >= 2
            assert bits.count("0") >= 1


class TestLemma1Property:
    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=2, max_value=15),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_gap_implies_disconnected(self, n, cells, random):
        """Lemma 1: a {10*1} pattern forces a disconnected graph."""
        from repro.connectivity.metrics import is_placement_connected

        line_length = float(cells)
        cell_length = 1.0
        positions = np.asarray(
            [random.uniform(0.0, line_length) for _ in range(n)]
        ).reshape(-1, 1)
        occupancy = cell_occupancy_from_positions(positions, line_length, cell_length)
        if occupancy.has_gap:
            assert not is_placement_connected(positions, cell_length)


class TestExactConnectivityFormulaProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=1.0, max_value=1000.0),
        st.floats(min_value=0.0, max_value=1200.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_probability_in_unit_interval(self, n, side, radius):
        value = connectivity_probability_1d_exact(n, side, radius)
        assert 0.0 <= value <= 1.0

    @given(st.integers(min_value=2, max_value=30), st.floats(min_value=10.0, max_value=500.0))
    @settings(max_examples=60, deadline=None)
    def test_extremes(self, n, side):
        assert connectivity_probability_1d_exact(n, side, 0.0) == 0.0
        assert connectivity_probability_1d_exact(n, side, side) == 1.0
