"""Property-based tests for connectivity invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectivity.critical_range import (
    critical_range,
    critical_range_for_component_fraction,
    longest_gap_1d,
)
from repro.connectivity.metrics import (
    is_placement_connected,
    largest_component_fraction_of_placement,
)
from repro.simulation.engine import frame_statistics


@st.composite
def placements_2d(draw, min_nodes=2, max_nodes=25, side=100.0):
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=side, allow_nan=False),
            min_size=2 * n,
            max_size=2 * n,
        )
    )
    return np.asarray(values, dtype=float).reshape(n, 2)


@st.composite
def placements_1d(draw, min_nodes=2, max_nodes=40, side=1000.0):
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=side, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return np.asarray(values, dtype=float).reshape(n, 1)


class TestCriticalRangeProperties:
    @given(placements_2d())
    @settings(max_examples=50, deadline=None)
    def test_critical_range_is_a_threshold(self, points):
        r_star = critical_range(points)
        assert is_placement_connected(points, r_star)
        if r_star > 1e-9:
            assert not is_placement_connected(points, r_star * (1 - 1e-9) - 1e-12)

    @given(placements_2d())
    @settings(max_examples=50, deadline=None)
    def test_critical_range_bounded_by_diameter(self, points):
        diameter = float(
            np.max(np.linalg.norm(points[:, None, :] - points[None, :, :], axis=-1))
        )
        assert 0.0 <= critical_range(points) <= diameter + 1e-9

    @given(placements_1d())
    @settings(max_examples=50, deadline=None)
    def test_1d_critical_range_is_longest_gap(self, points):
        # Equal up to floating point noise (the two routines compute the
        # same quantity via sqrt-of-squares vs direct differences).
        import pytest as _pytest

        assert critical_range(points) == _pytest.approx(
            longest_gap_1d(points), rel=1e-9, abs=1e-12
        )

    @given(placements_2d(), st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_partial_range_below_full_range(self, points, fraction):
        partial = critical_range_for_component_fraction(points, fraction)
        assert partial <= critical_range(points) + 1e-9

    @given(placements_2d(), st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_partial_range_achieves_fraction(self, points, fraction):
        radius = critical_range_for_component_fraction(points, fraction)
        assert (
            largest_component_fraction_of_placement(points, radius)
            >= fraction - 1e-12
        )


class TestFrameStatisticsProperties:
    @given(placements_2d(), st.floats(min_value=0.0, max_value=150.0))
    @settings(max_examples=50, deadline=None)
    def test_frame_statistics_match_direct_graph(self, points, radius):
        from repro.connectivity.metrics import observe_placement

        stats = frame_statistics(points)
        observation = observe_placement(points, radius)
        assert stats.largest_component_size_at(radius) == observation.largest_component_size
        assert stats.is_connected_at(radius) == observation.connected

    @given(placements_2d())
    @settings(max_examples=50, deadline=None)
    def test_component_curve_monotone(self, points):
        stats = frame_statistics(points)
        sizes = [size for _, size in stats.component_curve]
        radii = [radius for radius, _ in stats.component_curve]
        assert sizes == sorted(sizes)
        assert radii == sorted(radii)
        if stats.component_curve:
            assert stats.component_curve[-1][1] == points.shape[0]
