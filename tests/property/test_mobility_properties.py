"""Property-based tests for the mobility models (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.region import Region
from repro.mobility.drunkard import DrunkardModel
from repro.mobility.gauss_markov import GaussMarkovModel
from repro.mobility.random_direction import RandomDirectionModel
from repro.mobility.waypoint import RandomWaypointModel


def build_model(name, side):
    if name == "waypoint":
        return RandomWaypointModel(vmin=0.1, vmax=max(0.05 * side, 0.2), tpause=3)
    if name == "drunkard":
        return DrunkardModel(step_radius=max(0.05 * side, 0.2), ppause=0.2)
    if name == "random-direction":
        return RandomDirectionModel(speed=max(0.02 * side, 0.1), travel_steps=10)
    return GaussMarkovModel(mean_speed=max(0.02 * side, 0.1), alpha=0.6, noise_std=0.3)


MODEL_NAMES = ["waypoint", "drunkard", "random-direction", "gauss-markov"]


class TestContainmentInvariant:
    @given(
        st.sampled_from(MODEL_NAMES),
        st.integers(min_value=1, max_value=20),
        st.floats(min_value=10.0, max_value=500.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_positions_always_inside_region(self, name, node_count, side, seed):
        region = Region.square(side)
        rng = np.random.default_rng(seed)
        model = build_model(name, side)
        model.initialize(region.sample_uniform(node_count, rng), region, rng)
        for _ in range(15):
            assert region.contains(model.step(rng))

    @given(
        st.sampled_from(MODEL_NAMES),
        st.integers(min_value=1, max_value=15),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_node_count_preserved(self, name, node_count, seed):
        region = Region.square(100.0)
        rng = np.random.default_rng(seed)
        model = build_model(name, 100.0)
        model.initialize(region.sample_uniform(node_count, rng), region, rng)
        for _ in range(5):
            assert model.step(rng).shape == (node_count, 2)


class TestDeterminismInvariant:
    @given(st.sampled_from(MODEL_NAMES), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_same_seed_same_trajectory(self, name, seed):
        region = Region.square(50.0)

        def trajectory():
            rng = np.random.default_rng(seed)
            model = build_model(name, 50.0)
            model.initialize(region.sample_uniform(6, rng), region, rng)
            return model.run(10, rng)

        assert np.allclose(trajectory(), trajectory())


class TestStationaryMaskInvariant:
    @given(
        st.sampled_from(["waypoint", "drunkard"]),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_stationary_nodes_never_move(self, name, pstationary, seed):
        region = Region.square(80.0)
        rng = np.random.default_rng(seed)
        if name == "waypoint":
            model = RandomWaypointModel(vmin=0.5, vmax=4.0, pstationary=pstationary)
        else:
            model = DrunkardModel(step_radius=4.0, pstationary=pstationary)
        initial = model.initialize(region.sample_uniform(12, rng), region, rng)
        mask = model.state.stationary_mask.copy()
        final = model.run(8, rng)
        assert np.allclose(final[mask], initial[mask])
