"""Property tests: query → grid-key normalization never diverges from the runner.

The query service's one hard invariant is key identity: for any campaign
grid and any in-grid query, the store keys the resolver emits are
bitwise-equal to the keys the campaign runner writes — and execution
knobs (worker counts, sharding, transport), which normalize() strips
from cache payloads, can never leak into a query key.  Out-of-grid
queries are flagged, never silently clamped onto a grid key.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns import CampaignRunner, CampaignSpec
from repro.experiments.registry import get_experiment
from repro.query import GridIndex, Query, resolve
from repro.store import ResultStore

#: Grid sides drawn from the paper's ballpark; unique and positive.
SIDES = st.lists(
    st.sampled_from([64.0, 256.0, 576.0, 1024.0, 2048.0, 4096.0, 16384.0]),
    min_size=1,
    max_size=5,
    unique=True,
).map(sorted)

EXPERIMENTS = st.sampled_from(["fig2", "fig3"])  # waypoint and drunkard

PROBABILITIES = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def spec_with_sides(experiment, sides):
    return CampaignSpec(
        name="prop-grid",
        experiments=(experiment,),
        scale="smoke",
        overrides=(("sides", tuple(sides)),),
    )


@given(experiment=EXPERIMENTS, sides=SIDES, probability=PROBABILITIES)
@settings(max_examples=60, deadline=None)
def test_in_grid_keys_equal_the_runners_keys_bitwise(
    tmp_path_factory, experiment, sides, probability
):
    spec = spec_with_sides(experiment, sides)
    grid = GridIndex(spec)
    scenario = next(iter(spec.scenarios()))
    runner = CampaignRunner(
        spec, store=ResultStore(tmp_path_factory.mktemp("store"))
    )
    checkpoint = runner._checkpoint_for(
        get_experiment(scenario.experiment_id), scenario
    )
    query_model = "drunkard" if experiment == "fig3" else "waypoint"
    for side in sides:
        resolved = resolve(grid, Query(
            model=query_model, side=side, probability=probability
        ))
        assert resolved.exact == side
        assert not resolved.out_of_grid
        assert resolved.row_keys == (checkpoint.key_for(side),)


@given(
    experiment=EXPERIMENTS,
    sides=SIDES,
    workers=st.integers(min_value=1, max_value=16),
    sweep_workers=st.integers(min_value=1, max_value=8),
    shard_steps=st.sampled_from([None, 100, 2500]),
    transport=st.sampled_from(["pickle", "shm"]),
)
@settings(max_examples=40, deadline=None)
def test_execution_knobs_never_change_query_keys(
    experiment, sides, workers, sweep_workers, shard_steps, transport
):
    spec = spec_with_sides(experiment, sides)
    grid = GridIndex(spec)
    scenario = grid.scenario_for(
        "drunkard" if experiment == "fig3" else "waypoint"
    )
    baseline = grid.checkpoint_for(scenario)

    # Rebuild the checkpoint from a scenario whose scale carries every
    # execution knob; the keys must not move by a single bit.
    knobbed_scale = scenario.scale.with_workers(workers)
    knobbed_scale = knobbed_scale.with_sweep_workers(sweep_workers)
    if shard_steps is not None:
        knobbed_scale = knobbed_scale.with_shard_steps(shard_steps)
    knobbed_scale = knobbed_scale.with_transport(transport)
    knobbed = dataclasses.replace(scenario, scale=knobbed_scale)
    rebuilt = grid.checkpoint_for(knobbed)

    for side in sides:
        assert rebuilt.key_for(side) == baseline.key_for(side)


@given(
    sides=SIDES,
    probability=PROBABILITIES,
    offset=st.floats(min_value=1.0, max_value=100000.0, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_out_of_grid_is_flagged_never_clamped(sides, probability, offset):
    spec = spec_with_sides("fig2", sides)
    grid = GridIndex(spec)
    for side in (min(sides) / (1.0 + offset), max(sides) + offset):
        if side <= 0 or side in sides:
            continue
        resolved = resolve(grid, Query(side=side, probability=probability))
        assert resolved.out_of_grid
        assert resolved.exact is None  # never promoted to a grid hit
        assert resolved.side == side  # the queried side is preserved
        # The edge cell is named for extrapolation, but as itself.
        assert resolved.bracket in ((min(sides),), (max(sides),))


@given(sides=SIDES, probability=PROBABILITIES)
@settings(max_examples=60, deadline=None)
def test_between_grid_points_brackets_the_true_neighbors(sides, probability):
    spec = spec_with_sides("fig2", sides)
    grid = GridIndex(spec)
    for low, high in zip(sides, sides[1:]):
        middle = (low + high) / 2.0
        if middle in (low, high):
            continue
        resolved = resolve(grid, Query(side=middle, probability=probability))
        assert not resolved.out_of_grid
        assert resolved.bracket == (low, high)
        assert len(resolved.row_keys) == 2
