"""The query service end to end: hot cache, refine path, HTTP front end.

The refine round trip is the PR's acceptance criterion, exercised for
real: an out-of-grid query against a warm store returns an extrapolated
answer flagged ``refine=true`` and enqueues exactly one work item; a
worker completes it exactly as ``campaign work`` would (lease the task,
run the pickled closure, publish the pickled row); the service folds the
result into the store and the hot cache; the re-asked query is a hot
``source="exact"`` hit.
"""

import asyncio
import json
import pickle

import pytest

from repro.campaigns import CampaignSpec
from repro.distributed import WorkQueue
from repro.query import GridIndex, Query, QueryService
from repro.query.http import QueryHTTPServer, parse_query_document
from repro.query.normalize import QueryError
from repro.store import ResultStore
from repro.supervision import RetryPolicy
from repro import telemetry

#: Synthetic (but physically shaped) rows for the smoke grid sides.
ROW_256 = {
    "l": 256.0, "n": 16.0, "rstationary": 2.0,
    "r0": 1.0, "r10": 1.5, "r90": 3.0, "r100": 4.0,
}
ROW_1024 = {
    "l": 1024.0, "n": 32.0, "rstationary": 3.0,
    "r0": 2.0, "r10": 2.5, "r90": 5.0, "r100": 6.0,
}


def make_spec():
    return CampaignSpec(name="query-grid", experiments=("fig2",), scale="smoke")


def warm_store(tmp_path, spec):
    """A store holding both smoke-grid rows of the fig2 waypoint cell."""
    store = ResultStore(tmp_path / "store")
    grid = GridIndex(spec)
    checkpoint = grid.checkpoint_for(grid.scenario_for("waypoint"), store=store)
    checkpoint.save(256.0, ROW_256)
    checkpoint.save(1024.0, ROW_1024)
    return store


def run(coroutine):
    return asyncio.run(coroutine)


async def with_service(service, body):
    await service.start()
    try:
        return await body()
    finally:
        await service.close()


class TestAnswering:
    def test_exact_grid_point_is_bit_identical_to_the_stored_row(self, tmp_path):
        spec = make_spec()
        service = QueryService(warm_store(tmp_path, spec), spec)

        async def body():
            answer = await service.ask(Query(side=256.0, probability=0.9))
            assert answer.value == ROW_256["r90"]  # bitwise, not approx
            assert answer.source == "exact"
            assert answer.unit == "range"
            assert not answer.refine
            assert not answer.hot  # first touch decodes from disk
            again = await service.ask(Query(side=256.0, probability=0.9))
            assert again.hot
            assert again.value == ROW_256["r90"]
            return answer

        run(with_service(service, body))

    def test_forward_query_returns_a_probability(self, tmp_path):
        spec = make_spec()
        service = QueryService(warm_store(tmp_path, spec), spec)

        async def body():
            answer = await service.ask(Query(side=256.0, range=3.0))
            assert answer.unit == "probability"
            assert answer.value == 0.9
            assert answer.source == "exact"

        run(with_service(service, body))

    def test_nodes_address_the_same_cell_as_the_side(self, tmp_path):
        spec = make_spec()
        service = QueryService(warm_store(tmp_path, spec), spec)

        async def body():
            by_side = await service.ask(Query(side=256.0, probability=0.9))
            by_nodes = await service.ask(Query(nodes=16, probability=0.9))
            assert by_nodes.value == by_side.value
            assert by_nodes.hot  # the side query warmed the same cell

        run(with_service(service, body))

    def test_between_grid_points_interpolates_monotonically(self, tmp_path):
        spec = make_spec()
        service = QueryService(warm_store(tmp_path, spec), spec)

        async def body():
            low = await service.ask(Query(side=256.0, probability=0.9))
            mid = await service.ask(Query(side=640.0, probability=0.9))
            high = await service.ask(Query(side=1024.0, probability=0.9))
            assert mid.source == "interpolated"
            assert not mid.refine
            assert low.value <= mid.value <= high.value
            # Larger systems never shrink the critical range on this grid.
            sides = [300.0, 500.0, 700.0, 900.0]
            answers = [
                (await service.ask(Query(side=s, probability=0.9))).value
                for s in sides
            ]
            assert answers == sorted(answers)

        run(with_service(service, body))

    def test_out_of_grid_extrapolates_and_flags_refine(self, tmp_path):
        spec = make_spec()
        service = QueryService(warm_store(tmp_path, spec), spec)

        async def body():
            answer = await service.ask(Query(side=4096.0, probability=0.9))
            assert answer.source == "extrapolated"
            assert answer.refine  # flagged, never silently clamped
            assert answer.value is not None
            assert answer.refine_task is None  # no queue attached

        run(with_service(service, body))

    def test_empty_store_answers_none_and_refines(self, tmp_path):
        spec = make_spec()
        service = QueryService(ResultStore(tmp_path / "store"), spec)

        async def body():
            answer = await service.ask(Query(side=256.0, probability=0.9))
            assert answer.value is None
            assert answer.source == "none"
            assert answer.refine

        run(with_service(service, body))

    def test_confidence_floor_gates_in_grid_refinement(self, tmp_path):
        spec = make_spec()
        store = ResultStore(tmp_path / "store")
        grid = GridIndex(spec)
        checkpoint = grid.checkpoint_for(
            grid.scenario_for("waypoint"), store=store
        )
        checkpoint.save(256.0, ROW_256)  # half the cell: coverage 0.5
        strict = QueryService(store, spec, confidence_floor=1.0)
        lax = QueryService(store, spec, confidence_floor=0.0)

        async def body():
            gated = await strict.ask(Query(side=256.0, probability=0.9))
            assert gated.source == "exact"
            assert gated.refine  # a row exists, but the cell is half done
            assert gated.coverage == 0.5
            trusted = await lax.ask(Query(side=256.0, probability=0.9))
            assert not trusted.refine

        run(with_service(strict, lambda: with_service(lax, body)))

    def test_hot_cache_is_bounded_lru(self, tmp_path):
        spec = make_spec()
        service = QueryService(warm_store(tmp_path, spec), spec, cache_cells=1)

        async def body():
            await service.ask(Query(side=256.0, probability=0.9))
            await service.ask(Query(side=1024.0, probability=0.9))
            assert service.stats()["cache_cells"] == 1
            # 256 was evicted by 1024; re-asking it is cold again.
            again = await service.ask(Query(side=256.0, probability=0.9))
            assert not again.hot

        run(with_service(service, body))


class TestRefineRoundTrip:
    def test_refine_enqueues_once_and_completes_into_a_hot_hit(self, tmp_path):
        spec = make_spec()
        store = warm_store(tmp_path, spec)
        queue = WorkQueue(RetryPolicy(max_retries=1), lease_seconds=30.0)
        queue.seal()
        service = QueryService(store, spec, queue=queue)
        ask = Query(side=16.0, probability=0.9)  # tiny, below the grid

        async def body():
            first = await service.ask(ask)
            assert first.refine
            assert first.source == "extrapolated"
            assert first.refine_task is not None
            assert queue.stats()["pending"] == 1

            # Re-asking must not enqueue a duplicate.
            second = await service.ask(ask)
            assert second.refine_task == first.refine_task
            assert queue.stats()["total"] == 1

            # Complete the task exactly as `campaign work` does: lease,
            # run the pickled closure, publish the pickled row.
            grant = queue.lease("test-worker")
            assert grant["status"] == "ok"
            function, args, kwargs = pickle.loads(grant["payload"])
            row = function(*args, **kwargs)
            assert row["l"] == 16.0
            queue.publish_result(
                grant["task"], "test-worker", pickle.dumps(row)
            )

            for _ in range(200):  # let the drain task fold the result in
                if service.stats()["pending_refines"] == 0:
                    break
                await asyncio.sleep(0.05)
            assert service.stats()["pending_refines"] == 0

            refined = await service.ask(ask)
            assert refined.hot  # promoted straight into the hot cache
            assert refined.source == "exact"
            assert refined.value == row["r90"]
            return row

        row = run(with_service(service, body))
        # The refinement persisted through the campaign's own checkpoint.
        grid = GridIndex(spec)
        checkpoint = grid.checkpoint_for(
            grid.scenario_for("waypoint"), store=store
        )
        assert store.get(checkpoint.key_for(16.0)) == row

    def test_refined_row_survives_a_service_restart(self, tmp_path):
        spec = make_spec()
        store = warm_store(tmp_path, spec)
        grid = GridIndex(spec)
        checkpoint = grid.checkpoint_for(
            grid.scenario_for("waypoint"), store=store
        )
        off_grid = {
            "l": 16.0, "n": 4.0, "rstationary": 1.0,
            "r0": 0.5, "r10": 0.7, "r90": 1.2, "r100": 1.5,
        }
        checkpoint.save(16.0, off_grid)
        service = QueryService(store, spec)

        async def body():
            answer = await service.ask(Query(side=16.0, probability=0.9))
            assert answer.source == "exact"
            assert answer.value == off_grid["r90"]
            # A refined row is real measured data: no further refinement.
            assert not answer.refine

        run(with_service(service, body))


class TestTelemetry:
    def test_query_metrics_land_in_the_run_report(self, tmp_path):
        spec = make_spec()
        store = warm_store(tmp_path, spec)
        handle = telemetry.start_run(tmp_path / "telemetry", campaign="query")
        service = QueryService(store, spec)

        async def body():
            await service.ask(Query(side=256.0, probability=0.9))
            await service.ask(Query(side=256.0, probability=0.9))
            await service.ask(Query(side=4096.0, probability=0.9))

        run(with_service(service, body))
        telemetry.flush()
        report_path = handle.finish()
        report = json.loads(report_path.read_text())
        metrics = report["metrics"]
        assert metrics["query.requests"]["value"] == 3.0
        assert metrics["query.hot_hits"]["value"] == 1.0
        assert metrics["query.cold_misses"]["value"] == 2.0
        assert metrics["query.out_of_grid"]["value"] == 1.0
        assert "query.hot_seconds" in metrics
        assert "query.cold_seconds" in metrics


class TestParseQueryDocument:
    def test_parses_string_fields_from_a_get_query(self):
        query = parse_query_document(
            {"model": "waypoint", "side": "256", "probability": "0.9"}
        )
        assert query == Query(model="waypoint", side=256.0, probability=0.9)

    def test_unknown_fields_are_rejected_not_defaulted(self):
        with pytest.raises(QueryError, match="probabilty"):
            parse_query_document({"side": "256", "probabilty": "0.9"})

    def test_malformed_numbers_are_rejected(self):
        with pytest.raises(QueryError, match="malformed"):
            parse_query_document({"side": "huge", "probability": "0.9"})


async def http_request(url, method, path, document=None):
    """One raw HTTP/1.1 exchange against the asyncio front end."""
    from urllib.parse import urlsplit

    parts = urlsplit(url)
    reader, writer = await asyncio.open_connection(parts.hostname, parts.port)
    body = b"" if document is None else json.dumps(document).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {parts.hostname}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    writer.write(head.encode("ascii") + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, BrokenPipeError):
        pass
    header, _, payload = raw.partition(b"\r\n\r\n")
    return int(header.split()[1]), json.loads(payload)


class TestHTTPFrontEnd:
    def serve(self, tmp_path, body):
        spec = make_spec()
        service = QueryService(warm_store(tmp_path, spec), spec)

        async def main():
            server = QueryHTTPServer(service)
            url = await server.start()
            try:
                return await body(url)
            finally:
                await server.close()

        return run(main())

    def test_health_and_stats(self, tmp_path):
        async def body(url):
            status, document = await http_request(url, "GET", "/health")
            assert (status, document) == (200, {"status": "ok"})
            status, document = await http_request(url, "GET", "/stats")
            assert status == 200
            assert document["models"] == ["waypoint"]

        self.serve(tmp_path, body)

    def test_ask_via_post_and_get_agree(self, tmp_path):
        async def body(url):
            status, posted = await http_request(
                url, "POST", "/ask", {"side": 256.0, "probability": 0.9}
            )
            assert status == 200
            assert posted["value"] == ROW_256["r90"]
            assert posted["unit"] == "range"
            assert not posted["refine"]
            status, queried = await http_request(
                url, "GET", "/ask?side=256&probability=0.9"
            )
            assert status == 200
            assert queried["value"] == posted["value"]
            assert queried["hot"]  # the POST warmed the cell

        self.serve(tmp_path, body)

    def test_bad_queries_are_400s(self, tmp_path):
        async def body(url):
            status, document = await http_request(url, "POST", "/ask", {})
            assert status == 400
            assert "side" in document["error"]
            status, document = await http_request(
                url, "POST", "/ask", {"side": 256.0, "probability": 2.0}
            )
            assert status == 400
            status, _ = await http_request(url, "GET", "/nowhere")
            assert status == 404

        self.serve(tmp_path, body)
