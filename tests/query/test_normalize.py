"""Query validation and query → grid-key normalization."""

import pytest

from repro.campaigns import CampaignRunner, CampaignSpec
from repro.experiments.registry import get_experiment
from repro.query import GridIndex, Query, QueryError, resolve
from repro.store import ResultStore


def spec_for(*experiments, **kwargs):
    return CampaignSpec(
        name="query-grid", experiments=tuple(experiments), scale="smoke",
        **kwargs,
    )


class TestQueryValidation:
    def test_side_or_nodes_exactly_one(self):
        with pytest.raises(QueryError, match="side= or nodes="):
            Query(probability=0.9)
        with pytest.raises(QueryError, match="side= or nodes="):
            Query(side=256.0, nodes=16, probability=0.9)

    def test_probability_or_range_exactly_one(self):
        with pytest.raises(QueryError, match="probability= or range="):
            Query(side=256.0)
        with pytest.raises(QueryError, match="probability= or range="):
            Query(side=256.0, probability=0.9, range=2.0)

    def test_bounds(self):
        with pytest.raises(QueryError, match="nodes must be >= 2"):
            Query(nodes=1, probability=0.9)
        with pytest.raises(QueryError, match="side must be positive"):
            Query(side=0.0, probability=0.9)
        with pytest.raises(QueryError, match=r"probability must be in \[0, 1\]"):
            Query(side=256.0, probability=1.5)
        with pytest.raises(QueryError, match="range must be >= 0"):
            Query(side=256.0, range=-1.0)

    def test_nodes_resolve_through_the_paper_scaling(self):
        # n = sqrt(l), so a node count locates the side l = n**2.
        assert Query(nodes=16, probability=0.9).resolved_side == 256.0
        assert Query(side=576.0, probability=0.9).resolved_side == 576.0

    def test_direction_flag(self):
        assert Query(side=256.0, probability=0.9).inverse
        assert not Query(side=256.0, range=2.0).inverse


class TestGridIndex:
    def test_models_come_from_the_scenario_payloads(self):
        grid = GridIndex(spec_for("fig2", "fig3"))
        assert grid.models == ["drunkard", "waypoint"]
        assert grid.scenario_for("waypoint").experiment_id == "fig2"
        assert grid.scenario_for("drunkard").experiment_id == "fig3"

    def test_parameter_studies_are_not_servable(self):
        # Figures 7-9 sweep mobility parameters, not the system size;
        # their payloads carry no model field and must stay out of the
        # servable surface instead of aliasing a system-size cell.
        grid = GridIndex(spec_for("fig7"))
        assert grid.models == []
        with pytest.raises(QueryError, match="no campaign cell"):
            grid.scenario_for("waypoint")

    def test_shared_payload_experiments_collapse_to_one_cell(self):
        # fig2 and fig4 plot different series of the same waypoint sweep;
        # grid order picks the first as the serving cell.
        grid = GridIndex(spec_for("fig2", "fig4"))
        assert grid.models == ["waypoint"]
        assert grid.scenario_for("waypoint").experiment_id == "fig2"


class TestResolve:
    def test_exact_grid_point(self):
        grid = GridIndex(spec_for("fig2"))
        resolved = resolve(grid, Query(side=256.0, probability=0.9))
        assert resolved.exact == 256.0
        assert resolved.bracket == (256.0,)
        assert not resolved.out_of_grid
        assert len(resolved.row_keys) == 1

    def test_between_grid_points_brackets_both_neighbors(self):
        grid = GridIndex(spec_for("fig2"))  # smoke sides: 256, 1024
        resolved = resolve(grid, Query(side=640.0, probability=0.9))
        assert resolved.exact is None
        assert resolved.bracket == (256.0, 1024.0)
        assert not resolved.out_of_grid
        assert len(resolved.row_keys) == 2

    def test_outside_the_span_is_flagged_not_clamped(self):
        grid = GridIndex(spec_for("fig2"))
        above = resolve(grid, Query(side=4096.0, probability=0.9))
        assert above.out_of_grid
        assert above.exact is None  # never silently promoted to a hit
        assert above.bracket == (1024.0,)  # nearest edge, for extrapolation
        assert above.side == 4096.0  # the queried side survives untouched
        below = resolve(grid, Query(side=16.0, probability=0.9))
        assert below.out_of_grid
        assert below.bracket == (256.0,)

    def test_row_keys_are_the_runners_keys_bitwise(self, tmp_path):
        spec = spec_for("fig2")
        grid = GridIndex(spec)
        scenario = grid.scenario_for("waypoint")
        runner = CampaignRunner(spec, store=ResultStore(tmp_path / "store"))
        checkpoint = runner._checkpoint_for(
            get_experiment(scenario.experiment_id), scenario
        )
        resolved = resolve(grid, Query(side=256.0, probability=0.9))
        assert resolved.row_keys[0] == checkpoint.key_for(256.0)

    def test_unknown_model_is_a_query_error(self):
        grid = GridIndex(spec_for("fig2"))
        with pytest.raises(QueryError, match="no campaign cell"):
            resolve(grid, Query(model="teleport", side=256.0, probability=0.9))
