"""The monotone connectivity surrogate: fitting, evaluation, inversion."""

import pytest

from repro.query.surrogate import (
    CURVE_POINTS,
    ConnectivityCurve,
    blend_rows,
    fit_row,
)

#: A well-ordered stored row (thresholds strictly increasing).
ROW = {"r0": 1.0, "r10": 1.5, "r90": 3.0, "r100": 4.0, "rstationary": 2.0}


class TestFitRow:
    def test_knots_follow_the_stored_thresholds(self):
        curve = fit_row(ROW)
        assert curve.ranges == (1.0, 1.5, 3.0, 4.0)
        assert curve.probabilities == (0.0, 0.1, 0.9, 1.0)

    def test_missing_threshold_column_is_rejected(self):
        with pytest.raises(ValueError, match="threshold column"):
            fit_row({"r0": 1.0, "r10": 1.5, "r90": 3.0})

    def test_isotonic_repair_clamps_crossed_thresholds(self):
        # Monte Carlo jitter can cross r10 above r90; the repair clamps
        # the later knot up, never reorders, and keeps the raw floats.
        crossed = {"r0": 1.0, "r10": 3.2, "r90": 3.0, "r100": 4.0}
        curve = fit_row(crossed)
        assert curve.ranges == (1.0, 3.2, 3.2, 4.0)
        assert curve.raw_ranges == (1.0, 3.2, 3.0, 4.0)
        assert all(
            a <= b for a, b in zip(curve.ranges, curve.ranges[1:])
        )


class TestForwardEvaluation:
    def test_knots_evaluate_to_their_probabilities(self):
        curve = fit_row(ROW)
        for column, probability in CURVE_POINTS:
            assert curve.probability_at(ROW[column]) == probability

    def test_between_knots_is_linear(self):
        curve = fit_row(ROW)
        # Midway between r10 (p=0.1) and r90 (p=0.9).
        assert curve.probability_at(2.25) == pytest.approx(0.5)

    def test_outside_the_knots_clamps_to_0_and_1(self):
        curve = fit_row(ROW)
        assert curve.probability_at(0.1) == 0.0
        assert curve.probability_at(100.0) == 1.0

    def test_monotone_non_decreasing_everywhere(self):
        curve = fit_row(ROW)
        probes = [0.0, 0.5, 1.0, 1.2, 1.5, 2.0, 2.9, 3.0, 3.5, 4.0, 9.0]
        values = [curve.probability_at(r) for r in probes]
        assert values == sorted(values)


class TestInverseEvaluation:
    def test_stored_probabilities_return_stored_floats_bitwise(self):
        # The acceptance criterion: exact grid queries are bit-identical
        # to the campaign's own values — even when the isotonic repair
        # moved the knot used for interpolation.
        crossed = {
            "r0": 1.0,
            "r10": 3.0000000000000004,
            "r90": 3.0,
            "r100": 4.0,
        }
        curve = fit_row(crossed)
        for column, probability in CURVE_POINTS:
            assert curve.range_for(probability) == crossed[column]

    def test_between_knots_interpolates(self):
        curve = fit_row(ROW)
        assert curve.range_for(0.5) == pytest.approx(2.25)

    def test_round_trips_through_the_forward_direction(self):
        curve = fit_row(ROW)
        for p in (0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95):
            assert curve.probability_at(curve.range_for(p)) == pytest.approx(p)

    def test_inverse_is_monotone_in_probability(self):
        curve = fit_row(ROW)
        probes = [0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
        values = [curve.range_for(p) for p in probes]
        assert values == sorted(values)

    def test_flat_segment_resolves_to_the_smallest_sufficient_range(self):
        curve = ConnectivityCurve(
            ranges=(1.0, 2.0, 2.0, 3.0),
            probabilities=(0.0, 0.1, 0.9, 1.0),
            raw_ranges=(1.0, 2.0, 2.0, 3.0),
        )
        assert curve.range_for(0.5) == 2.0


class TestBlendRows:
    LOW = {"r0": 1.0, "r10": 2.0, "r90": 3.0, "r100": 4.0}
    HIGH = {"r0": 3.0, "r10": 4.0, "r90": 7.0, "r100": 8.0}

    def test_midpoint_blends_each_threshold_linearly(self):
        row = blend_rows(256.0, self.LOW, 1024.0, self.HIGH, 640.0)
        assert row == {"r0": 2.0, "r10": 3.0, "r90": 5.0, "r100": 6.0}

    def test_endpoints_reproduce_the_grid_rows(self):
        low = blend_rows(256.0, self.LOW, 1024.0, self.HIGH, 256.0)
        high = blend_rows(256.0, self.LOW, 1024.0, self.HIGH, 1024.0)
        assert low == self.LOW
        assert high == self.HIGH

    def test_extrapolates_beyond_the_pair(self):
        row = blend_rows(256.0, self.LOW, 1024.0, self.HIGH, 1792.0)
        assert row["r0"] == pytest.approx(5.0)
        assert row["r100"] == pytest.approx(12.0)

    def test_extrapolated_thresholds_floor_at_zero(self):
        row = blend_rows(256.0, self.LOW, 1024.0, self.HIGH, 0.5)
        assert all(value >= 0.0 for value in row.values())

    def test_degenerate_pair_returns_the_low_row(self):
        row = blend_rows(256.0, self.LOW, 256.0, self.HIGH, 256.0)
        assert row == self.LOW

    def test_blended_row_is_fittable(self):
        row = blend_rows(256.0, self.LOW, 1024.0, self.HIGH, 640.0)
        curve = fit_row(row)
        assert curve.probability_at(row["r90"]) == 0.9
