"""Integration tests exercising the full pipeline.

These tests reproduce, at a reduced scale, the qualitative claims of the
paper that the benchmarks measure at full scale:

* the thresholds are ordered ``r0 <= r10 <= r90 <= r100`` and sit in a
  sensible relation to ``rstationary``;
* ``r90`` is substantially below ``r100`` (the energy trade-off);
* at ``r90`` and ``r10`` the largest connected component still holds most
  of the nodes;
* about half of the nodes being stationary makes the network behave like a
  stationary one (the Figure 7 threshold phenomenon);
* the two mobility models give similar results (the paper's "models do not
  matter much" conclusion);
* in 1-D, the empirical critical product ``r n`` tracks ``l log l``.
"""

import math

import pytest

from repro.analysis.bounds_1d import critical_product_1d
from repro.simulation.config import MobilitySpec, NetworkConfig, SimulationConfig
from repro.simulation.metrics import range_for_connectivity_fraction
from repro.simulation.runner import (
    collect_frame_statistics,
    stationary_critical_range,
)
from repro.simulation.search import (
    average_component_fraction_at_range,
    estimate_component_thresholds_from_statistics,
    estimate_thresholds_from_statistics,
)

SIDE = 1024.0
NODES = 32
STEPS = 60
ITERATIONS = 3
SEED = 2002


@pytest.fixture(scope="module")
def waypoint_statistics():
    config = SimulationConfig(
        network=NetworkConfig(node_count=NODES, side=SIDE, dimension=2),
        mobility=MobilitySpec.paper_waypoint(SIDE),
        steps=STEPS,
        iterations=ITERATIONS,
        seed=SEED,
    )
    return collect_frame_statistics(config)


@pytest.fixture(scope="module")
def drunkard_statistics():
    config = SimulationConfig(
        network=NetworkConfig(node_count=NODES, side=SIDE, dimension=2),
        mobility=MobilitySpec.paper_drunkard(SIDE),
        steps=STEPS,
        iterations=ITERATIONS,
        seed=SEED,
    )
    return collect_frame_statistics(config)


@pytest.fixture(scope="module")
def rstationary():
    return stationary_critical_range(
        node_count=NODES, side=SIDE, dimension=2, iterations=150, seed=SEED,
        confidence=0.99,
    )


class TestThresholdStructure:
    def test_ordering(self, waypoint_statistics):
        thresholds = estimate_thresholds_from_statistics(waypoint_statistics)
        assert thresholds.r0 <= thresholds.r10 <= thresholds.r90 <= thresholds.r100

    def test_relaxed_thresholds_below_r100(self, waypoint_statistics):
        """The paper reports r90 about 35-40% below r100 and r10 about
        55-60% below it.  The size of the gap grows with the number of
        mobility steps (r100 is a maximum over steps); at this reduced scale
        we require a strict reduction for r90 and a substantial one for r10."""
        thresholds = estimate_thresholds_from_statistics(waypoint_statistics)
        assert thresholds.r90 < thresholds.r100
        assert thresholds.r10 <= 0.9 * thresholds.r100

    def test_r100_close_to_rstationary(self, waypoint_statistics, rstationary):
        """r100 should be of the same order as rstationary (the paper finds
        ratios between roughly 0.9 and 1.3 depending on l)."""
        thresholds = estimate_thresholds_from_statistics(waypoint_statistics)
        ratio = thresholds.r100 / rstationary
        assert 0.5 < ratio < 2.0

    def test_component_thresholds_below_connectivity_thresholds(
        self, waypoint_statistics
    ):
        connectivity = estimate_thresholds_from_statistics(waypoint_statistics)
        components = estimate_component_thresholds_from_statistics(waypoint_statistics)
        assert components.rl50 <= components.rl75 <= components.rl90
        assert components.rl90 <= connectivity.r100


class TestLargestComponentClaims:
    def test_large_component_survives_at_r90(self, waypoint_statistics):
        """Figure 4: at r90 the largest component holds nearly all nodes."""
        thresholds = estimate_thresholds_from_statistics(waypoint_statistics)
        fraction = average_component_fraction_at_range(
            waypoint_statistics, thresholds.r90
        )
        assert fraction > 0.9

    def test_large_component_survives_at_r10(self, waypoint_statistics):
        """Figure 4: even at r10 the largest component holds most nodes."""
        thresholds = estimate_thresholds_from_statistics(waypoint_statistics)
        fraction = average_component_fraction_at_range(
            waypoint_statistics, thresholds.r10
        )
        assert fraction > 0.7

    def test_component_collapses_at_r0(self, waypoint_statistics):
        """At r0 the component is clearly smaller than at r90."""
        thresholds = estimate_thresholds_from_statistics(waypoint_statistics)
        at_r90 = average_component_fraction_at_range(waypoint_statistics, thresholds.r90)
        at_r0 = average_component_fraction_at_range(waypoint_statistics, thresholds.r0)
        assert at_r0 < at_r90


class TestMobilityModelComparison:
    def test_models_give_similar_thresholds(
        self, waypoint_statistics, drunkard_statistics
    ):
        """The paper's headline observation: the two models behave alike."""
        waypoint = estimate_thresholds_from_statistics(waypoint_statistics)
        drunkard = estimate_thresholds_from_statistics(drunkard_statistics)
        assert waypoint.r100 == pytest.approx(drunkard.r100, rel=0.4)
        assert waypoint.r90 == pytest.approx(drunkard.r90, rel=0.4)


class TestStationaryFractionThreshold:
    def test_half_stationary_behaves_like_stationary(self, rstationary):
        """Figure 7: with pstationary >= 0.5-0.6 the network is essentially
        stationary; with pstationary = 0 it needs a larger r100."""

        def r100_at(pstationary: float) -> float:
            config = SimulationConfig(
                network=NetworkConfig(node_count=NODES, side=SIDE, dimension=2),
                mobility=MobilitySpec.paper_waypoint(SIDE, pstationary=pstationary),
                steps=40,
                iterations=3,
                seed=SEED,
            )
            statistics = collect_frame_statistics(config)
            return estimate_thresholds_from_statistics(statistics).r100

    # The fully mobile network needs at least as much range as the mostly
    # stationary one.
        assert r100_at(0.0) >= r100_at(0.8) * 0.95


class TestTheorem5Scaling:
    def test_empirical_product_tracks_l_log_l(self):
        """The empirical r99 * n stays within a constant factor of l log l
        as l grows (Theorem 5)."""
        ratios = []
        for side in (200.0, 800.0, 3200.0):
            n = max(4, int(side // 4))
            config = SimulationConfig(
                network=NetworkConfig(node_count=n, side=side, dimension=1),
                mobility=MobilitySpec.stationary(),
                steps=1,
                iterations=80,
                seed=SEED,
            )
            statistics = collect_frame_statistics(config)
            pooled = [frame for frames in statistics for frame in frames]
            r99 = range_for_connectivity_fraction(pooled, 0.99)
            ratios.append(r99 * n / critical_product_1d(side))
        # The ratio is bounded and does not blow up or vanish with l.
        assert all(0.2 < ratio < 5.0 for ratio in ratios)
        assert max(ratios) / min(ratios) < 3.0
