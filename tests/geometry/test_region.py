"""Tests for repro.geometry.region."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.geometry.region import Region


class TestConstruction:
    def test_square_factory(self):
        region = Region.square(50.0)
        assert region.side == 50.0
        assert region.dimension == 2

    def test_line_factory(self):
        region = Region.line(10.0)
        assert region.dimension == 1

    def test_invalid_side(self):
        with pytest.raises(ConfigurationError):
            Region(side=0.0)
        with pytest.raises(ConfigurationError):
            Region(side=-5.0)

    def test_invalid_dimension(self):
        with pytest.raises(ConfigurationError):
            Region(side=1.0, dimension=0)

    def test_volume(self):
        assert Region(side=4.0, dimension=3).volume == pytest.approx(64.0)

    def test_diagonal(self):
        assert Region.square(1.0).diagonal == pytest.approx(np.sqrt(2.0))
        assert Region.line(7.0).diagonal == pytest.approx(7.0)


class TestContains:
    def test_inside(self, square_region):
        points = np.array([[0.0, 0.0], [50.0, 99.0]])
        assert square_region.contains(points)

    def test_outside(self, square_region):
        assert not square_region.contains(np.array([[101.0, 5.0]]))
        assert not square_region.contains(np.array([[-1.0, 5.0]]))

    def test_tolerance(self, square_region):
        assert square_region.contains(np.array([[100.0 + 1e-12, 0.0]]))

    def test_dimension_mismatch(self, square_region):
        with pytest.raises(DimensionMismatchError):
            square_region.contains(np.array([[1.0, 2.0, 3.0]]))


class TestSampling:
    def test_sample_shape(self, square_region, rng):
        points = square_region.sample_uniform(25, rng)
        assert points.shape == (25, 2)

    def test_sample_within_region(self, square_region, rng):
        points = square_region.sample_uniform(500, rng)
        assert square_region.contains(points)

    def test_sample_zero(self, square_region, rng):
        assert square_region.sample_uniform(0, rng).shape == (0, 2)

    def test_sample_negative_raises(self, square_region, rng):
        with pytest.raises(ConfigurationError):
            square_region.sample_uniform(-1, rng)

    def test_sample_point(self, square_region, rng):
        point = square_region.sample_point(rng)
        assert point.shape == (2,)

    def test_sample_reproducible(self, square_region):
        a = square_region.sample_uniform(10, np.random.default_rng(1))
        b = square_region.sample_uniform(10, np.random.default_rng(1))
        assert np.allclose(a, b)


class TestBoundaryHandling:
    def test_clamp(self, square_region):
        clamped = square_region.clamp(np.array([[-5.0, 120.0]]))
        assert np.allclose(clamped, [[0.0, 100.0]])

    def test_reflect_small_overshoot(self, square_region):
        reflected = square_region.reflect(np.array([[105.0, -3.0]]))
        assert np.allclose(reflected, [[95.0, 3.0]])

    def test_reflect_large_overshoot_folds(self, square_region):
        reflected = square_region.reflect(np.array([[250.0, 0.0]]))
        assert square_region.contains(reflected)

    def test_reflect_inside_unchanged(self, square_region):
        points = np.array([[10.0, 20.0]])
        assert np.allclose(square_region.reflect(points), points)

    def test_wrap(self, square_region):
        wrapped = square_region.wrap(np.array([[105.0, -3.0]]))
        assert np.allclose(wrapped, [[5.0, 97.0]])

    def test_wrap_inside_unchanged(self, square_region):
        points = np.array([[10.0, 20.0]])
        assert np.allclose(square_region.wrap(points), points)
