"""Tests for repro.geometry.kdtree."""

import numpy as np
import pytest

from repro.geometry.kdtree import KDTree


class TestQueryRadius:
    def test_matches_brute_force(self, small_placement):
        tree = KDTree(small_placement)
        radius = 25.0
        for node in range(small_placement.shape[0]):
            found = set(tree.query_radius(small_placement[node], radius))
            distances = np.linalg.norm(small_placement - small_placement[node], axis=1)
            expected = set(np.nonzero(distances <= radius)[0])
            assert found == expected

    def test_zero_radius_finds_the_point_itself(self):
        points = np.array([[1.0, 1.0], [2.0, 2.0]])
        tree = KDTree(points)
        assert tree.query_radius([1.0, 1.0], 0.0) == [0]

    def test_negative_radius_raises(self):
        tree = KDTree(np.array([[0.0, 0.0]]))
        with pytest.raises(ValueError):
            tree.query_radius([0.0, 0.0], -1.0)

    def test_empty_tree(self):
        tree = KDTree(np.empty((0, 2)))
        assert tree.query_radius([0.0, 0.0], 10.0) == []
        assert len(tree) == 0


class TestQueryKnn:
    def test_matches_brute_force(self, small_placement):
        tree = KDTree(small_placement)
        k = 5
        for node in range(small_placement.shape[0]):
            neighbors = tree.query_knn(small_placement[node], k, exclude=node)
            found = [index for index, _ in neighbors]
            distances = np.linalg.norm(small_placement - small_placement[node], axis=1)
            distances[node] = np.inf
            expected = list(np.argsort(distances)[:k])
            assert set(found) == set(int(i) for i in expected)

    def test_distances_sorted_ascending(self, small_placement):
        tree = KDTree(small_placement)
        neighbors = tree.query_knn(small_placement[0], 8, exclude=0)
        distances = [distance for _, distance in neighbors]
        assert distances == sorted(distances)

    def test_k_larger_than_points(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        tree = KDTree(points)
        neighbors = tree.query_knn([0.0, 0.0], 10)
        assert len(neighbors) == 3

    def test_exclude(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0]])
        tree = KDTree(points)
        neighbors = tree.query_knn(points[0], 1, exclude=0)
        assert neighbors[0][0] == 1

    def test_invalid_k(self):
        tree = KDTree(np.array([[0.0, 0.0]]))
        with pytest.raises(ValueError):
            tree.query_knn([0.0, 0.0], 0)

    def test_1d_points(self, rng):
        points = rng.uniform(0, 100, size=(50, 1))
        tree = KDTree(points)
        neighbors = tree.query_knn(points[10], 3, exclude=10)
        distances = np.abs(points[:, 0] - points[10, 0])
        distances[10] = np.inf
        expected_nearest = int(np.argmin(distances))
        assert neighbors[0][0] == expected_nearest
