"""Tests for repro.geometry.distance."""

import math

import numpy as np
import pytest

from repro.geometry.distance import (
    euclidean_distance,
    nearest_neighbor_distances,
    pairwise_distances,
    squared_distance_matrix,
    toroidal_distance,
    toroidal_distance_matrix,
)


class TestSquaredDistanceMatrix:
    def test_matches_manual_computation(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0], [1.0, 1.0]])
        matrix = squared_distance_matrix(points)
        assert matrix[0, 1] == pytest.approx(25.0)
        assert matrix[0, 2] == pytest.approx(2.0)
        assert matrix[1, 2] == pytest.approx(13.0)

    def test_diagonal_zero(self, small_placement):
        matrix = squared_distance_matrix(small_placement)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_symmetric(self, small_placement):
        matrix = squared_distance_matrix(small_placement)
        assert np.allclose(matrix, matrix.T)

    def test_non_negative(self, small_placement):
        assert np.all(squared_distance_matrix(small_placement) >= 0.0)

    def test_1d_input(self):
        matrix = squared_distance_matrix(np.array([0.0, 3.0]))
        assert matrix[0, 1] == pytest.approx(9.0)


class TestPairwiseDistances:
    def test_is_sqrt_of_squared(self, small_placement):
        assert np.allclose(
            pairwise_distances(small_placement) ** 2,
            squared_distance_matrix(small_placement),
        )

    def test_triangle_inequality(self, small_placement):
        distances = pairwise_distances(small_placement)
        n = distances.shape[0]
        for i in range(0, n, 7):
            for j in range(0, n, 5):
                for k in range(0, n, 3):
                    assert distances[i, j] <= distances[i, k] + distances[k, j] + 1e-9


class TestEuclideanDistance:
    def test_known_value(self):
        assert euclidean_distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            euclidean_distance([0, 0], [1, 2, 3])


class TestToroidal:
    def test_wraps_around(self):
        assert toroidal_distance([0.5], [9.5], side=10.0) == pytest.approx(1.0)

    def test_no_wrap_when_closer_directly(self):
        assert toroidal_distance([2.0], [5.0], side=10.0) == pytest.approx(3.0)

    def test_2d(self):
        distance = toroidal_distance([0.0, 0.0], [9.0, 9.0], side=10.0)
        assert distance == pytest.approx(math.sqrt(2.0))

    def test_never_exceeds_euclidean(self, small_placement):
        euclidean = pairwise_distances(small_placement)
        toroidal = toroidal_distance_matrix(small_placement, side=100.0)
        assert np.all(toroidal <= euclidean + 1e-9)

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            toroidal_distance([0.0], [1.0], side=0.0)
        with pytest.raises(ValueError):
            toroidal_distance_matrix(np.array([[0.0]]), side=-1.0)

    def test_matrix_symmetric(self, small_placement):
        matrix = toroidal_distance_matrix(small_placement, side=100.0)
        assert np.allclose(matrix, matrix.T)


class TestNearestNeighborDistances:
    def test_simple_line(self):
        points = np.array([[0.0], [1.0], [10.0]])
        distances = nearest_neighbor_distances(points)
        assert distances[0] == pytest.approx(1.0)
        assert distances[1] == pytest.approx(1.0)
        assert distances[2] == pytest.approx(9.0)

    def test_single_point(self):
        assert nearest_neighbor_distances(np.array([[1.0, 2.0]]))[0] == math.inf

    def test_empty(self):
        assert nearest_neighbor_distances(np.empty((0, 2))).size == 0
