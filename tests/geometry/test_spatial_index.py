"""Tests for repro.geometry.spatial_index."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.geometry.distance import pairwise_distances
from repro.geometry.spatial_index import GridIndex


def brute_force_pairs(points: np.ndarray, radius: float):
    distances = pairwise_distances(points)
    n = points.shape[0]
    return {
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if distances[i, j] <= radius
    }


class TestConstruction:
    def test_invalid_cell_size(self):
        with pytest.raises(ConfigurationError):
            GridIndex(np.array([[0.0, 0.0]]), cell_size=0.0)

    def test_len(self, small_placement):
        index = GridIndex(small_placement, cell_size=10.0)
        assert len(index) == small_placement.shape[0]

    def test_empty_input(self):
        index = GridIndex(np.empty((0, 2)), cell_size=1.0)
        assert len(index) == 0
        assert index.neighbor_pairs(1.0) == []

    def test_cell_of(self):
        index = GridIndex(np.array([[0.5, 0.5]]), cell_size=1.0)
        assert index.cell_of([2.3, 0.1]) == (2, 0)
        assert index.cell_of([0.0, 0.0]) == (0, 0)


class TestQueryRadius:
    def test_matches_brute_force(self, small_placement):
        radius = 20.0
        index = GridIndex(small_placement, cell_size=radius)
        for node in range(small_placement.shape[0]):
            found = set(index.query_radius(small_placement[node], radius))
            distances = np.linalg.norm(small_placement - small_placement[node], axis=1)
            expected = set(np.nonzero(distances <= radius)[0])
            assert found == expected

    def test_negative_radius_raises(self, small_placement):
        index = GridIndex(small_placement, cell_size=5.0)
        with pytest.raises(ConfigurationError):
            index.query_radius(small_placement[0], -1.0)

    def test_query_far_from_points(self, small_placement):
        index = GridIndex(small_placement, cell_size=5.0)
        assert index.query_radius([1e6, 1e6], 5.0) == []


class TestNeighborPairs:
    @pytest.mark.parametrize("radius", [5.0, 15.0, 40.0])
    def test_matches_brute_force(self, small_placement, radius):
        index = GridIndex(small_placement, cell_size=radius)
        pairs = set(index.neighbor_pairs(radius))
        assert pairs == brute_force_pairs(small_placement, radius)

    def test_cell_size_smaller_than_radius(self, small_placement):
        radius = 25.0
        index = GridIndex(small_placement, cell_size=10.0)
        pairs = set(index.neighbor_pairs(radius))
        assert pairs == brute_force_pairs(small_placement, radius)

    def test_pairs_are_ordered(self, small_placement):
        index = GridIndex(small_placement, cell_size=10.0)
        for u, v in index.neighbor_pairs(10.0):
            assert u < v

    def test_no_duplicates(self, small_placement):
        index = GridIndex(small_placement, cell_size=10.0)
        pairs = index.neighbor_pairs(10.0)
        assert len(pairs) == len(set(pairs))

    def test_one_dimensional_points(self, rng):
        points = rng.uniform(0.0, 100.0, size=(40, 1))
        index = GridIndex(points, cell_size=7.0)
        pairs = set(index.neighbor_pairs(7.0))
        assert pairs == brute_force_pairs(points, 7.0)

    def test_three_dimensional_points(self, rng):
        points = rng.uniform(0.0, 20.0, size=(30, 3))
        index = GridIndex(points, cell_size=4.0)
        pairs = set(index.neighbor_pairs(4.0))
        assert pairs == brute_force_pairs(points, 4.0)
