"""Tests for repro.connectivity.path."""

import numpy as np
import pytest

from repro.connectivity.path import (
    average_hop_count,
    network_diameter_hops,
    reachability_fraction,
)
from repro.graph.adjacency import CommunicationGraph
from repro.graph.builder import build_communication_graph


def path_graph(n: int) -> CommunicationGraph:
    return CommunicationGraph(n, edges=[(i, i + 1) for i in range(n - 1)])


class TestAverageHopCount:
    def test_path_graph(self):
        # For a path on 3 nodes, pairwise hop distances are 1, 1, 2 -> mean 4/3.
        assert average_hop_count(path_graph(3)) == pytest.approx(4 / 3)

    def test_complete_graph(self):
        graph = CommunicationGraph(4, edges=[(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert average_hop_count(graph) == pytest.approx(1.0)

    def test_no_edges(self):
        assert average_hop_count(CommunicationGraph(3)) is None

    def test_disconnected_ignores_unreachable_pairs(self):
        graph = CommunicationGraph(4, edges=[(0, 1), (2, 3)])
        assert average_hop_count(graph) == pytest.approx(1.0)


class TestDiameter:
    def test_path_graph(self):
        assert network_diameter_hops(path_graph(5)) == 4

    def test_no_edges(self):
        assert network_diameter_hops(CommunicationGraph(2)) is None

    def test_matches_networkx(self, small_placement):
        networkx = pytest.importorskip("networkx")
        from repro.graph.convert import to_networkx

        graph = build_communication_graph(small_placement, 40.0)
        nx_graph = to_networkx(graph)
        if networkx.is_connected(nx_graph):
            assert network_diameter_hops(graph) == networkx.diameter(nx_graph)


class TestReachability:
    def test_connected_graph(self):
        assert reachability_fraction(path_graph(6)) == 1.0

    def test_fully_disconnected(self):
        assert reachability_fraction(CommunicationGraph(4)) == 0.0

    def test_half_split(self):
        graph = CommunicationGraph(4, edges=[(0, 1), (2, 3)])
        # 2 reachable pairs out of 6.
        assert reachability_fraction(graph) == pytest.approx(1 / 3)

    def test_single_node(self):
        assert reachability_fraction(CommunicationGraph(1)) == 1.0

    def test_tracks_square_of_largest_fraction(self, small_placement):
        graph = build_communication_graph(small_placement, 12.0)
        from repro.graph.components import largest_component_fraction

        fraction = largest_component_fraction(graph)
        # Reachability is at least the pairs within the largest component.
        n = graph.node_count
        largest = round(fraction * n)
        minimum = largest * (largest - 1) / 2 / (n * (n - 1) / 2)
        assert reachability_fraction(graph) >= minimum - 1e-9
