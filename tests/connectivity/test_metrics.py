"""Tests for repro.connectivity.metrics."""

import numpy as np
import pytest

from repro.connectivity.metrics import (
    connectivity_fraction_over_trace,
    is_placement_connected,
    largest_component_fraction_of_placement,
    observe_placement,
    observe_trace,
)


class TestObservePlacement:
    def test_connected_cluster(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        observation = observe_placement(points, 1.5)
        assert observation.connected
        assert observation.largest_component_size == 3
        assert observation.component_count == 1
        assert observation.largest_component_fraction == 1.0

    def test_disconnected(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [50.0, 50.0]])
        observation = observe_placement(points, 1.5)
        assert not observation.connected
        assert observation.largest_component_size == 2
        assert observation.component_count == 2
        assert observation.largest_component_fraction == pytest.approx(2 / 3)

    def test_zero_range_all_isolated(self, small_placement):
        observation = observe_placement(small_placement, 0.0)
        assert observation.largest_component_size == 1
        assert observation.component_count == small_placement.shape[0]

    def test_empty_placement(self):
        observation = observe_placement(np.empty((0, 2)), 1.0)
        assert observation.connected
        assert observation.largest_component_fraction == 0.0

    def test_records_range(self, small_placement):
        assert observe_placement(small_placement, 7.5).transmitting_range == 7.5


class TestPlacementPredicates:
    def test_is_placement_connected_monotone(self, small_placement):
        from repro.connectivity.critical_range import critical_range

        r_star = critical_range(small_placement)
        assert is_placement_connected(small_placement, r_star)
        assert is_placement_connected(small_placement, r_star * 1.5)
        assert not is_placement_connected(small_placement, r_star * 0.99)

    def test_largest_fraction_increases_with_range(self, small_placement):
        fractions = [
            largest_component_fraction_of_placement(small_placement, r)
            for r in (0.0, 10.0, 30.0, 200.0)
        ]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0


class TestTraceObservation:
    def test_observe_trace_length(self, small_placement):
        frames = [small_placement, small_placement + 1.0]
        observations = observe_trace(frames, 20.0)
        assert len(observations) == 2

    def test_connectivity_fraction(self):
        connected = np.array([[0.0, 0.0], [1.0, 0.0]])
        disconnected = np.array([[0.0, 0.0], [50.0, 0.0]])
        fraction = connectivity_fraction_over_trace(
            [connected, disconnected, connected, connected], 2.0
        )
        assert fraction == pytest.approx(0.75)

    def test_empty_trace(self):
        assert connectivity_fraction_over_trace([], 1.0) == 0.0
