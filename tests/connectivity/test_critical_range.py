"""Tests for repro.connectivity.critical_range."""

import numpy as np
import pytest

from repro.connectivity.critical_range import (
    critical_range,
    critical_range_for_component_fraction,
    critical_range_toroidal,
    longest_gap_1d,
    range_for_k_connectivity,
    sorted_edge_lengths,
)
from repro.connectivity.metrics import (
    is_placement_connected,
    largest_component_fraction_of_placement,
)
from repro.exceptions import AnalysisError


class TestCriticalRange:
    def test_two_points(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert critical_range(points) == pytest.approx(5.0)

    def test_line_of_points(self):
        points = np.array([[0.0], [1.0], [3.0], [6.0]])
        assert critical_range(points) == pytest.approx(3.0)

    def test_single_point_and_empty(self):
        assert critical_range(np.array([[1.0, 2.0]])) == 0.0
        assert critical_range(np.empty((0, 2))) == 0.0

    def test_is_exact_threshold(self, small_placement):
        r_star = critical_range(small_placement)
        assert is_placement_connected(small_placement, r_star)
        assert not is_placement_connected(small_placement, r_star - 1e-9)

    def test_matches_mst_bottleneck_from_networkx(self, rng):
        networkx = pytest.importorskip("networkx")
        points = rng.uniform(0, 100, size=(40, 2))
        complete = networkx.Graph()
        for i in range(40):
            for j in range(i + 1, 40):
                complete.add_edge(i, j, weight=float(np.linalg.norm(points[i] - points[j])))
        mst = networkx.minimum_spanning_tree(complete)
        bottleneck = max(data["weight"] for _, _, data in mst.edges(data=True))
        assert critical_range(points) == pytest.approx(bottleneck)

    def test_duplicate_points(self):
        points = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 1.0]])
        assert critical_range(points) == pytest.approx(1.0)


class TestCriticalRangeToroidal:
    def test_wraparound_shorter_than_euclidean(self):
        points = np.array([[0.5, 0.5], [99.5, 0.5]])
        assert critical_range_toroidal(points, 100.0) == pytest.approx(1.0)

    def test_trivial_inputs(self):
        assert critical_range_toroidal(np.array([[1.0, 2.0]]), 10.0) == 0.0
        assert critical_range_toroidal(np.empty((0, 2)), 10.0) == 0.0

    def test_range_reaches_bottleneck_pair(self):
        """Regression: the returned range must satisfy ``r**2 >= d**2`` for
        the bottleneck pair it was derived from.

        This separation is a concrete case where ``math.sqrt(d_squared)``
        squares to strictly less than ``d_squared``, so the pre-fix code
        (plain square root, no ulp round-up) returned a range that failed
        the squared-distance adjacency test for its own bottleneck edge.
        """
        dx, dy = 0.40036971481613076, 0.44812267709330644
        squared = dx * dx + dy * dy
        assert np.sqrt(squared) ** 2 < squared  # the regression's trigger
        points = np.array([[0.0, 0.0], [dx, dy]])
        value = critical_range_toroidal(points, 1.0)
        assert value * value >= squared

    def test_connects_random_placements_under_squared_comparison(self, rng):
        from repro.geometry.distance import toroidal_squared_distance_matrix
        from repro.graph.union_find import UnionFind

        side = 100.0
        for _ in range(5):
            points = rng.uniform(0, side, size=(20, 2))
            value = critical_range_toroidal(points, side)
            squared = toroidal_squared_distance_matrix(points, side)
            structure = UnionFind(points.shape[0])
            rows, cols = np.nonzero(squared <= value * value)
            for u, v in zip(rows, cols):
                structure.union(int(u), int(v))
            assert structure.component_count == 1

    def test_agrees_with_euclidean_without_wraparound(self, rng):
        # On a torus much larger than the placement spread no pair wraps, so
        # the toroidal bottleneck equals the Euclidean one.
        points = rng.uniform(0, 10, size=(15, 2))
        assert critical_range_toroidal(points, 1000.0) == pytest.approx(
            critical_range(points)
        )


class TestComponentFractionRange:
    def test_full_fraction_equals_critical_range(self, small_placement):
        assert critical_range_for_component_fraction(
            small_placement, 1.0
        ) == pytest.approx(critical_range(small_placement))

    def test_is_exact_threshold(self, small_placement):
        target = 0.5
        r_half = critical_range_for_component_fraction(small_placement, target)
        assert largest_component_fraction_of_placement(small_placement, r_half) >= target
        assert (
            largest_component_fraction_of_placement(small_placement, r_half - 1e-9)
            < target
        )

    def test_monotone_in_fraction(self, small_placement):
        values = [
            critical_range_for_component_fraction(small_placement, f)
            for f in (0.25, 0.5, 0.75, 1.0)
        ]
        assert values == sorted(values)

    def test_trivial_targets(self):
        points = np.array([[0.0, 0.0], [10.0, 0.0]])
        # One node out of two is always "connected" at range 0.
        assert critical_range_for_component_fraction(points, 0.5) == 0.0
        assert critical_range_for_component_fraction(np.empty((0, 2)), 0.9) == 0.0

    def test_invalid_fraction(self, small_placement):
        with pytest.raises(AnalysisError):
            critical_range_for_component_fraction(small_placement, 0.0)
        with pytest.raises(AnalysisError):
            critical_range_for_component_fraction(small_placement, 1.1)


class TestLongestGap1d:
    def test_matches_critical_range_in_1d(self, rng):
        points = rng.uniform(0, 1000, size=(60, 1))
        assert longest_gap_1d(points) == pytest.approx(critical_range(points))

    def test_rejects_2d(self, small_placement):
        with pytest.raises(AnalysisError):
            longest_gap_1d(small_placement)

    def test_single_point(self):
        assert longest_gap_1d(np.array([[5.0]])) == 0.0


class TestKConnectivityRange:
    def test_k1_matches_critical_range(self, rng):
        points = rng.uniform(0, 50, size=(12, 2))
        assert range_for_k_connectivity(points, 1) == pytest.approx(
            critical_range(points), abs=1e-4
        )

    def test_k2_at_least_k1(self, rng):
        points = rng.uniform(0, 50, size=(12, 2))
        r1 = range_for_k_connectivity(points, 1)
        r2 = range_for_k_connectivity(points, 2)
        assert r2 is not None and r1 is not None
        assert r2 >= r1 - 1e-9

    def test_k2_result_is_2_connected(self, rng):
        from repro.graph.builder import build_communication_graph
        from repro.graph.properties import is_k_connected

        points = rng.uniform(0, 50, size=(10, 2))
        r2 = range_for_k_connectivity(points, 2, tolerance=1e-4)
        assert r2 is not None
        assert is_k_connected(build_communication_graph(points, r2), 2)

    def test_too_few_nodes(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert range_for_k_connectivity(points, 2) is None

    def test_invalid_k(self, small_placement):
        with pytest.raises(AnalysisError):
            range_for_k_connectivity(small_placement, 0)


class TestSortedEdgeLengths:
    def test_count_and_order(self, small_placement):
        lengths = sorted_edge_lengths(small_placement)
        n = small_placement.shape[0]
        assert len(lengths) == n * (n - 1) // 2
        assert lengths == sorted(lengths)

    def test_small_inputs(self):
        assert sorted_edge_lengths(np.array([[0.0, 0.0]])) == []
        assert sorted_edge_lengths(np.empty((0, 2))) == []
