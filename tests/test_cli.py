"""Tests for the command line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_run_command_defaults(self):
        arguments = build_parser().parse_args(["run", "fig2"])
        assert arguments.experiment == "fig2"
        assert arguments.scale == "default"
        assert arguments.output is None

    def test_stationary_command(self):
        arguments = build_parser().parse_args(
            ["stationary", "--side", "100", "--nodes", "20"]
        )
        assert arguments.side == 100.0
        assert arguments.nodes == 20

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig2" in output
        assert "Figure 2" in output

    def test_stationary_prints_value(self, capsys):
        exit_code = main(
            ["stationary", "--side", "200", "--nodes", "15", "--iterations", "20",
             "--seed", "3"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "rstationary" in output

    def test_run_smoke_with_output(self, capsys, tmp_path, monkeypatch):
        # Shrink the smoke preset further so the CLI test stays fast.
        from repro.experiments import registry

        tiny = registry.ExperimentScale(
            name="smoke",
            sides=(256.0,),
            steps=8,
            iterations=1,
            stationary_iterations=15,
            parameter_points=2,
            seed=5,
        )
        monkeypatch.setitem(registry.SCALES, "smoke", tiny)
        destination = tmp_path / "fig2.json"
        exit_code = main(["run", "fig2", "--scale", "smoke", "--output", str(destination)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "fig2" in output
        payload = json.loads(destination.read_text())
        assert payload["metadata"]["experiment"] == "fig2"
        assert payload["rows"]

    def test_run_unknown_experiment(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "fig99", "--scale", "smoke"])
