"""Tests for the command line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_run_command_defaults(self):
        arguments = build_parser().parse_args(["run", "fig2"])
        assert arguments.experiment == "fig2"
        assert arguments.scale == "default"
        assert arguments.output is None

    def test_stationary_command(self):
        arguments = build_parser().parse_args(
            ["stationary", "--side", "100", "--nodes", "20"]
        )
        assert arguments.side == 100.0
        assert arguments.nodes == 20

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig2" in output
        assert "Figure 2" in output

    def test_stationary_prints_value(self, capsys):
        exit_code = main(
            ["stationary", "--side", "200", "--nodes", "15", "--iterations", "20",
             "--seed", "3"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "rstationary" in output

    def test_run_smoke_with_output(self, capsys, tmp_path, monkeypatch):
        # Shrink the smoke preset further so the CLI test stays fast.
        from repro.experiments import registry

        tiny = registry.ExperimentScale(
            name="smoke",
            sides=(256.0,),
            steps=8,
            iterations=1,
            stationary_iterations=15,
            parameter_points=2,
            seed=5,
        )
        monkeypatch.setitem(registry.SCALES, "smoke", tiny)
        destination = tmp_path / "fig2.json"
        exit_code = main(["run", "fig2", "--scale", "smoke", "--output", str(destination)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "fig2" in output
        payload = json.loads(destination.read_text())
        assert payload["metadata"]["experiment"] == "fig2"
        assert payload["rows"]

    def test_run_unknown_experiment(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "fig99", "--scale", "smoke"])


TINY_CAMPAIGN = """
name = "cli-demo"
experiments = ["fig2"]
scale = "smoke"

[overrides]
sides = [256.0]
steps = 8
iterations = 1
stationary_iterations = 15
seed = 5
"""


class TestCampaignCli:
    def write_spec(self, tmp_path):
        path = tmp_path / "demo.toml"
        path.write_text(TINY_CAMPAIGN)
        return path

    def test_campaign_parser_defaults(self, tmp_path):
        arguments = build_parser().parse_args(["campaign", "run", "spec.toml"])
        assert arguments.campaign_command == "run"
        assert arguments.resume is True
        assert arguments.store == ".repro-store"
        arguments = build_parser().parse_args(
            ["campaign", "run", "spec.toml", "--no-resume", "--store", "s"]
        )
        assert arguments.resume is False
        assert arguments.store == "s"

    def test_campaign_run_status_clean(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path)
        store = tmp_path / "store"

        assert main(["campaign", "run", str(spec), "--store", str(store)]) == 0
        output = capsys.readouterr().out
        assert "cli-demo" in output
        assert "computed 1 value(s)" in output

        # Status: the single scenario is complete.
        assert main(["campaign", "status", str(spec), "--store", str(store)]) == 0
        assert "1/1 scenario(s) complete" in capsys.readouterr().out

        # Re-run: pure cache hit, zero computed values.
        assert main(["campaign", "run", str(spec), "--store", str(store),
                     "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "cache hit" in output
        assert "0 value(s) computed" in output

        # Clean evicts the grid's entries (1 sweep + 1 row checkpoint).
        assert main(["campaign", "clean", str(spec), "--store", str(store)]) == 0
        assert "evicted 2" in capsys.readouterr().out
        assert main(["campaign", "status", str(spec), "--store", str(store)]) == 0
        assert "0/1 scenario(s) complete" in capsys.readouterr().out

    def test_campaign_run_output_dir(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path)
        store = tmp_path / "store"
        out_dir = tmp_path / "results"
        assert main([
            "campaign", "run", str(spec), "--store", str(store),
            "--quiet", "--output-dir", str(out_dir),
        ]) == 0
        saved = json.loads((out_dir / "fig2.json").read_text())
        assert saved["metadata"]["campaign"] == "cli-demo"
        assert saved["rows"]

    def test_campaign_gc(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path)
        store = tmp_path / "store"
        assert main(["campaign", "run", str(spec), "--store", str(store),
                     "--quiet"]) == 0
        capsys.readouterr()

        # A generous budget evicts nothing.
        assert main(["campaign", "gc", "--store", str(store),
                     "--max-bytes", "100000000"]) == 0
        assert "evicted 0" in capsys.readouterr().out

        # A 1-byte budget empties the store; the warm path then recomputes.
        assert main(["campaign", "gc", "--store", str(store),
                     "--max-bytes", "1"]) == 0
        output = capsys.readouterr().out
        assert "evicted 0" not in output and "evicted" in output
        assert main(["campaign", "status", str(spec), "--store", str(store)]) == 0
        assert "0/1 scenario(s) complete" in capsys.readouterr().out

        # Idempotent on an empty store.
        assert main(["campaign", "gc", "--store", str(store)]) == 0
        assert "scanned 0" in capsys.readouterr().out

    def test_campaign_gc_dry_run_reports_without_evicting(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path)
        store = tmp_path / "store"
        assert main(["campaign", "run", str(spec), "--store", str(store),
                     "--quiet"]) == 0
        capsys.readouterr()

        # Dry run against a 1-byte budget: predicts the evictions …
        assert main(["campaign", "gc", "--store", str(store),
                     "--max-bytes", "1", "--dry-run"]) == 0
        output = capsys.readouterr().out
        assert "would evict" in output
        assert "would evict 0" not in output
        # … but the campaign is still complete.
        assert main(["campaign", "status", str(spec), "--store", str(store)]) == 0
        assert "1/1 scenario(s) complete" in capsys.readouterr().out

    def test_campaign_gc_scoped_to_campaign(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path)
        store = tmp_path / "store"
        assert main(["campaign", "run", str(spec), "--store", str(store),
                     "--quiet"]) == 0
        capsys.readouterr()

        # Scoping to an unknown campaign touches nothing.
        assert main(["campaign", "gc", "--store", str(store), "--max-bytes", "1",
                     "--campaign", "never-ran"]) == 0
        output = capsys.readouterr().out
        assert "campaign 'never-ran'" in output
        assert "scanned 0" in output
        assert main(["campaign", "status", str(spec), "--store", str(store)]) == 0
        assert "1/1 scenario(s) complete" in capsys.readouterr().out

        # Scoping to the real campaign evicts its entries.
        assert main(["campaign", "gc", "--store", str(store), "--max-bytes", "1",
                     "--campaign", "cli-demo"]) == 0
        output = capsys.readouterr().out
        assert "campaign 'cli-demo'" in output
        assert "evicted 0" not in output and "evicted" in output
        assert main(["campaign", "status", str(spec), "--store", str(store)]) == 0
        assert "0/1 scenario(s) complete" in capsys.readouterr().out


class TestBackendFlag:
    def test_backend_flag_parses(self):
        arguments = build_parser().parse_args(
            ["run", "fig2", "--scale", "smoke", "--backend", "numpy-strict"]
        )
        assert arguments.backend == "numpy-strict"
        arguments = build_parser().parse_args(["run", "fig2", "--scale", "smoke"])
        assert arguments.backend is None

    def test_unknown_backend_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig2", "--backend", "fortran"])

    def test_run_under_strict_backend_matches_numpy(self, capsys, monkeypatch):
        """The strict verification backend must reproduce the NumPy run's
        rendered table exactly — same kernels, same numbers."""
        from repro.experiments import registry

        tiny = registry.ExperimentScale(
            name="smoke",
            sides=(256.0,),
            steps=8,
            iterations=1,
            stationary_iterations=15,
            parameter_points=2,
            seed=5,
        )
        monkeypatch.setitem(registry.SCALES, "smoke", tiny)
        assert main(["run", "fig2", "--scale", "smoke"]) == 0
        base_output = capsys.readouterr().out
        assert main(["run", "fig2", "--scale", "smoke",
                     "--backend", "numpy-strict"]) == 0
        strict_output = capsys.readouterr().out
        table = lambda text: text[text.index("fig2 (smoke scale)"):]
        assert table(strict_output) == table(base_output)

    def test_stationary_backend_flag(self, capsys):
        assert main(
            ["stationary", "--side", "200", "--nodes", "15", "--iterations", "20",
             "--seed", "3", "--backend", "numpy-strict"]
        ) == 0
        assert "rstationary" in capsys.readouterr().out


class TestExecutionFlags:
    def test_shard_steps_and_transport_flags_parse(self):
        arguments = build_parser().parse_args(
            ["run", "fig2", "--scale", "smoke", "--shard-steps", "4",
             "--transport", "shm"]
        )
        assert arguments.shard_steps == 4
        assert arguments.transport == "shm"

    def test_run_with_shard_steps_matches_default(self, capsys):
        baseline = main(["run", "fig2", "--scale", "smoke"])
        base_output = capsys.readouterr().out
        assert baseline == 0
        assert main(["run", "fig2", "--scale", "smoke", "--shard-steps", "7",
                     "--transport", "pickle"]) == 0
        sharded_output = capsys.readouterr().out
        # The rendered table (all measured numbers) must be identical.
        table = lambda text: text[text.index("fig2 (smoke scale)"):]
        assert table(sharded_output) == table(base_output)
