"""Tests for repro.topology.knn."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.graph.components import is_connected
from repro.topology.knn import knn_topology, recommended_neighbor_count


class TestKnnTopology:
    def test_each_node_reaches_k_neighbors(self, small_placement):
        k = 3
        assignment = knn_topology(small_placement, k)
        from repro.geometry.distance import pairwise_distances

        distances = pairwise_distances(small_placement)
        np.fill_diagonal(distances, np.inf)
        for node, radius in enumerate(assignment.ranges):
            reachable = int(np.sum(distances[node] <= radius + 1e-9))
            assert reachable >= k

    def test_range_is_exactly_kth_neighbor_distance(self, small_placement):
        from repro.geometry.distance import pairwise_distances

        k = 4
        assignment = knn_topology(small_placement, k)
        distances = pairwise_distances(small_placement)
        np.fill_diagonal(distances, np.inf)
        for node, radius in enumerate(assignment.ranges):
            expected = np.sort(distances[node])[k - 1]
            assert radius == pytest.approx(expected)

    def test_larger_k_larger_ranges(self, small_placement):
        small_k = knn_topology(small_placement, 2)
        large_k = knn_topology(small_placement, 6)
        assert all(
            large >= small - 1e-12
            for small, large in zip(small_k.ranges, large_k.ranges)
        )

    def test_recommended_k_connects_random_networks(self, rng):
        points = rng.uniform(0, 200, size=(60, 2))
        k = recommended_neighbor_count(60)
        assignment = knn_topology(points, k)
        assert is_connected(assignment.symmetric_graph())

    def test_invalid_k(self, small_placement):
        with pytest.raises(AnalysisError):
            knn_topology(small_placement, 0)
        with pytest.raises(AnalysisError):
            knn_topology(small_placement, small_placement.shape[0])

    def test_empty_placement(self):
        assignment = knn_topology(np.empty((0, 2)), 3)
        assert assignment.ranges == ()


class TestRecommendedNeighborCount:
    def test_grows_logarithmically(self):
        assert recommended_neighbor_count(1000) > recommended_neighbor_count(100)
        assert recommended_neighbor_count(100) > recommended_neighbor_count(10)

    def test_clamped(self):
        assert recommended_neighbor_count(1) == 0
        assert recommended_neighbor_count(2) == 1
        assert recommended_neighbor_count(5) <= 4
