"""Tests for repro.topology.range_assignment."""

import numpy as np
import pytest

from repro.connectivity.critical_range import critical_range
from repro.energy.model import EnergyModel
from repro.exceptions import AnalysisError
from repro.graph.components import is_connected
from repro.topology.range_assignment import (
    mst_range_assignment,
    uniform_range_assignment,
)


class TestMstRangeAssignment:
    def test_symmetric_graph_connected(self, small_placement):
        assignment = mst_range_assignment(small_placement)
        assert is_connected(assignment.symmetric_graph())

    def test_max_range_equals_critical_range(self, small_placement):
        assignment = mst_range_assignment(small_placement)
        assert assignment.max_range() == pytest.approx(critical_range(small_placement))

    def test_total_energy_below_uniform(self, small_placement):
        mst = mst_range_assignment(small_placement)
        uniform = uniform_range_assignment(
            small_placement, critical_range(small_placement)
        )
        assert mst.total_energy() <= uniform.total_energy() + 1e-9

    def test_every_range_non_negative(self, small_placement):
        assignment = mst_range_assignment(small_placement)
        assert all(r >= 0.0 for r in assignment.ranges)
        assert assignment.node_count == small_placement.shape[0]

    def test_two_nodes(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        assignment = mst_range_assignment(points)
        assert assignment.ranges == (5.0, 5.0)

    def test_single_node_and_empty(self):
        assert mst_range_assignment(np.array([[0.0, 0.0]])).ranges == (0.0,)
        assert mst_range_assignment(np.empty((0, 2))).ranges == ()


class TestUniformRangeAssignment:
    def test_all_equal(self, small_placement):
        assignment = uniform_range_assignment(small_placement, 12.5)
        assert set(assignment.ranges) == {12.5}

    def test_energy_model_applied(self, small_placement):
        assignment = uniform_range_assignment(small_placement, 2.0)
        model = EnergyModel(path_loss_exponent=4.0)
        expected = small_placement.shape[0] * 16.0
        assert assignment.total_energy(model) == pytest.approx(expected)

    def test_negative_range_rejected(self, small_placement):
        with pytest.raises(AnalysisError):
            uniform_range_assignment(small_placement, -1.0)

    def test_symmetric_graph_matches_builder(self, small_placement):
        from repro.graph.builder import build_communication_graph

        radius = 20.0
        assignment = uniform_range_assignment(small_placement, radius)
        assert set(assignment.symmetric_graph().edges()) == set(
            build_communication_graph(small_placement, radius).edges()
        )
