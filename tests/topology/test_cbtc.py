"""Tests for repro.topology.cbtc."""

import math

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.graph.components import is_connected
from repro.topology.cbtc import cone_based_topology


class TestConeBasedTopology:
    def test_preserves_connectivity_with_two_thirds_pi(self, rng):
        points = rng.uniform(0, 100, size=(40, 2))
        assignment = cone_based_topology(points, cone_angle=2 * math.pi / 3)
        assert is_connected(assignment.symmetric_graph())

    def test_ranges_not_above_max_distance(self, small_placement):
        from repro.geometry.distance import pairwise_distances

        assignment = cone_based_topology(small_placement)
        maximum = pairwise_distances(small_placement).max()
        assert all(r <= maximum + 1e-9 for r in assignment.ranges)

    def test_smaller_cone_angle_larger_ranges(self, small_placement):
        narrow = cone_based_topology(small_placement, cone_angle=math.pi / 2)
        wide = cone_based_topology(small_placement, cone_angle=2 * math.pi)
        assert sum(narrow.ranges) >= sum(wide.ranges) - 1e-9

    def test_full_circle_angle_needs_single_neighbor(self, small_placement):
        from repro.geometry.distance import nearest_neighbor_distances

        assignment = cone_based_topology(small_placement, cone_angle=2 * math.pi)
        nearest = nearest_neighbor_distances(small_placement)
        for radius, nn in zip(assignment.ranges, nearest):
            assert radius == pytest.approx(nn)

    def test_max_range_cap_respected(self, small_placement):
        cap = 15.0
        assignment = cone_based_topology(small_placement, max_range=cap)
        assert all(r <= cap + 1e-9 for r in assignment.ranges)

    def test_rejects_non_2d(self):
        with pytest.raises(AnalysisError):
            cone_based_topology(np.zeros((5, 3)))

    def test_invalid_parameters(self, small_placement):
        with pytest.raises(AnalysisError):
            cone_based_topology(small_placement, cone_angle=0.0)
        with pytest.raises(AnalysisError):
            cone_based_topology(small_placement, max_range=0.0)

    def test_small_inputs(self):
        assert cone_based_topology(np.empty((0, 2))).ranges == ()
        assert cone_based_topology(np.array([[1.0, 1.0]])).ranges == (0.0,)
