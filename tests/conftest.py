"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.region import Region
from repro.placement.strategies import uniform_placement


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def square_region() -> Region:
    """A 2-D region of side 100."""
    return Region.square(100.0)


@pytest.fixture
def line_region() -> Region:
    """A 1-D region of length 1000."""
    return Region.line(1000.0)


@pytest.fixture
def small_placement(square_region, rng) -> np.ndarray:
    """A reproducible uniform placement of 30 nodes in the square region."""
    return uniform_placement(30, square_region, rng)
