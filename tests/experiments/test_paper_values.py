"""Tests for repro.experiments.paper_values."""

import pytest

from repro.experiments.paper_values import (
    FIGURE2_RATIOS,
    FIGURE4_COMPONENT_FRACTIONS,
    FIGURE6_LIMITS,
    FIGURE7_THRESHOLD_INTERVAL,
    TEXT_RANGE_REDUCTIONS,
    compare_with_paper,
    paper_row_for_figure,
)


class TestPaperConstants:
    def test_figure2_ratios_ordered_at_every_size(self):
        for side in (256.0, 1024.0, 4096.0, 16384.0):
            row = paper_row_for_figure("fig2", side)
            assert (
                row["r0/rstationary"]
                < row["r10/rstationary"]
                < row["r90/rstationary"]
                < row["r100/rstationary"]
            )

    def test_figure2_ratios_increase_with_size(self):
        for series, values in FIGURE2_RATIOS.items():
            ordered = [values[side] for side in sorted(values)]
            assert ordered == sorted(ordered), series

    def test_figure3_close_to_figure2(self):
        for side in (256.0, 16384.0):
            waypoint = paper_row_for_figure("fig2", side)
            drunkard = paper_row_for_figure("fig3", side)
            for series in waypoint:
                assert drunkard[series] == pytest.approx(waypoint[series], rel=0.15)

    def test_component_fractions_ordered(self):
        assert (
            FIGURE4_COMPONENT_FRACTIONS["lcc_fraction@r0"]
            < FIGURE4_COMPONENT_FRACTIONS["lcc_fraction@r10"]
            < FIGURE4_COMPONENT_FRACTIONS["lcc_fraction@r90"]
        )

    def test_figure6_limits_ordered(self):
        assert (
            FIGURE6_LIMITS["rl50/rstationary"]
            < FIGURE6_LIMITS["rl75/rstationary"]
            < FIGURE6_LIMITS["rl90/rstationary"]
        )

    def test_text_reductions_consistent_with_figure2(self):
        # r90/r100 and r10/r100 quoted in the text roughly equal the ratio of
        # the Figure 2 curves at large l.
        row = paper_row_for_figure("fig2", 16384.0)
        assert TEXT_RANGE_REDUCTIONS["r90/r100"] == pytest.approx(
            row["r90/rstationary"] / row["r100/rstationary"], abs=0.1
        )
        assert TEXT_RANGE_REDUCTIONS["r10/r100"] == pytest.approx(
            row["r10/rstationary"] / row["r100/rstationary"], abs=0.1
        )

    def test_threshold_interval(self):
        low, high = FIGURE7_THRESHOLD_INTERVAL
        assert 0.0 < low < high < 1.0

    def test_unknown_figure_or_side(self):
        with pytest.raises(KeyError):
            paper_row_for_figure("fig12", 256.0)
        with pytest.raises(KeyError):
            paper_row_for_figure("fig2", 512.0)


class TestCompareWithPaper:
    def test_renders_table_with_match_column(self):
        measured = {
            "r100/rstationary": 0.95,
            "r90/rstationary": 0.80,
            "r10/rstationary": 0.60,
            "r0/rstationary": 0.50,
        }
        report = compare_with_paper("fig2", 16384.0, measured)
        assert "paper" in report and "measured" in report and "match" in report

    def test_loose_tolerance_accepts_reproduction_levels(self):
        # The default-scale reproduction values for l = 16K (EXPERIMENTS.md)
        # pass at the documented 50% tolerance.
        measured = {
            "r100/rstationary": 0.96,
            "r90/rstationary": 0.83,
            "r10/rstationary": 0.65,
            "r0/rstationary": 0.52,
        }
        report = compare_with_paper("fig2", 16384.0, measured)
        assert "off" not in report

    def test_strict_tolerance_flags_deviations(self):
        measured = {"r100/rstationary": 3.0}
        report = compare_with_paper("fig2", 16384.0, measured, tolerance=0.1)
        assert "off" in report
