"""Smoke tests running every registered experiment at a tiny scale.

These tests validate the experiment plumbing (configuration, simulation,
threshold extraction, reporting) end to end; the quantitative checks of the
paper's claims live in tests/integration/ and in the benchmarks.
"""

import pytest

from repro.experiments.figures import measure_system_size, paper_node_count
from repro.experiments.registry import ExperimentScale, get_experiment

#: A scale even smaller than the "smoke" preset, for unit-test speed.
TINY = ExperimentScale(
    name="smoke",
    sides=(256.0,),
    steps=10,
    iterations=2,
    stationary_iterations=20,
    parameter_points=2,
    seed=7,
)


class TestPaperNodeCount:
    def test_sqrt_scaling(self):
        assert paper_node_count(256.0) == 16
        assert paper_node_count(1024.0) == 32
        assert paper_node_count(4096.0) == 64
        assert paper_node_count(16384.0) == 128

    def test_minimum_of_two(self):
        assert paper_node_count(1.0) == 2


class TestMeasureSystemSize:
    def test_row_contains_all_series(self):
        row = measure_system_size(256.0, "waypoint", TINY)
        for key in (
            "rstationary", "r100", "r90", "r10", "r0", "rl90", "rl75", "rl50",
            "r100/rstationary", "lcc_fraction@r90",
        ):
            assert key in row

    def test_threshold_ordering(self):
        row = measure_system_size(256.0, "drunkard", TINY)
        assert row["r0"] <= row["r10"] <= row["r90"] <= row["r100"]
        assert row["rl50"] <= row["rl75"] <= row["rl90"]

    def test_lcc_fraction_ordering(self):
        row = measure_system_size(256.0, "waypoint", TINY)
        assert row["lcc_fraction@r0"] <= row["lcc_fraction@r90"] + 1e-9
        assert 0.0 < row["lcc_fraction@r0"] <= 1.0

    def test_unsupported_model(self):
        with pytest.raises(ValueError):
            measure_system_size(256.0, "gauss-markov", TINY)


@pytest.mark.parametrize(
    "identifier",
    ["fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
     "stationary-critical-range", "energy-tradeoff", "theorem5-1d",
     "occupancy-domains"],
)
def test_experiment_runs_at_tiny_scale(identifier):
    experiment = get_experiment(identifier)
    sweep = experiment.run(TINY)
    assert sweep.rows, f"{identifier} produced no rows"
    for row in sweep.rows:
        for key, value in row.items():
            assert value == value, f"{identifier} produced NaN for {key}"  # not NaN


def test_figure7_ratio_decreases_with_pstationary():
    """The qualitative Figure 7 claim: more stationary nodes -> smaller r100."""
    experiment = get_experiment("fig7")
    scale = ExperimentScale(
        name="smoke",
        sides=(256.0,),
        steps=20,
        iterations=2,
        stationary_iterations=40,
        parameter_points=3,
        seed=11,
    )
    sweep = experiment.run(scale)
    ratios = sweep.series("r100/rstationary")
    # pstationary = 1 is the stationary case; its r100 cannot exceed the
    # all-mobile r100.
    assert ratios[-1] <= ratios[0] + 1e-9


class TestSweepWorkerEquivalence:
    """Sweep-level process fan-out must not change any experiment result."""

    SCALE = ExperimentScale(
        name="smoke",
        sides=(256.0, 324.0),
        steps=8,
        iterations=2,
        stationary_iterations=15,
        parameter_points=2,
        seed=13,
    )

    @pytest.mark.parametrize("identifier", ["fig3", "fig7"])
    def test_parallel_sweep_equals_serial(self, identifier):
        experiment = get_experiment(identifier)
        serial = experiment.run(self.SCALE)
        parallel = experiment.run(self.SCALE.with_sweep_workers(2))
        assert serial.rows == parallel.rows

    def test_worker_budget_split_equals_serial(self):
        experiment = get_experiment("fig2")
        serial = experiment.run(self.SCALE)
        budgeted = self.SCALE.with_worker_budget(4)
        assert budgeted.sweep_workers == 2 and budgeted.workers == 2
        assert experiment.run(budgeted).rows == serial.rows
