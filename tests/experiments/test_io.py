"""Tests for repro.experiments.io."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.io import load_sweep, save_sweep
from repro.simulation.sweep import SweepResult
from repro.store.codecs import SCHEMA_VERSION


@pytest.fixture
def sweep():
    return SweepResult(
        parameter_name="l",
        rows=[
            {"l": 256.0, "r100": 1.2, "r90": 0.8},
            {"l": 1024.0, "r100": 1.25, "r90": 0.82},
        ],
    )


class TestJsonRoundTrip:
    def test_round_trip(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "result.json", metadata={"scale": "smoke"})
        loaded = load_sweep(path)
        assert loaded.parameter_name == "l"
        assert loaded.rows == sweep.rows

    def test_creates_parent_directories(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "nested" / "dir" / "result.json")
        assert path.exists()

    def test_payload_carries_schema_version(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "result.json")
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_versionless_payload_loads_as_version_zero(self, sweep, tmp_path):
        """Payloads written before schema versioning still load."""
        path = tmp_path / "legacy.json"
        path.write_text(
            json.dumps(
                {
                    "parameter_name": "l",
                    "rows": [{"l": 256.0, "r100": 1.2}],
                    "metadata": {},
                }
            )
        )
        loaded = load_sweep(path)
        assert loaded.parameter_name == "l"
        assert loaded.rows == [{"l": 256.0, "r100": 1.2}]

    def test_future_schema_version_rejected(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "result.json")
        payload = json.loads(path.read_text())
        payload["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            load_sweep(path)

    def test_empty_sweep_round_trip(self, tmp_path):
        empty = SweepResult(parameter_name="x", rows=[])
        loaded = load_sweep(save_sweep(empty, tmp_path / "empty.json"))
        assert loaded.parameter_name == "x"
        assert loaded.rows == []


class TestCsvRoundTrip:
    def test_round_trip(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "result.csv")
        loaded = load_sweep(path)
        assert loaded.parameter_name == "l"
        assert loaded.series("r100") == pytest.approx([1.2, 1.25])

    def test_empty_sweep_round_trip(self, tmp_path):
        """Regression: a row-less sweep used to save as an empty file that
        load_sweep could not reconstruct; now the header round-trips."""
        empty = SweepResult(parameter_name="x", rows=[])
        path = save_sweep(empty, tmp_path / "empty.csv")
        assert path.read_text().strip() == "x"
        loaded = load_sweep(path)
        assert loaded.parameter_name == "x"
        assert loaded.rows == []
        assert loaded.series_names() == []


class TestErrors:
    def test_unsupported_format(self, sweep, tmp_path):
        with pytest.raises(ConfigurationError):
            save_sweep(sweep, tmp_path / "result.xlsx")
        with pytest.raises(ConfigurationError):
            load_sweep(tmp_path / "result.parquet")
