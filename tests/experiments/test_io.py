"""Tests for repro.experiments.io."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.io import load_sweep, save_sweep
from repro.simulation.sweep import SweepResult


@pytest.fixture
def sweep():
    return SweepResult(
        parameter_name="l",
        rows=[
            {"l": 256.0, "r100": 1.2, "r90": 0.8},
            {"l": 1024.0, "r100": 1.25, "r90": 0.82},
        ],
    )


class TestJsonRoundTrip:
    def test_round_trip(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "result.json", metadata={"scale": "smoke"})
        loaded = load_sweep(path)
        assert loaded.parameter_name == "l"
        assert loaded.rows == sweep.rows

    def test_creates_parent_directories(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "nested" / "dir" / "result.json")
        assert path.exists()


class TestCsvRoundTrip:
    def test_round_trip(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "result.csv")
        loaded = load_sweep(path)
        assert loaded.parameter_name == "l"
        assert loaded.series("r100") == pytest.approx([1.2, 1.25])

    def test_empty_sweep(self, tmp_path):
        empty = SweepResult(parameter_name="x", rows=[])
        path = save_sweep(empty, tmp_path / "empty.csv")
        assert path.read_text() == ""


class TestErrors:
    def test_unsupported_format(self, sweep, tmp_path):
        with pytest.raises(ConfigurationError):
            save_sweep(sweep, tmp_path / "result.xlsx")
        with pytest.raises(ConfigurationError):
            load_sweep(tmp_path / "result.parquet")
