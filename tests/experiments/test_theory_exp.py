"""Tests for the theory experiments' per-value random streams (PR 4).

``theorem5-1d`` and ``occupancy-domains`` used to walk one sequential
``default_rng`` across their parameter values, which coupled every value
to all values before it: the sweeps could only cache whole and could not
be decomposed, value-checkpointed or scheduled.  Each value now draws
from its own :func:`repro.stats.rng.value_rng` child stream.  That is a
*deliberate* numbers shift relative to the shared-stream implementation;
the new streams are pinned here so any future accidental change is
caught.
"""

import pickle

import pytest

from repro.experiments.registry import ExperimentScale, get_experiment
from repro.experiments.theory_exp import (
    OccupancyDomainMeasure,
    Theorem5Measure,
    occupancy_cell_count,
    occupancy_payload,
)
from repro.stats.rng import value_rng

TINY = ExperimentScale(
    name="smoke",
    sides=(64.0, 256.0),
    steps=1,
    iterations=1,
    stationary_iterations=25,
    parameter_points=2,
    seed=7,
)


class TestPerValueStreams:
    def test_measures_are_order_invariant(self):
        """The row at one value no longer depends on the values measured
        before it — the property value checkpointing requires."""
        measure = Theorem5Measure(scale=TINY)
        forward = [measure(side) for side in (64.0, 256.0)]
        backward = [measure(side) for side in (256.0, 64.0)]
        assert forward[0] == backward[1]
        assert forward[1] == backward[0]

        occupancy = OccupancyDomainMeasure(scale=TINY)
        assert occupancy(2.0) == occupancy(2.0)
        first = occupancy(0.0)
        occupancy(4.0)
        assert occupancy(0.0) == first

    def test_measures_are_picklable(self):
        for measure, value in (
            (Theorem5Measure(scale=TINY), 64.0),
            (OccupancyDomainMeasure(scale=TINY), 1.0),
        ):
            clone = pickle.loads(pickle.dumps(measure))
            assert clone(value) == measure(value)

    def test_experiments_are_now_value_checkpointable(self):
        assert get_experiment("theorem5-1d").supports_checkpoint
        assert get_experiment("occupancy-domains").supports_checkpoint
        assert get_experiment("theorem5-1d").supports_scheduling
        assert get_experiment("occupancy-domains").supports_scheduling

    @pytest.mark.parametrize("identifier", ["theorem5-1d", "occupancy-domains"])
    def test_decomposed_sweep_equals_run(self, identifier):
        """The registered (parameter_name, sweep_values, sweep_measure)
        triple reassembles exactly what run() produces — the contract the
        campaign scheduler relies on."""
        experiment = get_experiment(identifier)
        sweep = experiment.run(TINY)
        measure = experiment.sweep_measure(TINY)
        values = list(experiment.sweep_values(TINY))
        assert sweep.parameter_name == experiment.parameter_name
        assert [row[experiment.parameter_name] for row in sweep.rows] == [
            float(value) for value in values
        ]
        for row, value in zip(sweep.rows, values):
            rebuilt = {experiment.parameter_name: float(value)}
            rebuilt.update(measure(value))
            assert row == rebuilt

    def test_value_rng_is_label_and_value_sensitive(self):
        base = value_rng(7, 64.0, label="a").random(4).tolist()
        assert value_rng(7, 64.0, label="a").random(4).tolist() == base
        assert value_rng(7, 64.0, label="b").random(4).tolist() != base
        assert value_rng(7, 64.5, label="a").random(4).tolist() != base
        assert value_rng(8, 64.0, label="a").random(4).tolist() != base


class TestPinnedStreams:
    """Regression pins for the new per-value streams.

    These constants were produced by the first per-value-stream
    implementation; they intentionally differ from the pre-PR-4
    shared-stream numbers.
    """

    def test_theorem5_pinned(self):
        sweep = get_experiment("theorem5-1d").run(TINY)
        assert sweep.rows[0]["empirical_r99"] == pytest.approx(
            19.97105921539717, rel=1e-12
        )
        assert sweep.rows[1]["empirical_r99"] == pytest.approx(
            25.37235152998548, rel=1e-12
        )
        assert sweep.rows[1]["empirical_rn"] == pytest.approx(
            1623.8304979190707, rel=1e-12
        )

    def test_occupancy_pinned(self):
        sweep = get_experiment("occupancy-domains").run(TINY)
        assert sweep.rows[0]["simulated_mean"] == pytest.approx(56.41, rel=1e-12)
        assert sweep.rows[1]["simulated_mean"] == pytest.approx(44.74, rel=1e-12)
        assert sweep.rows[2]["simulated_variance"] == pytest.approx(
            6.331557788944724, rel=1e-12
        )


class TestCacheInvalidation:
    @pytest.mark.parametrize("identifier", ["theorem5-1d", "occupancy-domains"])
    def test_payloads_tag_the_stream_scheme(self, identifier):
        """The per-value streams shifted the simulated numbers, so the
        payloads carry an rng tag: stores written by the old shared-stream
        implementation (whose keys had no such tag) can never be served
        for the new computation (regression: theorem5-1d originally kept
        its default payload and would have returned stale cached rows)."""
        experiment = get_experiment(identifier)
        assert experiment.cache_payload is not None
        payload = experiment.cache_payload(TINY)
        assert payload["rng"] == "per-value-streams"


class TestOccupancyPayload:
    def test_cell_count_in_payload(self):
        """The cell grid is derived from scale.name, which scale_payload
        drops — the payload must carry it explicitly or smoke- and
        default-named scales with equal fields would collide."""
        smoke = TINY
        renamed = ExperimentScale(
            name="custom",
            sides=TINY.sides,
            steps=TINY.steps,
            iterations=TINY.iterations,
            stationary_iterations=TINY.stationary_iterations,
            parameter_points=TINY.parameter_points,
            seed=TINY.seed,
        )
        assert occupancy_cell_count(smoke) == 64
        assert occupancy_cell_count(renamed) == 256
        assert occupancy_payload(smoke) != occupancy_payload(renamed)
