"""Tests for repro.experiments.report."""

import pytest

from repro.experiments.report import (
    ascii_chart,
    compare_to_paper,
    format_table,
    render_sweep,
)
from repro.simulation.sweep import SweepResult


class TestFormatTable:
    def test_contains_headers_and_values(self):
        rows = [{"l": 256.0, "ratio": 1.21}, {"l": 1024.0, "ratio": 1.18}]
        table = format_table(rows)
        assert "l" in table and "ratio" in table
        assert "256" in table and "1.21" in table

    def test_column_selection(self):
        rows = [{"a": 1.0, "b": 2.0}]
        table = format_table(rows, columns=["b"])
        assert "b" in table
        assert "a" not in table.splitlines()[0]

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_missing_values_rendered_blank(self):
        rows = [{"a": 1.0}, {"a": 2.0, "b": 3.0}]
        table = format_table(rows, columns=["a", "b"])
        assert table.count("\n") == 3  # header, separator, two rows

    def test_non_float_values(self):
        table = format_table([{"name": "fig2", "value": 1.5}])
        assert "fig2" in table


class TestRenderSweep:
    def test_title_rendered(self):
        sweep = SweepResult(parameter_name="l", rows=[{"l": 1.0, "y": 2.0}])
        rendered = render_sweep(sweep, title="Figure 2")
        assert rendered.startswith("Figure 2")
        assert "=" in rendered

    def test_without_title(self):
        sweep = SweepResult(parameter_name="l", rows=[{"l": 1.0, "y": 2.0}])
        assert "l" in render_sweep(sweep)


class TestAsciiChart:
    def test_bar_lengths_proportional(self):
        chart = ascii_chart([1.0, 2.0], labels=["a", "b"], width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_zero_values(self):
        chart = ascii_chart([0.0, 0.0])
        assert "#" not in chart

    def test_empty(self):
        assert ascii_chart([]) == "(no data)"

    def test_label_mismatch(self):
        with pytest.raises(ValueError):
            ascii_chart([1.0], labels=["a", "b"])

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ascii_chart([1.0], width=0)


class TestCompareToPaper:
    def test_flags_large_deviation(self):
        report = compare_to_paper({"r100": 2.0}, {"r100": 1.2}, tolerance=0.3)
        assert "off" in report

    def test_accepts_close_values(self):
        report = compare_to_paper({"r100": 1.25}, {"r100": 1.2}, tolerance=0.3)
        assert "ok" in report

    def test_missing_measurement(self):
        report = compare_to_paper({}, {"r100": 1.2})
        assert "nan" in report or "off" in report
