"""Tests for repro.experiments.registry."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.registry import (
    Experiment,
    ExperimentScale,
    get_experiment,
    list_experiments,
    register_experiment,
    scale_by_name,
    SCALES,
)
from repro.simulation.sweep import SweepResult


class TestExperimentScale:
    def test_presets_exist(self):
        assert set(SCALES) == {"smoke", "default", "paper"}

    def test_scale_by_name(self):
        assert scale_by_name("smoke").name == "smoke"
        with pytest.raises(ConfigurationError):
            scale_by_name("gigantic")

    def test_paper_scale_matches_paper_parameters(self):
        paper = scale_by_name("paper")
        assert paper.steps == 10000
        assert paper.iterations == 50
        assert list(paper.sides) == [256.0, 1024.0, 4096.0, 16384.0]

    def test_smoke_is_smaller_than_default(self):
        smoke = scale_by_name("smoke")
        default = scale_by_name("default")
        assert smoke.steps < default.steps
        assert smoke.iterations <= default.iterations

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentScale(
                name="bad", sides=(10.0,), steps=0, iterations=1,
                stationary_iterations=1, parameter_points=2,
            )
        with pytest.raises(ConfigurationError):
            ExperimentScale(
                name="bad", sides=(), steps=1, iterations=1,
                stationary_iterations=1, parameter_points=2,
            )


class TestRegistry:
    def test_all_figures_registered(self):
        identifiers = {experiment.identifier for experiment in list_experiments()}
        for figure in ["fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"]:
            assert figure in identifiers
        assert "theorem5-1d" in identifiers
        assert "occupancy-domains" in identifiers
        assert "stationary-critical-range" in identifiers
        assert "energy-tradeoff" in identifiers

    def test_get_experiment(self):
        experiment = get_experiment("fig2")
        assert experiment.paper_reference == "Figure 2"

    def test_get_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_register_custom_experiment(self):
        def run(scale):
            return SweepResult(parameter_name="x", rows=[{"x": 1.0}])

        custom = Experiment(
            identifier="custom-test-exp",
            title="Custom",
            description="test only",
            paper_reference="none",
            run=run,
        )
        register_experiment(custom)
        assert get_experiment("custom-test-exp").title == "Custom"

    def test_list_is_sorted(self):
        identifiers = [experiment.identifier for experiment in list_experiments()]
        assert identifiers == sorted(identifiers)
