"""Tests for the extension mobility models (random direction, Gauss-Markov)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mobility.gauss_markov import GaussMarkovModel
from repro.mobility.random_direction import RandomDirectionModel


class TestRandomDirection:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            RandomDirectionModel(speed=0.0)
        with pytest.raises(ConfigurationError):
            RandomDirectionModel(speed=1.0, travel_steps=0)
        with pytest.raises(ConfigurationError):
            RandomDirectionModel(speed=1.0, tpause=-2)

    def test_stays_in_region(self, square_region):
        rng = np.random.default_rng(21)
        model = RandomDirectionModel(speed=7.0, travel_steps=20, tpause=1)
        model.initialize(square_region.sample_uniform(20, rng), square_region, rng)
        for _ in range(100):
            assert square_region.contains(model.step(rng))

    def test_constant_speed_while_travelling(self, square_region):
        rng = np.random.default_rng(22)
        speed = 2.5
        model = RandomDirectionModel(speed=speed, travel_steps=1000, tpause=0)
        previous = model.initialize(
            square_region.sample_uniform(10, rng), square_region, rng
        )
        for _ in range(20):
            current = model.step(rng)
            jumps = np.linalg.norm(current - previous, axis=1)
            # Reflection can shorten the apparent displacement but never
            # lengthen it beyond the speed.
            assert np.all(jumps <= speed + 1e-9)
            previous = current

    def test_nodes_move(self, square_region):
        rng = np.random.default_rng(23)
        model = RandomDirectionModel(speed=5.0, travel_steps=50)
        initial = model.initialize(
            square_region.sample_uniform(10, rng), square_region, rng
        )
        final = model.run(30, rng)
        assert np.all(np.linalg.norm(final - initial, axis=1) > 0.0)

    def test_describe(self):
        assert "RandomDirectionModel" in RandomDirectionModel().describe()

    def test_boundary_reflection_is_billiard_not_wall_pinning(self):
        """Pins the leg dynamics: a leg crossing a wall folds through it
        like a billiard ball.  (The pre-closed-form implementation applied
        reflection to each incremental step without updating the origin,
        which trapped nodes oscillating at the wall for the rest of the
        leg — a deliberate behaviour change, not a regression.)"""
        from repro.geometry.region import Region

        region = Region.square(10.0)
        rng = np.random.default_rng(0)
        model = RandomDirectionModel(speed=4.0, travel_steps=50, tpause=0)
        model.initialize(np.array([[9.0, 5.0]]), region, rng)
        # Force a deterministic leg: heading straight at the x = 10 wall.
        model._directions[0] = (1.0, 0.0)
        model._leg_origins[0] = (9.0, 5.0)
        model._leg_steps[0] = 0
        model._leg_totals[0] = 1000
        model._pause_remaining[0] = 0
        xs = [model.step(rng)[0, 0] for _ in range(5)]
        # fold(9 + 4k) over [0, 10]: traverses the region, no oscillation.
        assert xs == [7.0, 3.0, 1.0, 5.0, 9.0]


class TestGaussMarkov:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            GaussMarkovModel(mean_speed=-1.0)
        with pytest.raises(ConfigurationError):
            GaussMarkovModel(alpha=1.2)
        with pytest.raises(ConfigurationError):
            GaussMarkovModel(noise_std=-0.5)

    def test_stays_in_region(self, square_region):
        rng = np.random.default_rng(31)
        model = GaussMarkovModel(mean_speed=3.0, alpha=0.7, noise_std=1.0)
        model.initialize(square_region.sample_uniform(20, rng), square_region, rng)
        for _ in range(100):
            assert square_region.contains(model.step(rng))

    def test_alpha_one_gives_straight_lines(self, square_region):
        rng = np.random.default_rng(32)
        model = GaussMarkovModel(mean_speed=1.0, alpha=1.0, noise_std=5.0)
        previous = model.initialize(
            square_region.sample_uniform(5, rng), square_region, rng
        )
        first_step = model.step(rng) - previous
        second_step = model.step(rng) - (previous + first_step)
        # Away from walls, consecutive displacements are identical when alpha=1.
        interior = np.all(
            (previous > 10) & (previous < square_region.side - 10), axis=1
        )
        if interior.any():
            assert np.allclose(first_step[interior], second_step[interior], atol=1e-6)

    def test_nodes_move(self, square_region):
        rng = np.random.default_rng(33)
        model = GaussMarkovModel(mean_speed=2.0, alpha=0.5, noise_std=0.5)
        initial = model.initialize(
            square_region.sample_uniform(10, rng), square_region, rng
        )
        final = model.run(40, rng)
        assert np.linalg.norm(final - initial, axis=1).mean() > 0.0

    def test_describe(self):
        assert "GaussMarkovModel" in GaussMarkovModel().describe()


class TestModelByName:
    def test_all_registered_names(self):
        from repro.mobility import model_by_name

        for name in ["stationary", "waypoint", "drunkard", "random-direction", "gauss-markov"]:
            model = model_by_name(name) if name != "waypoint" else model_by_name(
                name, vmin=0.1, vmax=1.0
            )
            assert model is not None

    def test_unknown_name(self):
        from repro.mobility import model_by_name

        with pytest.raises(ConfigurationError):
            model_by_name("levy-flight")

    def test_parameters_forwarded(self):
        from repro.mobility import model_by_name

        model = model_by_name("drunkard", step_radius=9.0, ppause=0.4)
        assert model.step_radius == 9.0
        assert model.ppause == 0.4
