"""Tests for repro.mobility.base and the stationary model."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.geometry.region import Region
from repro.mobility.stationary import StationaryModel
from repro.mobility.waypoint import RandomWaypointModel


class TestInitialization:
    def test_requires_initialize_before_step(self):
        model = StationaryModel()
        with pytest.raises(SimulationError):
            model.step()
        with pytest.raises(SimulationError):
            _ = model.state

    def test_initialize_returns_copy(self, square_region, rng):
        model = StationaryModel()
        initial = square_region.sample_uniform(10, rng)
        returned = model.initialize(initial, square_region, rng)
        returned[:] = -1.0
        assert square_region.contains(model.state.positions)

    def test_rejects_positions_outside_region(self, square_region, rng):
        model = StationaryModel()
        bad = np.array([[150.0, 10.0]])
        with pytest.raises(ConfigurationError):
            model.initialize(bad, square_region, rng)

    def test_rejects_dimension_mismatch(self, square_region, rng):
        model = StationaryModel()
        with pytest.raises(ConfigurationError):
            model.initialize(np.zeros((3, 3)), square_region, rng)

    def test_is_initialized_flag(self, square_region, rng):
        model = StationaryModel()
        assert not model.is_initialized
        model.initialize(square_region.sample_uniform(5, rng), square_region, rng)
        assert model.is_initialized

    def test_invalid_pstationary(self):
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(pstationary=1.5)
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(pstationary=-0.1)


class TestStationaryModel:
    def test_positions_never_change(self, square_region, rng):
        model = StationaryModel()
        initial = model.initialize(square_region.sample_uniform(12, rng), square_region, rng)
        for _ in range(5):
            positions = model.step(rng)
            assert np.allclose(positions, initial)

    def test_step_index_advances(self, square_region, rng):
        model = StationaryModel()
        model.initialize(square_region.sample_uniform(4, rng), square_region, rng)
        model.step(rng)
        model.step(rng)
        assert model.state.step_index == 2

    def test_run_helper(self, square_region, rng):
        model = StationaryModel()
        initial = model.initialize(square_region.sample_uniform(4, rng), square_region, rng)
        final = model.run(10, rng)
        assert np.allclose(final, initial)

    def test_run_negative_steps_raises(self, square_region, rng):
        model = StationaryModel()
        model.initialize(square_region.sample_uniform(4, rng), square_region, rng)
        with pytest.raises(ConfigurationError):
            model.run(-1, rng)

    def test_describe(self):
        assert "StationaryModel" in StationaryModel().describe()


class TestPstationaryMechanism:
    def test_all_stationary_when_probability_one(self, square_region, rng):
        model = RandomWaypointModel(vmin=1.0, vmax=5.0, pstationary=1.0)
        initial = model.initialize(
            square_region.sample_uniform(15, rng), square_region, rng
        )
        for _ in range(10):
            positions = model.step(rng)
        assert np.allclose(positions, initial)

    def test_none_stationary_when_probability_zero(self, square_region, rng):
        model = RandomWaypointModel(vmin=1.0, vmax=5.0, pstationary=0.0)
        model.initialize(square_region.sample_uniform(15, rng), square_region, rng)
        assert not model.state.stationary_mask.any()

    def test_stationary_nodes_pinned(self, square_region):
        rng = np.random.default_rng(5)
        model = RandomWaypointModel(vmin=1.0, vmax=5.0, pstationary=0.5)
        initial = model.initialize(
            square_region.sample_uniform(40, rng), square_region, rng
        )
        mask = model.state.stationary_mask.copy()
        assert mask.any() and (~mask).any()
        for _ in range(20):
            positions = model.step(rng)
        assert np.allclose(positions[mask], initial[mask])
        # At least one mobile node must have moved after 20 steps.
        assert not np.allclose(positions[~mask], initial[~mask])
