"""Tests for repro.mobility.waypoint."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.geometry.region import Region
from repro.mobility.waypoint import RandomWaypointModel


class TestConstruction:
    def test_invalid_speeds(self):
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(vmin=0.0, vmax=1.0)
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(vmin=2.0, vmax=1.0)

    def test_invalid_pause(self):
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(vmin=0.1, vmax=1.0, tpause=-1)

    def test_paper_defaults(self):
        model = RandomWaypointModel.paper_defaults(side=4096.0)
        assert model.vmin == pytest.approx(0.1)
        assert model.vmax == pytest.approx(40.96)
        assert model.tpause == 2000
        assert model.pstationary == 0.0

    def test_describe_mentions_parameters(self):
        model = RandomWaypointModel(vmin=0.5, vmax=2.0, tpause=10)
        description = model.describe()
        assert "0.5" in description and "2.0" in description


class TestMovement:
    def test_positions_stay_in_region(self, square_region):
        rng = np.random.default_rng(1)
        model = RandomWaypointModel(vmin=1.0, vmax=20.0, tpause=0)
        model.initialize(square_region.sample_uniform(25, rng), square_region, rng)
        for _ in range(100):
            positions = model.step(rng)
            assert square_region.contains(positions)

    def test_step_length_bounded_by_vmax(self, square_region):
        rng = np.random.default_rng(2)
        vmax = 3.0
        model = RandomWaypointModel(vmin=0.5, vmax=vmax, tpause=0)
        previous = model.initialize(
            square_region.sample_uniform(20, rng), square_region, rng
        )
        for _ in range(50):
            current = model.step(rng)
            jumps = np.linalg.norm(current - previous, axis=1)
            assert np.all(jumps <= vmax + 1e-9)
            previous = current

    def test_nodes_eventually_move(self, square_region):
        rng = np.random.default_rng(3)
        model = RandomWaypointModel(vmin=1.0, vmax=5.0, tpause=0)
        initial = model.initialize(
            square_region.sample_uniform(10, rng), square_region, rng
        )
        final = model.run(30, rng)
        displacement = np.linalg.norm(final - initial, axis=1)
        assert np.all(displacement > 0.0)

    def test_pause_freezes_node_after_arrival(self):
        region = Region.square(10.0)
        rng = np.random.default_rng(4)
        # Very high speed: a node arrives at its destination in one step and
        # then must pause for tpause steps.
        model = RandomWaypointModel(vmin=100.0, vmax=100.0, tpause=5)
        model.initialize(region.sample_uniform(5, rng), region, rng)
        after_arrival = model.step(rng)
        for _ in range(5):
            paused = model.step(rng)
            assert np.allclose(paused, after_arrival)
        moved = model.step(rng)
        assert not np.allclose(moved, after_arrival)

    def test_zero_pause_keeps_moving(self, square_region):
        rng = np.random.default_rng(5)
        model = RandomWaypointModel(vmin=50.0, vmax=50.0, tpause=0)
        previous = model.initialize(
            square_region.sample_uniform(8, rng), square_region, rng
        )
        stalls = 0
        for _ in range(20):
            current = model.step(rng)
            if np.allclose(current, previous):
                stalls += 1
            previous = current
        assert stalls == 0

    def test_reproducible_with_same_seed(self, square_region):
        def run(seed):
            rng = np.random.default_rng(seed)
            model = RandomWaypointModel(vmin=0.5, vmax=5.0, tpause=2)
            model.initialize(square_region.sample_uniform(10, rng), square_region, rng)
            return model.run(25, rng)

        assert np.allclose(run(7), run(7))
        assert not np.allclose(run(7), run(8))

    def test_empty_network(self, square_region, rng):
        model = RandomWaypointModel(vmin=0.5, vmax=5.0)
        model.initialize(np.empty((0, 2)), square_region, rng)
        assert model.step(rng).shape == (0, 2)
