"""Property tests: vectorized ``trajectory()`` is bit-identical to stepping.

The contract of :meth:`repro.mobility.base.MobilityModel.trajectory` is
that a batched call consumes *exactly* the same random draws as
``steps - 1`` sequential :meth:`step` calls and produces exactly the same
frames — so the engine's batched execution can never change a simulation
result.  The waypoint and drunkard overrides are checked here frame by
frame, bit by bit, including:

* ``pstationary > 0`` (pinned nodes must not desynchronise the stream);
* boundary interaction (drunkard step radius larger than the region,
  waypoint nodes cruising to corner destinations);
* the random stream *after* the batch (further draws must match);
* the model state (positions, step index) left behind;
* resuming with either API mid-run (trajectory → step → trajectory).
"""

import numpy as np
import pytest

from repro.geometry.region import Region
from repro.mobility.drunkard import DrunkardModel
from repro.mobility.gauss_markov import GaussMarkovModel
from repro.mobility.group import ReferencePointGroupModel
from repro.mobility.random_direction import RandomDirectionModel
from repro.mobility.stationary import StationaryModel
from repro.mobility.waypoint import RandomWaypointModel

MODEL_BUILDERS = {
    "waypoint-fast": lambda side: RandomWaypointModel(
        vmin=0.02 * side, vmax=0.2 * side, tpause=2
    ),
    "waypoint-paused": lambda side: RandomWaypointModel(
        vmin=0.1, vmax=0.05 * side, tpause=7, pstationary=0.4
    ),
    "waypoint-no-pause": lambda side: RandomWaypointModel(
        vmin=0.5, vmax=0.01 * side + 0.5, tpause=0
    ),
    "drunkard": lambda side: DrunkardModel(step_radius=0.05 * side, ppause=0.3),
    "drunkard-stationary": lambda side: DrunkardModel(
        step_radius=0.1 * side, ppause=0.2, pstationary=0.5
    ),
    "drunkard-boundary": lambda side: DrunkardModel(
        # Radius beyond the region side: every move reflects off a wall.
        step_radius=2.0 * side, ppause=0.0
    ),
    "random-direction": lambda side: RandomDirectionModel(
        speed=0.03 * side, travel_steps=5, tpause=0
    ),
    "random-direction-paused": lambda side: RandomDirectionModel(
        speed=0.05 * side, travel_steps=3, tpause=6, pstationary=0.4
    ),
    "random-direction-boundary": lambda side: RandomDirectionModel(
        # One step crosses the whole region: every move reflects off a wall.
        speed=1.5 * side, travel_steps=4, tpause=1
    ),
    "gauss-markov": lambda side: GaussMarkovModel(
        mean_speed=0.02 * side, alpha=0.7, noise_std=0.01 * side
    ),
    "gauss-markov-stationary": lambda side: GaussMarkovModel(
        mean_speed=0.03 * side, alpha=0.5, noise_std=0.02 * side, pstationary=0.4
    ),
    "gauss-markov-boundary": lambda side: GaussMarkovModel(
        # Mean step crosses the whole region: every move reflects off a wall.
        mean_speed=1.5 * side, alpha=0.9, noise_std=0.2 * side
    ),
    "stationary": lambda side: StationaryModel(),
    "group": lambda side: ReferencePointGroupModel(
        group_count=3, vmin=0.02 * side, vmax=0.2 * side, tpause=2,
        member_radius=0.1 * side,
    ),
    "group-paused": lambda side: ReferencePointGroupModel(
        group_count=4, vmin=0.1, vmax=0.05 * side, tpause=7,
        member_radius=0.05 * side, pstationary=0.4,
    ),
    "group-single": lambda side: ReferencePointGroupModel(
        # One fast centre: every arrival event touches every node at once.
        group_count=1, vmin=0.1 * side, vmax=0.5 * side, tpause=0,
        member_radius=0.2 * side,
    ),
}


def build_pair(name, side, node_count, dimension, seed):
    """Two identically-seeded (model, rng) pairs ready to diverge."""
    region = Region(side=side, dimension=dimension)
    pairs = []
    for _ in range(2):
        rng = np.random.default_rng(seed)
        model = MODEL_BUILDERS[name](side)
        model.initialize(region.sample_uniform(node_count, rng), region, rng)
        pairs.append((model, rng))
    return pairs


def sequential_frames(model, rng, steps):
    frames = np.empty((steps,) + model.state.positions.shape)
    frames[0] = model.state.positions
    for index in range(1, steps):
        frames[index] = model.step(rng)
    return frames


@pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_trajectory_bit_identical_to_steps(name, seed):
    (model_a, rng_a), (model_b, rng_b) = build_pair(name, 120.0, 17, 2, seed)
    steps = 61
    stepped = sequential_frames(model_a, rng_a, steps)
    batched = model_b.trajectory(steps, rng_b)
    assert np.array_equal(stepped, batched)
    # The stream position afterwards must match exactly too.
    assert np.array_equal(rng_a.random(16), rng_b.random(16))
    # And so must the state left behind.
    assert np.array_equal(model_a.state.positions, model_b.state.positions)
    assert model_a.state.step_index == model_b.state.step_index


@pytest.mark.parametrize(
    "name",
    [
        "waypoint-paused",
        "drunkard-boundary",
        "random-direction-boundary",
        "gauss-markov-boundary",
        "group-paused",
    ],
)
@pytest.mark.parametrize("dimension", [1, 2, 3])
def test_trajectory_bit_identical_across_dimensions(name, dimension):
    (model_a, rng_a), (model_b, rng_b) = build_pair(name, 40.0, 9, dimension, 5)
    stepped = sequential_frames(model_a, rng_a, 33)
    batched = model_b.trajectory(33, rng_b)
    assert np.array_equal(stepped, batched)
    assert np.array_equal(rng_a.random(8), rng_b.random(8))


@pytest.mark.parametrize(
    "name",
    ["waypoint-paused", "drunkard", "random-direction-paused", "gauss-markov", "group"],
)
def test_interleaving_trajectory_and_step(name):
    """trajectory → step → trajectory stays on the sequential stream."""
    (model_a, rng_a), (model_b, rng_b) = build_pair(name, 80.0, 11, 2, 9)
    reference = sequential_frames(model_a, rng_a, 40)
    first = model_b.trajectory(14, rng_b)
    middle = np.stack([model_b.step(rng_b) for _ in range(5)])
    # A later trajectory's frame 0 repeats the current positions.
    second = model_b.trajectory(22, rng_b)
    resumed = np.concatenate([first, middle, second[1:]])
    assert np.array_equal(reference, resumed)
    assert np.array_equal(rng_a.random(4), rng_b.random(4))


@pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
def test_trajectory_of_one_step_consumes_nothing(name):
    (model_a, rng_a), (model_b, rng_b) = build_pair(name, 50.0, 6, 2, 3)
    frames = model_b.trajectory(1, rng_b)
    assert np.array_equal(frames[0], model_a.state.positions)
    assert np.array_equal(rng_a.random(8), rng_b.random(8))


@pytest.mark.parametrize("name", ["waypoint-fast", "drunkard", "random-direction"])
def test_trajectory_empty_network(name):
    region = Region.square(30.0)
    rng = np.random.default_rng(2)
    model = MODEL_BUILDERS[name](30.0)
    model.initialize(np.empty((0, 2)), region, rng)
    frames = model.trajectory(10, rng)
    assert frames.shape == (10, 0, 2)
    # The empty network still "takes" the steps, exactly like step() calls.
    assert model.state.step_index == 9
    assert np.array_equal(rng.random(4), np.random.default_rng(2).random(4))


def test_waypoint_long_pause_spans_trajectory_boundary():
    """A node pausing across the batch horizon must resume correctly."""
    side = 60.0
    (model_a, rng_a), (model_b, rng_b) = build_pair("waypoint-paused", side, 13, 2, 11)
    reference = sequential_frames(model_a, rng_a, 30)
    # Split into many tiny batches so pauses and legs straddle boundaries.
    chunks = [model_b.trajectory(4, rng_b)]
    produced = 4
    while produced < 30:
        count = min(3, 30 - produced)
        chunks.append(model_b.trajectory(count + 1, rng_b)[1:])
        produced += count
    assert np.array_equal(reference, np.concatenate(chunks))
    assert np.array_equal(rng_a.random(4), rng_b.random(4))


def test_drunkard_stationary_nodes_pinned_in_trajectory():
    region = Region.square(50.0)
    rng = np.random.default_rng(21)
    model = DrunkardModel(step_radius=5.0, ppause=0.1, pstationary=0.6)
    initial = model.initialize(region.sample_uniform(25, rng), region, rng)
    mask = model.state.stationary_mask
    frames = model.trajectory(40, rng)
    assert mask.any()
    assert np.array_equal(
        frames[:, mask], np.broadcast_to(initial[mask], (40,) + initial[mask].shape)
    )
    moved = np.abs(frames[-1][~mask] - initial[~mask]).max()
    assert moved > 0.0


def test_waypoint_degenerately_slow_nodes_terminate():
    """Speeds so small the arrival estimate overflows an int64 cast must
    not hang the event loop — the nodes simply never arrive in-horizon."""
    region = Region.square(100.0)
    rng1, rng2 = np.random.default_rng(6), np.random.default_rng(6)
    slow1 = RandomWaypointModel(vmin=1e-300, vmax=1e-300, tpause=0)
    slow2 = RandomWaypointModel(vmin=1e-300, vmax=1e-300, tpause=0)
    slow1.initialize(region.sample_uniform(5, rng1), region, rng1)
    slow2.initialize(region.sample_uniform(5, rng2), region, rng2)
    stepped = sequential_frames(slow1, rng1, 12)
    assert np.array_equal(stepped, slow2.trajectory(12, rng2))
    assert np.array_equal(rng1.random(4), rng2.random(4))


def test_random_direction_stationary_nodes_pinned_in_trajectory():
    region = Region.square(50.0)
    rng = np.random.default_rng(23)
    model = RandomDirectionModel(speed=4.0, travel_steps=4, tpause=2, pstationary=0.5)
    initial = model.initialize(region.sample_uniform(25, rng), region, rng)
    mask = model.state.stationary_mask
    frames = model.trajectory(40, rng)
    assert mask.any()
    assert np.array_equal(
        frames[:, mask], np.broadcast_to(initial[mask], (40,) + initial[mask].shape)
    )
    moved = np.abs(frames[-1][~mask] - initial[~mask]).max()
    assert moved > 0.0


def test_random_direction_long_pause_spans_trajectory_boundary():
    """A node pausing across the batch horizon must resume correctly."""
    side = 60.0
    (model_a, rng_a), (model_b, rng_b) = build_pair(
        "random-direction-paused", side, 13, 2, 11
    )
    reference = sequential_frames(model_a, rng_a, 30)
    # Split into many tiny batches so pauses and legs straddle boundaries.
    chunks = [model_b.trajectory(4, rng_b)]
    produced = 4
    while produced < 30:
        count = min(3, 30 - produced)
        chunks.append(model_b.trajectory(count + 1, rng_b)[1:])
        produced += count
    assert np.array_equal(reference, np.concatenate(chunks))
    assert np.array_equal(rng_a.random(4), rng_b.random(4))


def test_gauss_markov_stationary_nodes_pinned_in_trajectory():
    region = Region.square(50.0)
    rng = np.random.default_rng(24)
    model = GaussMarkovModel(mean_speed=2.0, alpha=0.6, noise_std=1.0, pstationary=0.5)
    initial = model.initialize(region.sample_uniform(25, rng), region, rng)
    mask = model.state.stationary_mask
    frames = model.trajectory(40, rng)
    assert mask.any()
    assert np.array_equal(
        frames[:, mask], np.broadcast_to(initial[mask], (40,) + initial[mask].shape)
    )
    moved = np.abs(frames[-1][~mask] - initial[~mask]).max()
    assert moved > 0.0


@pytest.mark.parametrize(
    "dimension,width", [(1, 2), (2, 2), (3, 5), (4, 5), (5, 7)]
)
def test_group_member_block_protocol(dimension, width):
    """Pin the group model's member-offset draw protocol.

    One ``rng.random((n, width))`` uniform block per step (radius uniform
    plus direction uniforms), decoded in closed form with the
    uniform-in-ball radius law ``member_radius * U^(1/d)``.  Trajectory
    batching relies on this fixed-width layout, so a silent change to the
    per-step stream consumption must fail here.
    """
    region = Region(side=90.0, dimension=dimension)
    rng = np.random.default_rng(31)
    model = ReferencePointGroupModel(
        group_count=2, vmin=0.1, vmax=0.2, tpause=3, member_radius=4.0
    )
    model.initialize(region.sample_uniform(8, rng), region, rng)
    assert model._member_block_width(dimension) == width

    # Decode law: offsets lie on the radius ``member_radius * U^(1/d)``.
    block = np.random.default_rng(7).random((8, width))
    offsets = model._decode_member_block(block)
    assert offsets.shape == (8, dimension)
    radii = 4.0 * block[:, 0] ** (1.0 / dimension)
    assert np.allclose(np.sqrt((offsets**2).sum(axis=1)), radii)
    if dimension == 1:
        signs = np.where(block[:, 1] < 0.5, -1.0, 1.0)
        assert np.array_equal(offsets[:, 0], signs * radii)
    if dimension == 2:
        assert np.allclose(offsets[:, 0], np.cos(2.0 * np.pi * block[:, 1]) * radii)
        assert np.allclose(offsets[:, 1], np.sin(2.0 * np.pi * block[:, 1]) * radii)

    # Stream consumption: a step with no centre arrival (slow centres in a
    # large region) draws exactly one (n, width) uniform block.
    shadow = np.random.default_rng(0)
    shadow.bit_generator.state = rng.bit_generator.state
    model.step(rng)
    shadow.random((8, width))
    assert np.array_equal(rng.random(4), shadow.random(4))


def test_group_trajectory_empty_network():
    region = Region.square(30.0)
    rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
    model_a = ReferencePointGroupModel()
    model_b = ReferencePointGroupModel()
    model_a.initialize(np.empty((0, 2)), region, rng_a)
    model_b.initialize(np.empty((0, 2)), region, rng_b)
    stepped = sequential_frames(model_a, rng_a, 10)
    frames = model_b.trajectory(10, rng_b)
    assert frames.shape == (10, 0, 2)
    assert np.array_equal(stepped, frames)
    assert model_b.state.step_index == 9
    assert np.array_equal(rng_a.random(4), rng_b.random(4))


def test_group_trajectory_matches_nested_center_state():
    """Batching must leave the nested centre waypoint model bit-identical
    to sequential stepping — legs, pauses and positions included."""
    (model_a, rng_a), (model_b, rng_b) = build_pair("group", 100.0, 15, 2, 17)
    sequential_frames(model_a, rng_a, 45)
    model_b.trajectory(45, rng_b)
    center_a = model_a.state_snapshot()["model"]["center"]
    center_b = model_b.state_snapshot()["model"]["center"]
    assert np.array_equal(center_a["positions"], center_b["positions"])
    assert center_a["step_index"] == center_b["step_index"]
    for key, value in center_a["model"].items():
        assert np.array_equal(value, center_b["model"][key]), key


def test_waypoint_stationary_nodes_pinned_in_trajectory():
    region = Region.square(50.0)
    rng = np.random.default_rng(22)
    model = RandomWaypointModel(vmin=1.0, vmax=6.0, tpause=1, pstationary=0.5)
    initial = model.initialize(region.sample_uniform(25, rng), region, rng)
    mask = model.state.stationary_mask
    frames = model.trajectory(40, rng)
    assert mask.any()
    assert np.array_equal(
        frames[:, mask], np.broadcast_to(initial[mask], (40,) + initial[mask].shape)
    )
