"""Tests for repro.mobility.trace."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.geometry.region import Region
from repro.mobility.drunkard import DrunkardModel
from repro.mobility.stationary import StationaryModel
from repro.mobility.trace import MobilityTrace, record_trace
from repro.mobility.waypoint import RandomWaypointModel


class TestRecordTrace:
    def test_shape(self, square_region, rng):
        initial = square_region.sample_uniform(12, rng)
        trace = record_trace(
            RandomWaypointModel(vmin=0.5, vmax=5.0), initial, square_region, steps=20, seed=3
        )
        assert trace.step_count == 20
        assert trace.node_count == 12
        assert trace.dimension == 2
        assert len(trace) == 20

    def test_first_frame_is_initial_placement(self, square_region, rng):
        initial = square_region.sample_uniform(8, rng)
        trace = record_trace(
            DrunkardModel(step_radius=3.0), initial, square_region, steps=5, seed=1
        )
        assert np.allclose(trace.positions_at(0), initial)

    def test_single_step_is_stationary_convention(self, square_region, rng):
        initial = square_region.sample_uniform(8, rng)
        trace = record_trace(
            RandomWaypointModel(vmin=0.5, vmax=5.0), initial, square_region, steps=1, seed=1
        )
        assert trace.step_count == 1
        assert np.allclose(trace.positions_at(0), initial)

    def test_all_frames_in_region(self, square_region, rng):
        initial = square_region.sample_uniform(10, rng)
        trace = record_trace(
            DrunkardModel(step_radius=20.0), initial, square_region, steps=50, seed=2
        )
        for frame in trace:
            assert square_region.contains(frame)

    def test_invalid_steps(self, square_region, rng):
        with pytest.raises(SimulationError):
            record_trace(
                StationaryModel(), square_region.sample_uniform(3, rng), square_region, steps=0
            )

    def test_reproducible_by_seed(self, square_region, rng):
        initial = square_region.sample_uniform(6, rng)
        a = record_trace(DrunkardModel(step_radius=2.0), initial, square_region, 10, seed=9)
        b = record_trace(DrunkardModel(step_radius=2.0), initial, square_region, 10, seed=9)
        assert np.allclose(a.frames, b.frames)


class TestMobilityTrace:
    def test_invalid_frames_shape(self):
        with pytest.raises(ConfigurationError):
            MobilityTrace(frames=np.zeros((3, 4)), region=Region.square(10.0))

    def test_displacement_stationary_is_zero(self, square_region, rng):
        initial = square_region.sample_uniform(5, rng)
        trace = record_trace(StationaryModel(), initial, square_region, steps=10, seed=0)
        assert np.allclose(trace.displacement(), 0.0)

    def test_displacement_positive_for_mobile(self, square_region, rng):
        initial = square_region.sample_uniform(5, rng)
        trace = record_trace(
            DrunkardModel(step_radius=5.0), initial, square_region, steps=20, seed=0
        )
        assert np.all(trace.displacement() > 0.0)

    def test_dict_round_trip(self, square_region, rng):
        initial = square_region.sample_uniform(4, rng)
        trace = record_trace(StationaryModel(), initial, square_region, steps=3, seed=0)
        rebuilt = MobilityTrace.from_dict(trace.to_dict())
        assert np.allclose(rebuilt.frames, trace.frames)
        assert rebuilt.region.side == square_region.side
        assert rebuilt.region.dimension == square_region.dimension

    def test_negative_index_access(self, square_region, rng):
        initial = square_region.sample_uniform(4, rng)
        trace = record_trace(
            DrunkardModel(step_radius=2.0), initial, square_region, steps=5, seed=0
        )
        assert np.allclose(trace.positions_at(-1), trace.frames[4])
