"""Bit-identity tests for :meth:`MobilityModel.advance`.

``advance(k)`` is the frames-free fast-forward the shard-checkpoint
capture uses instead of materialising whole trajectory arrays.  Its
contract is absolute: after ``advance(k)`` a model's full state snapshot
and its generator's forward stream are **bit-identical** to ``k``
sequential :meth:`step` calls — for every model, including the batched
overrides (drunkard, waypoint) and the base-class fallback (group).
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.geometry.region import Region
from repro.mobility.drunkard import DrunkardModel
from repro.mobility.group import ReferencePointGroupModel
from repro.mobility.stationary import StationaryModel
from repro.mobility.waypoint import RandomWaypointModel

SIDE = 100.0
N = 17


def deep_eq(left, right):
    """Exact equality over nested dicts / arrays / scalars."""
    if isinstance(left, dict):
        return (
            isinstance(right, dict)
            and left.keys() == right.keys()
            and all(deep_eq(left[key], right[key]) for key in left)
        )
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        left_arr, right_arr = np.asarray(left), np.asarray(right)
        return (
            left_arr.shape == right_arr.shape
            and left_arr.dtype == right_arr.dtype
            and np.array_equal(left_arr, right_arr)
        )
    if isinstance(left, (list, tuple)):
        return (
            type(left) is type(right)
            and len(left) == len(right)
            and all(deep_eq(a, b) for a, b in zip(left, right))
        )
    return type(left) is type(right) and left == right


MODEL_FACTORIES = {
    "stationary": lambda: StationaryModel(),
    "drunkard": lambda: DrunkardModel(
        step_radius=1.5, ppause=0.3, pstationary=0.1
    ),
    "waypoint": lambda: RandomWaypointModel(
        vmin=0.5, vmax=2.0, tpause=2, pstationary=0.1
    ),
    # No ``advance`` override: exercises the base-class batched fallback
    # (and its nested per-member waypoint state).
    "group": lambda: ReferencePointGroupModel(
        group_count=3, vmin=0.5, vmax=2.0, tpause=1, member_radius=8.0,
        pstationary=0.1
    ),
}


def initialized_pair(name, seed=711):
    """Two identical models with identical seeded generators."""
    region = Region(side=SIDE, dimension=2)
    placement = region.sample_uniform(N, np.random.default_rng(seed))
    pair = []
    for _ in range(2):
        model = MODEL_FACTORIES[name]()
        generator = np.random.default_rng(seed + 1)
        model.initialize(placement.copy(), region, generator)
        pair.append((model, generator))
    return pair


@pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
@pytest.mark.parametrize("steps", [0, 1, 2, 7, 150])
def test_advance_matches_sequential_steps_bitwise(name, steps):
    (stepped, stepped_rng), (advanced, advanced_rng) = initialized_pair(name)
    for _ in range(steps):
        stepped.step(stepped_rng)
    advanced.advance(steps, advanced_rng)

    assert deep_eq(stepped.state_snapshot(), advanced.state_snapshot())
    # The generators sit at the same stream position: the *next* draws
    # (and hence any subsequent stepping) are identical too.
    assert np.array_equal(
        stepped_rng.random(8), advanced_rng.random(8)
    )
    follow_stepped = stepped.step(stepped_rng)
    follow_advanced = advanced.step(advanced_rng)
    assert np.array_equal(follow_stepped, follow_advanced)


@pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
def test_advance_crosses_batch_boundaries_bitwise(name, monkeypatch):
    """Force a tiny draw batch so one advance spans many batches — the
    consecutive-fill identity of NumPy generators must hold exactly."""
    import repro.mobility.base as base
    import repro.mobility.drunkard as drunkard

    monkeypatch.setattr(base, "_ADVANCE_BATCH_ELEMENTS", 7)
    monkeypatch.setattr(drunkard, "_ADVANCE_BATCH_ELEMENTS", 7)
    (stepped, stepped_rng), (advanced, advanced_rng) = initialized_pair(name)
    for _ in range(23):
        stepped.step(stepped_rng)
    advanced.advance(23, advanced_rng)
    assert deep_eq(stepped.state_snapshot(), advanced.state_snapshot())
    assert np.array_equal(stepped_rng.random(4), advanced_rng.random(4))


def test_advance_zero_consumes_no_draws():
    (reference, reference_rng), (advanced, advanced_rng) = initialized_pair(
        "drunkard"
    )
    advanced.advance(0, advanced_rng)
    assert deep_eq(reference.state_snapshot(), advanced.state_snapshot())
    assert np.array_equal(reference_rng.random(4), advanced_rng.random(4))


def test_advance_negative_steps_raises():
    (model, generator), _ = initialized_pair("stationary")
    with pytest.raises(ConfigurationError):
        model.advance(-1, generator)


def test_stationary_advance_moves_nothing_and_draws_nothing():
    (model, generator), _ = initialized_pair("stationary")
    before = model.state.positions.copy()
    fresh = np.random.default_rng(99)
    expected_next = np.random.default_rng(99).random(4)
    model.advance(1000, fresh)
    assert np.array_equal(model.state.positions, before)
    assert model.state.step_index == 1000
    assert np.array_equal(fresh.random(4), expected_next)  # zero draws


def test_advance_on_empty_network_takes_steps_without_draws():
    region = Region(side=SIDE, dimension=2)
    model = DrunkardModel(step_radius=1.0)
    generator = np.random.default_rng(3)
    model.initialize(np.empty((0, 2)), region, generator)
    probe = np.random.default_rng(4)
    expected_next = np.random.default_rng(4).random(4)
    model.advance(50, probe)
    assert model.state.step_index == 50
    assert np.array_equal(probe.random(4), expected_next)
