"""Tests for repro.mobility.boundary."""

import numpy as np
import pytest

from repro.geometry.region import Region
from repro.mobility.boundary import BoundaryPolicy


class TestBoundaryPolicy:
    def test_clamp(self):
        region = Region.square(10.0)
        out = np.array([[12.0, -3.0]])
        assert np.allclose(BoundaryPolicy.CLAMP.apply(region, out), [[10.0, 0.0]])

    def test_reflect(self):
        region = Region.square(10.0)
        out = np.array([[12.0, -3.0]])
        assert np.allclose(BoundaryPolicy.REFLECT.apply(region, out), [[8.0, 3.0]])

    def test_wrap(self):
        region = Region.square(10.0)
        out = np.array([[12.0, -3.0]])
        assert np.allclose(BoundaryPolicy.WRAP.apply(region, out), [[2.0, 7.0]])

    def test_all_policies_produce_points_in_region(self, rng):
        region = Region.square(10.0)
        wild = rng.uniform(-50.0, 60.0, size=(100, 2))
        for policy in BoundaryPolicy:
            corrected = policy.apply(region, wild)
            assert region.contains(corrected)

    def test_from_name(self):
        assert BoundaryPolicy.from_name("clamp") is BoundaryPolicy.CLAMP
        assert BoundaryPolicy.from_name("REFLECT") is BoundaryPolicy.REFLECT
        assert BoundaryPolicy.from_name("Wrap") is BoundaryPolicy.WRAP

    def test_from_name_invalid(self):
        with pytest.raises(ValueError):
            BoundaryPolicy.from_name("bounce")
