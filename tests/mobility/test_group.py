"""Tests for repro.mobility.group (reference-point group mobility)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.geometry.region import Region
from repro.mobility.group import ReferencePointGroupModel


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ReferencePointGroupModel(group_count=0)
        with pytest.raises(ConfigurationError):
            ReferencePointGroupModel(member_radius=0.0)

    def test_registered_by_name(self):
        from repro.mobility import model_by_name

        model = model_by_name("rpgm", group_count=3, vmin=0.5, vmax=2.0)
        assert isinstance(model, ReferencePointGroupModel)
        assert model.group_count == 3

    def test_describe(self):
        assert "ReferencePointGroupModel" in ReferencePointGroupModel().describe()


class TestMovement:
    def _model(self, **kwargs):
        defaults = dict(group_count=3, vmin=1.0, vmax=5.0, tpause=0, member_radius=8.0)
        defaults.update(kwargs)
        return ReferencePointGroupModel(**defaults)

    def test_positions_stay_in_region(self, square_region):
        rng = np.random.default_rng(41)
        model = self._model()
        model.initialize(square_region.sample_uniform(24, rng), square_region, rng)
        for _ in range(80):
            assert square_region.contains(model.step(rng))

    def test_group_assignment_round_robin(self, square_region, rng):
        model = self._model(group_count=3)
        model.initialize(square_region.sample_uniform(9, rng), square_region, rng)
        assert [model.group_of(i) for i in range(9)] == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_group_members_stay_close_together(self, square_region):
        rng = np.random.default_rng(42)
        member_radius = 6.0
        model = self._model(group_count=2, member_radius=member_radius)
        model.initialize(square_region.sample_uniform(12, rng), square_region, rng)
        positions = model.run(30, rng)
        for group in range(2):
            members = positions[[i for i in range(12) if model.group_of(i) == group]]
            # Every pair within a group is within 2 * member_radius of each
            # other (both lie in the same disk around the reference point).
            spread = np.linalg.norm(members[:, None, :] - members[None, :, :], axis=-1)
            assert spread.max() <= 2 * member_radius + 1e-9

    def test_groups_move(self, square_region):
        rng = np.random.default_rng(43)
        model = self._model(vmin=2.0, vmax=6.0)
        initial = model.initialize(
            square_region.sample_uniform(12, rng), square_region, rng
        )
        final = model.run(40, rng)
        assert np.linalg.norm(final - initial, axis=1).mean() > 1.0

    def test_more_groups_than_nodes(self, square_region, rng):
        model = self._model(group_count=50)
        model.initialize(square_region.sample_uniform(5, rng), square_region, rng)
        positions = model.step(rng)
        assert positions.shape == (5, 2)

    def test_reproducible(self, square_region):
        def run(seed):
            rng = np.random.default_rng(seed)
            model = self._model()
            model.initialize(square_region.sample_uniform(10, rng), square_region, rng)
            return model.run(20, rng)

        assert np.allclose(run(7), run(7))

    def test_group_mobility_keeps_intra_group_connectivity(self, square_region):
        """Members of one group always form a connected cluster at a range
        of twice the member radius — the property that makes group mobility
        interesting for the paper's connectivity question."""
        from repro.connectivity.metrics import is_placement_connected

        rng = np.random.default_rng(44)
        member_radius = 5.0
        model = self._model(group_count=1, member_radius=member_radius)
        model.initialize(square_region.sample_uniform(8, rng), square_region, rng)
        for _ in range(20):
            positions = model.step(rng)
            assert is_placement_connected(positions, 2 * member_radius)
