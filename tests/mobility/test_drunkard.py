"""Tests for repro.mobility.drunkard."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mobility.drunkard import DrunkardModel


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            DrunkardModel(step_radius=0.0)
        with pytest.raises(ConfigurationError):
            DrunkardModel(step_radius=1.0, ppause=1.5)
        with pytest.raises(ConfigurationError):
            DrunkardModel(step_radius=1.0, ppause=-0.1)

    def test_paper_defaults(self):
        model = DrunkardModel.paper_defaults(side=4096.0)
        assert model.step_radius == pytest.approx(40.96)
        assert model.ppause == pytest.approx(0.3)
        assert model.pstationary == pytest.approx(0.1)

    def test_describe(self):
        assert "DrunkardModel" in DrunkardModel(step_radius=2.0).describe()


class TestMovement:
    def test_positions_stay_in_region(self, square_region):
        rng = np.random.default_rng(11)
        model = DrunkardModel(step_radius=15.0, ppause=0.0)
        model.initialize(square_region.sample_uniform(30, rng), square_region, rng)
        for _ in range(100):
            assert square_region.contains(model.step(rng))

    def test_step_length_bounded_by_radius(self, square_region):
        rng = np.random.default_rng(12)
        radius = 4.0
        model = DrunkardModel(step_radius=radius, ppause=0.0)
        previous = model.initialize(
            square_region.sample_uniform(20, rng), square_region, rng
        )
        for _ in range(50):
            current = model.step(rng)
            jumps = np.linalg.norm(current - previous, axis=1)
            assert np.all(jumps <= radius + 1e-9)
            previous = current

    def test_ppause_one_means_no_motion(self, square_region):
        rng = np.random.default_rng(13)
        model = DrunkardModel(step_radius=5.0, ppause=1.0)
        initial = model.initialize(
            square_region.sample_uniform(10, rng), square_region, rng
        )
        final = model.run(20, rng)
        assert np.allclose(final, initial)

    def test_ppause_slows_diffusion(self, square_region):
        def total_displacement(ppause: float) -> float:
            rng = np.random.default_rng(99)
            model = DrunkardModel(step_radius=5.0, ppause=ppause)
            initial = model.initialize(
                square_region.sample_uniform(40, rng), square_region, rng
            )
            final = model.run(60, rng)
            return float(np.linalg.norm(final - initial, axis=1).sum())

        assert total_displacement(0.0) > total_displacement(0.8)

    def test_reproducible(self, square_region):
        def run(seed):
            rng = np.random.default_rng(seed)
            model = DrunkardModel(step_radius=3.0, ppause=0.2)
            model.initialize(square_region.sample_uniform(15, rng), square_region, rng)
            return model.run(30, rng)

        assert np.allclose(run(1), run(1))

    def test_node_in_corner_does_not_escape(self):
        from repro.geometry.region import Region

        region = Region.square(10.0)
        rng = np.random.default_rng(14)
        model = DrunkardModel(step_radius=30.0, ppause=0.0)
        corner = np.zeros((5, 2))
        model.initialize(corner, region, rng)
        for _ in range(20):
            assert region.contains(model.step(rng))

    def test_empty_network(self, square_region, rng):
        model = DrunkardModel(step_radius=1.0)
        model.initialize(np.empty((0, 2)), square_region, rng)
        assert model.step(rng).shape == (0, 2)
