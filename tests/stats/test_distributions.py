"""Tests for repro.stats.distributions."""

import math

import pytest

from repro.stats.distributions import normal_cdf, normal_pdf, poisson_cdf, poisson_pmf


class TestNormal:
    def test_pdf_peak_at_mean(self):
        assert normal_pdf(0.0) == pytest.approx(1.0 / math.sqrt(2 * math.pi))

    def test_pdf_symmetry(self):
        assert normal_pdf(1.3) == pytest.approx(normal_pdf(-1.3))

    def test_cdf_at_mean(self):
        assert normal_cdf(5.0, mean=5.0, std=2.0) == pytest.approx(0.5)

    def test_cdf_monotone(self):
        assert normal_cdf(-1.0) < normal_cdf(0.0) < normal_cdf(1.0)

    def test_cdf_known_value(self):
        # P(Z <= 1.96) for the standard normal.
        assert normal_cdf(1.96) == pytest.approx(0.975, abs=1e-3)

    def test_invalid_std_raises(self):
        with pytest.raises(ValueError):
            normal_pdf(0.0, std=0.0)
        with pytest.raises(ValueError):
            normal_cdf(0.0, std=-1.0)

    def test_scaling(self):
        # Scaling the std scales the density at the mean inversely.
        assert normal_pdf(0.0, std=2.0) == pytest.approx(normal_pdf(0.0) / 2.0)


class TestPoisson:
    def test_pmf_sums_to_one(self):
        lam = 3.5
        total = sum(poisson_pmf(k, lam) for k in range(60))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_pmf_zero_rate(self):
        assert poisson_pmf(0, 0.0) == 1.0
        assert poisson_pmf(1, 0.0) == 0.0

    def test_pmf_negative_k(self):
        assert poisson_pmf(-1, 2.0) == 0.0

    def test_pmf_known_value(self):
        # P(X = 2) for Poisson(1) is e^-1 / 2.
        assert poisson_pmf(2, 1.0) == pytest.approx(math.exp(-1) / 2)

    def test_cdf_monotone(self):
        values = [poisson_cdf(k, 4.0) for k in range(10)]
        assert values == sorted(values)

    def test_cdf_converges_to_one(self):
        assert poisson_cdf(100, 4.0) == pytest.approx(1.0, abs=1e-9)

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError):
            poisson_pmf(1, -1.0)
        with pytest.raises(ValueError):
            poisson_cdf(1, -1.0)

    def test_large_rate_no_overflow(self):
        value = poisson_pmf(500, 500.0)
        assert 0.0 < value < 1.0
