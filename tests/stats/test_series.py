"""Tests for repro.stats.series."""

import pytest

from repro.stats.series import (
    fraction_true,
    longest_run,
    moving_average,
    runs_of,
    sliding_window_fraction,
)


class TestFractionTrue:
    def test_all_true(self):
        assert fraction_true([True, True, True]) == 1.0

    def test_mixed(self):
        assert fraction_true([True, False, True, False]) == 0.5

    def test_empty(self):
        assert fraction_true([]) == 0.0

    def test_accepts_ints(self):
        assert fraction_true([1, 0, 1, 1]) == 0.75


class TestRunsOf:
    def test_single_run(self):
        assert runs_of([True, True, True]) == [(0, 3)]

    def test_alternating(self):
        assert runs_of([True, False, True]) == [(0, 1), (2, 1)]

    def test_run_ending_at_boundary(self):
        assert runs_of([False, True, True]) == [(1, 2)]

    def test_runs_of_false(self):
        assert runs_of([True, False, False, True], value=False) == [(1, 2)]

    def test_empty(self):
        assert runs_of([]) == []


class TestLongestRun:
    def test_basic(self):
        series = [True, True, False, True, True, True, False]
        assert longest_run(series) == 3

    def test_no_true(self):
        assert longest_run([False, False]) == 0

    def test_false_runs(self):
        assert longest_run([True, False, False, False, True], value=False) == 3


class TestSlidingWindowFraction:
    def test_window_of_two(self):
        result = sliding_window_fraction([True, False, True, True], window=2)
        assert result == [0.5, 0.5, 1.0]

    def test_window_larger_than_series(self):
        assert sliding_window_fraction([True], window=5) == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            sliding_window_fraction([True], window=0)


class TestMovingAverage:
    def test_basic(self):
        assert moving_average([1.0, 2.0, 3.0, 4.0], window=2) == [1.5, 2.5, 3.5]

    def test_window_equal_to_length(self):
        assert moving_average([2.0, 4.0], window=2) == [3.0]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], window=-1)
