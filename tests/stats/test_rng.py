"""Tests for repro.stats.rng."""

import numpy as np
import pytest

from repro.stats.rng import RandomSource, make_rng, spawn_rngs


class TestMakeRng:
    def test_none_returns_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).random(5)
        b = make_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(3)
        assert make_rng(generator) is generator


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(7, 4)) == 4

    def test_zero_count(self):
        assert spawn_rngs(7, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(7, -1)

    def test_children_are_independent_streams(self):
        children = spawn_rngs(7, 2)
        a = children[0].random(10)
        b = children[1].random(10)
        assert not np.allclose(a, b)

    def test_deterministic_for_same_seed(self):
        first = [g.random(3) for g in spawn_rngs(11, 3)]
        second = [g.random(3) for g in spawn_rngs(11, 3)]
        for a, b in zip(first, second):
            assert np.allclose(a, b)

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(5)
        children = spawn_rngs(parent, 3)
        assert len(children) == 3


class TestRandomSource:
    def test_child_is_deterministic(self):
        source = RandomSource(99)
        a = source.child(3).random(5)
        b = source.child(3).random(5)
        assert np.allclose(a, b)

    def test_children_differ_by_index(self):
        source = RandomSource(99)
        a = source.child(0).random(5)
        b = source.child(1).random(5)
        assert not np.allclose(a, b)

    def test_independent_of_request_order(self):
        source = RandomSource(42)
        late = source.child(5).random(4)
        fresh_source = RandomSource(42)
        for index in range(5):
            fresh_source.child(index)
        assert np.allclose(late, fresh_source.child(5).random(4))

    def test_children_helper(self):
        source = RandomSource(1)
        assert len(source.children(4)) == 4

    def test_negative_index_raises(self):
        with pytest.raises(ValueError):
            RandomSource(1).child(-1)

    def test_seed_property(self):
        assert RandomSource(17).seed == 17
        assert RandomSource().seed is None
