"""Tests for repro.stats.summary."""

import math

import pytest

from repro.stats.summary import SummaryStatistics, confidence_interval, summarize


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.count == 5
        assert stats.mean == pytest.approx(3.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0
        assert stats.median == 3.0

    def test_std_is_sample_std(self):
        stats = summarize([2.0, 4.0])
        assert stats.std == pytest.approx(math.sqrt(2.0))

    def test_single_value(self):
        stats = summarize([7.0])
        assert stats.count == 1
        assert stats.std == 0.0
        assert stats.standard_error() == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_constant_sample(self):
        stats = summarize([3.0] * 10)
        assert stats.std == 0.0
        assert stats.mean == 3.0


class TestConfidenceInterval:
    def test_interval_contains_mean(self):
        low, high = confidence_interval([1.0, 2.0, 3.0, 4.0], level=0.95)
        assert low <= 2.5 <= high

    def test_wider_level_gives_wider_interval(self):
        sample = [float(i) for i in range(20)]
        narrow = confidence_interval(sample, level=0.80)
        wide = confidence_interval(sample, level=0.99)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_zero_variance_gives_degenerate_interval(self):
        low, high = confidence_interval([5.0, 5.0, 5.0])
        assert low == pytest.approx(5.0)
        assert high == pytest.approx(5.0)

    def test_unusual_level_uses_quantile_approximation(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        low, high = stats.confidence_interval(level=0.93)
        assert low < stats.mean < high

    def test_invalid_level_raises(self):
        stats = summarize([1.0, 2.0])
        with pytest.raises(ValueError):
            stats.confidence_interval(level=1.5)


class TestSummaryStatisticsDataclass:
    def test_frozen(self):
        stats = SummaryStatistics(1, 1.0, 0.0, 1.0, 1.0, 1.0)
        with pytest.raises(AttributeError):
            stats.mean = 2.0
