"""Tests for repro.campaigns.spec: loading and grid enumeration."""

import json

import pytest

from repro.campaigns.spec import CampaignSpec
from repro.exceptions import ConfigurationError

TOML_SPEC = """
name = "grid"
experiments = ["fig2", "fig7"]
scale = "smoke"

[overrides]
steps = 10

[matrix]
seed = [1, 2]
iterations = [2, 4, 8]
"""


class TestLoading:
    def test_load_toml(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text(TOML_SPEC)
        spec = CampaignSpec.load(path)
        assert spec.name == "grid"
        assert spec.experiments == ("fig2", "fig7")
        assert spec.scale == "smoke"
        assert dict(spec.overrides) == {"steps": 10}
        assert dict(spec.matrix) == {"seed": (1, 2), "iterations": (2, 4, 8)}

    def test_load_json(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(
            json.dumps(
                {
                    "name": "grid",
                    "experiments": ["fig2"],
                    "scale": "smoke",
                    "matrix": {"seed": [1, 2]},
                }
            )
        )
        spec = CampaignSpec.load(path)
        assert spec.scenario_count() == 2

    def test_name_defaults_to_file_stem(self, tmp_path):
        path = tmp_path / "nightly.toml"
        path.write_text('experiments = ["fig2"]\nscale = "smoke"\n')
        assert CampaignSpec.load(path).name == "nightly"

    def test_unsupported_format(self, tmp_path):
        path = tmp_path / "grid.yaml"
        path.write_text("experiments: [fig2]")
        with pytest.raises(ConfigurationError):
            CampaignSpec.load(path)


class TestValidation:
    def test_requires_experiments(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="x", experiments=())

    def test_rejects_unknown_scale_fields(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(
                name="x", experiments=("fig2",), overrides=(("no_such_field", 1),)
            )

    def test_rejects_execution_knobs(self):
        with pytest.raises(ConfigurationError) as error:
            CampaignSpec(
                name="x", experiments=("fig2",), matrix=(("workers", (1, 2)),)
            )
        assert "workers" in str(error.value)

    def test_rejects_every_execution_field(self):
        """All execution-only knobs excluded from cache keys must also be
        rejected as spec fields — matrix cells differing only in one
        would collide on a single cache key (regression: shard_steps and
        transport were added to EXECUTION_FIELDS in PR 5)."""
        from repro.store.keys import EXECUTION_FIELDS

        for knob, value in [
            ("workers", 2),
            ("sweep_workers", 2),
            ("shard_steps", 100),
            ("transport", "shm"),
        ]:
            assert knob in EXECUTION_FIELDS
            with pytest.raises(ConfigurationError):
                CampaignSpec(
                    name="x", experiments=("fig2",), overrides=((knob, value),)
                )
            with pytest.raises(ConfigurationError):
                CampaignSpec(
                    name="x", experiments=("fig2",), matrix=((knob, (value,)),)
                )

    def test_rejects_backend_environment_field(self):
        """``backend`` is an environment field, not a sweepable parameter:
        it stays in cache keys (unlike execution knobs), but a campaign
        must not matrix over it — backend selection belongs to the
        ``--backend`` flag of the machine running the campaign."""
        from repro.store.keys import ENVIRONMENT_FIELDS

        assert "backend" in ENVIRONMENT_FIELDS
        with pytest.raises(ConfigurationError) as error:
            CampaignSpec(
                name="x",
                experiments=("fig2",),
                matrix=(("backend", ("numpy", "numpy-strict")),),
            )
        assert "backend" in str(error.value)
        with pytest.raises(ConfigurationError):
            CampaignSpec(
                name="x", experiments=("fig2",), overrides=(("backend", "numpy"),)
            )

    def test_rejects_empty_matrix_values(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="x", experiments=("fig2",), matrix=(("seed", ()),))

    def test_rejects_unknown_spec_keys(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec.from_dict(
                {"name": "x", "experiments": ["fig2"], "sclae": "smoke"}
            )


class TestGrid:
    def spec(self):
        return CampaignSpec(
            name="grid",
            experiments=("fig2", "fig7"),
            scale="smoke",
            overrides=(("steps", 10),),
            matrix=(("seed", (1, 2)), ("iterations", (2, 4, 8))),
        )

    def test_scenario_count_matches_grid(self):
        spec = self.spec()
        assert spec.scenario_count() == 2 * 2 * 3
        assert len(spec.scenarios()) == spec.scenario_count()

    def test_scenarios_apply_overrides_and_cells(self):
        scenarios = self.spec().scenarios()
        first = scenarios[0]
        assert first.experiment_id == "fig2"
        assert first.scale.steps == 10
        assert first.scale.seed == 1
        assert first.scale.iterations == 2
        assert first.scenario_id == "fig2@seed=1,iterations=2"
        # The base preset's untouched fields survive.
        assert first.scale.parameter_points == 3

    def test_scenario_ids_unique_and_ordered(self):
        identifiers = [s.scenario_id for s in self.spec().scenarios()]
        assert len(set(identifiers)) == len(identifiers)
        assert identifiers[0].startswith("fig2")
        assert identifiers[-1].startswith("fig7")

    def test_matrixless_spec_has_one_cell_per_experiment(self):
        spec = CampaignSpec(name="x", experiments=("fig2",), scale="smoke")
        scenarios = spec.scenarios()
        assert len(scenarios) == 1
        assert scenarios[0].scenario_id == "fig2"
        assert scenarios[0].cell == ()

    def test_sides_override_from_lists(self, tmp_path):
        path = tmp_path / "sides.toml"
        path.write_text(
            'experiments = ["fig2"]\nscale = "smoke"\n'
            "[overrides]\nsides = [128.0, 512.0]\n"
        )
        spec = CampaignSpec.load(path)
        assert spec.scenarios()[0].scale.sides == (128.0, 512.0)

    def test_invalid_scale_value_surfaces_at_enumeration(self):
        spec = CampaignSpec(
            name="x", experiments=("fig2",), scale="smoke",
            matrix=(("iterations", (0,)),),
        )
        with pytest.raises(ConfigurationError):
            spec.scenarios()
