"""The shared completeness counting behind ``status`` and the query service."""

from repro.campaigns import CampaignRunner, CampaignSpec, cell_completeness
from repro.campaigns.runner import scenario_sweep_key
from repro.experiments.registry import get_experiment
from repro.query import GridIndex
from repro.store import ResultStore

ROW = {"l": 256.0, "r0": 1.0, "r10": 1.5, "r90": 3.0, "r100": 4.0}


def make_cell(tmp_path):
    """A fig2 smoke cell (sides 256/1024, 2 iterations per value)."""
    spec = CampaignSpec(name="cc", experiments=("fig2",), scale="smoke")
    store = ResultStore(tmp_path / "store")
    grid = GridIndex(spec)
    scenario = grid.scenario_for("waypoint")
    checkpoint = grid.checkpoint_for(scenario, store=store)
    experiment = get_experiment(scenario.experiment_id)
    values = [float(v) for v in experiment.sweep_values(scenario.scale)]
    return spec, store, scenario, checkpoint, values


class TestCellCompleteness:
    def test_empty_store_counts_nothing(self, tmp_path):
        _, store, _, checkpoint, values = make_cell(tmp_path)
        counts = cell_completeness(store, checkpoint, values)
        assert not counts.complete
        assert counts.checkpointed_values == 0
        assert counts.total_values == 2
        assert counts.checkpointed_iterations == 0
        assert counts.total_iterations == 4  # 2 values x 2 iterations
        assert counts.coverage == 0.0

    def test_a_finished_value_subsumes_its_iterations(self, tmp_path):
        _, store, _, checkpoint, values = make_cell(tmp_path)
        checkpoint.save(256.0, ROW)
        counts = cell_completeness(store, checkpoint, values)
        assert counts.checkpointed_values == 1
        assert counts.checkpointed_iterations == 2  # the row counts both
        assert counts.coverage == 0.5

    def test_partial_iterations_count_their_sub_entries(self, tmp_path):
        _, store, _, checkpoint, values = make_cell(tmp_path)
        sub = checkpoint.iteration_checkpoint(1024.0)
        sub.save(0, {"connected": [True]})
        counts = cell_completeness(store, checkpoint, values)
        assert counts.checkpointed_values == 0
        assert counts.checkpointed_iterations == 1
        assert counts.coverage == 0.25

    def test_sweep_entry_means_complete(self, tmp_path):
        _, store, scenario, checkpoint, values = make_cell(tmp_path)
        experiment = get_experiment(scenario.experiment_id)
        store.put(
            scenario_sweep_key(experiment, scenario.scale),
            {"rows": []},
        )
        counts = cell_completeness(store, checkpoint, values)
        assert counts.complete
        assert counts.coverage == 1.0
        # Complete cells report full iteration coverage by definition.
        assert counts.checkpointed_iterations == counts.total_iterations == 4

    def test_poisoned_keys_are_counted_as_quarantined(self, tmp_path):
        _, store, _, checkpoint, values = make_cell(tmp_path)
        counts = cell_completeness(
            store, checkpoint, values, poisoned={checkpoint.key_for(256.0)}
        )
        assert counts.quarantined == 1

    def test_status_reports_the_same_counts(self, tmp_path):
        # The extraction's whole point: `campaign status` and the query
        # service must never disagree about a cell's completeness.
        spec, store, _, checkpoint, values = make_cell(tmp_path)
        checkpoint.save(256.0, ROW)
        sub = checkpoint.iteration_checkpoint(1024.0)
        sub.save(0, {"connected": [True]})
        counts = cell_completeness(store, checkpoint, values)
        statuses = CampaignRunner(spec, store=store).status()
        fig2 = next(s for s in statuses if s.scenario.experiment_id == "fig2")
        assert fig2.checkpointed_values == counts.checkpointed_values
        assert fig2.total_values == counts.total_values
        assert fig2.checkpointed_iterations == counts.checkpointed_iterations
        assert fig2.total_iterations == counts.total_iterations
        assert fig2.complete == counts.complete
