"""Campaign semantics tests: caching, kill-and-resume, corruption recovery.

A synthetic experiment with an instrumented measure is registered for the
duration of each test, so the tests can assert *exactly* how many measure
calls a campaign performed — the acceptance criteria are "zero new
simulation calls on a warm re-run" and "a killed campaign resumes where
it stopped with results equal to an uninterrupted run".

The determinism matrix at the bottom runs a real multi-iteration
simulation experiment through every execution shape x budget x kill
granularity the campaign layer offers and asserts bit-identical results
against a cold serial run — with filesystem markers (visible across
worker processes) counting every measure call and every simulated
iteration, so "zero recomputation" is asserted literally.
"""

import glob
import os
import uuid
from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np
import pytest

from repro.campaigns import CampaignRunner, CampaignSpec
from repro.campaigns.runner import scenario_sweep_key
from repro.experiments.registry import (
    _REGISTRY,
    Experiment,
    ExperimentScale,
    get_experiment,
    register_experiment,
)
from repro.simulation.config import MobilitySpec, NetworkConfig, SimulationConfig
from repro.simulation.runner import collect_frame_statistics
from repro.simulation.sweep import (
    SweepCheckpoint,
    SweepResult,
    iteration_checkpoint_for,
    sweep_parameter,
)
from repro.store import ResultStore

EXPERIMENT_ID = "campaign-test-exp"
SIBLING_ID = "campaign-test-exp-sibling"


def shared_payload(scale: ExperimentScale):
    """Cache payload shared by the counting experiment and its sibling."""
    from repro.store import scale_payload

    return {"computation": "counting-shared", "scale": scale_payload(scale)}

#: Module-level instrumentation so the (serial, in-process) measures can
#: count calls and simulate a mid-campaign kill.
CALLS = {"count": 0}
FAIL_AT = {"value": None}


@dataclass(frozen=True)
class CountingMeasure:
    seed: int

    def __call__(self, value: float) -> Dict[str, float]:
        if FAIL_AT["value"] is not None and value >= FAIL_AT["value"]:
            raise RuntimeError(f"simulated kill at value {value}")
        CALLS["count"] += 1
        return {"metric": value * 2.0 + self.seed, "seed": float(self.seed)}


def run_counting_experiment(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    return sweep_parameter(
        "side",
        scale.sides,
        CountingMeasure(seed=scale.seed or 0),
        checkpoint=checkpoint,
    )


@pytest.fixture
def counting_experiment():
    CALLS["count"] = 0
    FAIL_AT["value"] = None
    experiment = register_experiment(
        Experiment(
            identifier=EXPERIMENT_ID,
            title="Synthetic counting experiment",
            description="Counts measure calls for campaign-semantics tests.",
            paper_reference="(test only)",
            run=run_counting_experiment,
        )
    )
    yield experiment
    _REGISTRY.pop(EXPERIMENT_ID, None)
    FAIL_AT["value"] = None


def make_spec(**overrides):
    document = {
        "name": "semantics",
        "experiments": [EXPERIMENT_ID],
        "scale": "smoke",
        "overrides": {
            "sides": [10.0, 20.0, 30.0],
            "steps": 1,
            "iterations": 1,
            "stationary_iterations": 1,
        },
        "matrix": {"seed": [1, 2]},
    }
    document.update(overrides)
    return CampaignSpec.from_dict(document)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestWarmRerun:
    def test_identical_spec_rerun_is_pure_cache_hit(self, counting_experiment, store):
        spec = make_spec()
        cold = CampaignRunner(spec, store).run()
        cold_calls = CALLS["count"]
        assert cold_calls == 2 * 3  # two seeds x three sides
        assert cold.cache_hits == 0

        warm = CampaignRunner(spec, store).run()
        assert CALLS["count"] == cold_calls  # zero new measure calls
        assert warm.cache_hits == len(spec.scenarios())
        assert warm.computed_values == 0
        # Bit-identical to the cold run, scenario by scenario, row by row.
        assert warm.sweeps.keys() == cold.sweeps.keys()
        for scenario_id, sweep in warm.sweeps.items():
            assert sweep.rows == cold.sweeps[scenario_id].rows
            assert sweep.parameter_name == cold.sweeps[scenario_id].parameter_name

    def test_no_resume_forces_recompute(self, counting_experiment, store):
        spec = make_spec()
        CampaignRunner(spec, store).run()
        baseline = CALLS["count"]
        CampaignRunner(spec, store).run(resume=False)
        assert CALLS["count"] == baseline * 2

    def test_shared_computation_cached_within_one_run(
        self, counting_experiment, store
    ):
        """Experiments registering the same cache_payload share one sweep —
        including on a --no-resume run, which must recompute shared sweeps
        once per run, not once per scenario."""
        sibling = register_experiment(
            Experiment(
                identifier=SIBLING_ID,
                title="Synthetic sibling experiment",
                description="Shares the counting experiment's computation.",
                paper_reference="(test only)",
                run=run_counting_experiment,
                cache_payload=shared_payload,
            )
        )
        try:
            _REGISTRY[EXPERIMENT_ID] = Experiment(
                identifier=EXPERIMENT_ID,
                title=counting_experiment.title,
                description=counting_experiment.description,
                paper_reference=counting_experiment.paper_reference,
                run=run_counting_experiment,
                cache_payload=shared_payload,
            )
            spec = make_spec(
                experiments=[EXPERIMENT_ID, SIBLING_ID], matrix={"seed": [1]}
            )
            cold = CampaignRunner(spec, store).run()
            assert CALLS["count"] == 3  # one shared sweep, not two
            assert cold.cache_hits == 1

            fresh = CampaignRunner(spec, store).run(resume=False)
            assert CALLS["count"] == 6  # recomputed once, served twice
            assert fresh.cache_hits == 1
        finally:
            _REGISTRY.pop(SIBLING_ID, None)


class TestKillAndResume:
    def test_killed_campaign_resumes_and_matches_uninterrupted(
        self, counting_experiment, store, tmp_path
    ):
        spec = make_spec()
        # Uninterrupted reference run against its own store.
        reference = CampaignRunner(spec, ResultStore(tmp_path / "ref")).run()
        reference_calls = CALLS["count"]

        # "Kill" the campaign while measuring value 20.0 of the first
        # scenario: value 10.0 has been checkpointed, the rest has not.
        CALLS["count"] = 0
        FAIL_AT["value"] = 20.0
        with pytest.raises(RuntimeError):
            CampaignRunner(spec, store).run()
        assert CALLS["count"] == 1

        statuses = CampaignRunner(spec, store).status()
        assert statuses[0].state == "partial (1/3)"
        assert all(not status.complete for status in statuses)

        # Resume: only the unfinished values are measured.
        FAIL_AT["value"] = None
        resumed = CampaignRunner(spec, store).run()
        assert CALLS["count"] == reference_calls  # 1 killed-run call + the rest
        resumed_outcome = resumed.outcomes[0]
        assert resumed_outcome.loaded_values == 1
        assert resumed_outcome.computed_values == 2

        # The resumed campaign equals the uninterrupted one, bit for bit.
        assert resumed.sweeps.keys() == reference.sweeps.keys()
        for scenario_id, sweep in resumed.sweeps.items():
            assert sweep.rows == reference.sweeps[scenario_id].rows

        # And a final re-run over the healed store is a pure cache hit.
        before = CALLS["count"]
        final = CampaignRunner(spec, store).run()
        assert CALLS["count"] == before
        assert final.cache_hits == len(spec.scenarios())


class TestCorruption:
    def corrupt_scenario_entry(self, spec, store):
        scenario = spec.scenarios()[0]
        key = scenario_sweep_key(
            get_experiment(scenario.experiment_id), scenario.scale
        )
        entry_dir = store._entry_dir(key)
        (entry_dir / "data.json").write_text('{"tampered": true}')
        return key

    def test_corrupt_entry_recomputed_not_returned(self, counting_experiment, store):
        spec = make_spec()
        cold = CampaignRunner(spec, store).run()
        baseline = CALLS["count"]
        key = self.corrupt_scenario_entry(spec, store)

        rerun = CampaignRunner(spec, store).run()
        # The corrupted scenario was recomputed from its (intact) per-value
        # checkpoints: no new measure calls, but no tampered data either.
        assert rerun.outcomes[0].cache_hit is False
        assert rerun.outcomes[0].loaded_values == 3
        assert CALLS["count"] == baseline
        assert rerun.sweeps.keys() == cold.sweeps.keys()
        for scenario_id, sweep in rerun.sweeps.items():
            assert sweep.rows == cold.sweeps[scenario_id].rows
        # The healed entry is intact again.
        assert store.get(key).rows == cold.outcomes[0].sweep.rows

    def test_corrupt_entry_and_checkpoints_fully_recomputed(
        self, counting_experiment, store
    ):
        spec = make_spec()
        cold = CampaignRunner(spec, store).run()
        baseline = CALLS["count"]
        self.corrupt_scenario_entry(spec, store)
        # Wipe the first scenario's checkpoints too: full recompute needed.
        runner = CampaignRunner(spec, store)
        scenario = spec.scenarios()[0]
        experiment = get_experiment(scenario.experiment_id)
        for row_key in runner._row_keys(experiment, scenario):
            store.evict(row_key)

        rerun = runner.run()
        assert CALLS["count"] == baseline + 3
        assert rerun.sweeps[scenario.scenario_id].rows == cold.sweeps[
            scenario.scenario_id
        ].rows


class TestClean:
    def test_clean_removes_exactly_the_grid_entries(self, counting_experiment, store):
        spec = make_spec()
        CampaignRunner(spec, store).run()
        # 2 scenarios x (1 sweep + 3 rows) = 8 entries.
        assert len(store) == 8
        removed = CampaignRunner(spec, store).clean()
        assert removed == 8
        assert len(store) == 0
        statuses = CampaignRunner(spec, store).status()
        assert all(status.state == "missing" for status in statuses)


# --------------------------------------------------------------------------- #
# Determinism test matrix
# --------------------------------------------------------------------------- #
MATRIX_ID = "campaign-matrix-exp"

#: Mutable module config read when the matrix measure is *constructed*
#: (in the parent; the constructed measure is pickled to workers).
MATRIX = {"calls_dir": None, "fail_seed": None, "fail_value": None,
          "fail_after_iterations": None}


def _mark(calls_dir, prefix):
    with open(os.path.join(calls_dir, f"{prefix}-{uuid.uuid4().hex}"), "w"):
        pass


def _count(calls_dir, prefix):
    return len(glob.glob(os.path.join(calls_dir, f"{prefix}-*")))


class _RecordingIterationCheckpoint:
    """Wraps an iteration checkpoint: marks every simulated iteration and
    optionally simulates a kill after ``fail_after`` fresh saves."""

    def __init__(self, inner, calls_dir, seed, value, fail_after=None):
        self.inner = inner
        self.calls_dir = calls_dir
        self.seed = seed
        self.value = value
        self.fail_after = fail_after
        self.fresh = 0

    def load(self, index):
        return self.inner.load(index) if self.inner is not None else None

    def save(self, index, result):
        if self.inner is not None:
            self.inner.save(index, result)
        _mark(self.calls_dir, f"iter-{self.seed}")
        self.fresh += 1
        if self.fail_after is not None and self.fresh >= self.fail_after:
            raise RuntimeError(
                f"simulated kill after {self.fresh} iterations of value "
                f"{self.value}"
            )


@dataclass(frozen=True)
class MatrixMeasure:
    """Picklable measure running a real multi-iteration simulation.

    Every call leaves a ``measure-<seed>`` marker file and every freshly
    simulated iteration an ``iter-<seed>`` marker, so tests can count
    work across process boundaries.
    """

    scale: ExperimentScale
    calls_dir: str
    fail_seed: Optional[int] = None
    fail_value: Optional[float] = None
    fail_after_iterations: Optional[int] = None
    checkpoint: Optional[SweepCheckpoint] = None

    def __call__(self, side: float) -> Dict[str, float]:
        seed = self.scale.seed
        if (
            self.fail_seed is not None
            and seed == self.fail_seed
            and self.fail_value is not None
            and side >= self.fail_value
            and self.fail_after_iterations is None
        ):
            raise RuntimeError(f"simulated kill at value {side}")
        _mark(self.calls_dir, f"measure-{seed}")
        config = SimulationConfig(
            network=NetworkConfig(node_count=5, side=side, dimension=2),
            mobility=MobilitySpec.stationary(),
            steps=1,
            iterations=self.scale.iterations,
            seed=seed,
            workers=self.scale.workers,
        )
        sub = iteration_checkpoint_for(self.checkpoint, side)
        fail_after = (
            self.fail_after_iterations
            if self.fail_seed is not None
            and seed == self.fail_seed
            and self.fail_value is not None
            and side == self.fail_value
            else None
        )
        recorder = _RecordingIterationCheckpoint(
            sub, self.calls_dir, seed, side, fail_after=fail_after
        )
        statistics = collect_frame_statistics(config, checkpoint=recorder)
        pooled = np.concatenate([s.critical_ranges for s in statistics])
        return {"mean_critical": float(pooled.mean()),
                "max_critical": float(pooled.max())}

    def with_iteration_workers(self, count: int) -> "MatrixMeasure":
        return replace(self, scale=self.scale.with_workers(count))

    def with_value_checkpoint(self, checkpoint) -> "MatrixMeasure":
        return replace(self, checkpoint=checkpoint)


def _matrix_measure(scale: ExperimentScale) -> MatrixMeasure:
    return MatrixMeasure(
        scale=scale,
        calls_dir=MATRIX["calls_dir"],
        fail_seed=MATRIX["fail_seed"],
        fail_value=MATRIX["fail_value"],
        fail_after_iterations=MATRIX["fail_after_iterations"],
    )


def run_matrix_experiment(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    return sweep_parameter(
        "side",
        scale.sides,
        _matrix_measure(scale),
        workers=scale.sweep_workers,
        iteration_workers=scale.workers,
        checkpoint=checkpoint,
    )


def _matrix_iterations(scale: ExperimentScale) -> int:
    return scale.iterations


@pytest.fixture
def matrix_experiment(tmp_path):
    calls_dir = tmp_path / "calls"
    calls_dir.mkdir()
    MATRIX.update(
        calls_dir=str(calls_dir),
        fail_seed=None,
        fail_value=None,
        fail_after_iterations=None,
    )
    experiment = register_experiment(
        Experiment(
            identifier=MATRIX_ID,
            title="Matrix experiment",
            description="Real multi-iteration simulation for the matrix.",
            paper_reference="(test only)",
            run=run_matrix_experiment,
            parameter_name="side",
            sweep_measure=_matrix_measure,
            iterations_per_value=_matrix_iterations,
        )
    )
    yield experiment, str(calls_dir)
    _REGISTRY.pop(MATRIX_ID, None)


def matrix_spec():
    return CampaignSpec.from_dict({
        "name": "matrix",
        "experiments": [MATRIX_ID],
        "scale": "smoke",
        "overrides": {
            "sides": [40.0, 80.0, 120.0],
            "steps": 1,
            "iterations": 3,
            "stationary_iterations": 1,
        },
        "matrix": {"seed": [1, 2]},
    })


def runner_for(mode, budget, store):
    """One cell of the execution-shape x budget matrix."""
    spec = matrix_spec()
    if mode == "serial":
        return CampaignRunner(spec, store)
    if mode == "sweep-workers":
        return CampaignRunner(spec, store, sweep_workers=budget)
    if mode == "scheduler":
        return CampaignRunner(spec, store, total_workers=budget)
    raise AssertionError(mode)


@pytest.fixture(scope="module")
def matrix_reference(tmp_path_factory):
    """Cold serial reference run (no store, no checkpoints)."""
    calls_dir = tmp_path_factory.mktemp("reference-calls")
    MATRIX.update(
        calls_dir=str(calls_dir),
        fail_seed=None,
        fail_value=None,
        fail_after_iterations=None,
    )
    experiment = register_experiment(
        Experiment(
            identifier=MATRIX_ID,
            title="Matrix experiment",
            description="reference",
            paper_reference="(test only)",
            run=run_matrix_experiment,
            parameter_name="side",
            sweep_measure=_matrix_measure,
            iterations_per_value=_matrix_iterations,
        )
    )
    try:
        sweeps = {
            scenario.scenario_id: experiment.run(scenario.scale)
            for scenario in matrix_spec().scenarios()
        }
        measure_calls = _count(str(calls_dir), "measure")
        iteration_calls = _count(str(calls_dir), "iter")
        yield sweeps, measure_calls, iteration_calls
    finally:
        _REGISTRY.pop(MATRIX_ID, None)


class TestDeterminismMatrix:
    """{serial, sweep-workers, scheduler} x {budget 1, 2, 4} all produce
    results bit-identical to a cold serial run."""

    @pytest.mark.parametrize("budget", [1, 2, 4])
    @pytest.mark.parametrize("mode", ["serial", "sweep-workers", "scheduler"])
    def test_bit_identical_to_cold_serial_run(
        self, matrix_experiment, matrix_reference, tmp_path, mode, budget
    ):
        reference, _, reference_iterations = matrix_reference
        if mode == "serial" and budget > 1:
            pytest.skip("the serial shape has no budget knob")
        _, calls_dir = matrix_experiment
        result = runner_for(mode, budget, ResultStore(tmp_path / "store")).run()
        assert result.sweeps.keys() == reference.keys()
        for scenario_id, sweep in result.sweeps.items():
            assert sweep.parameter_name == reference[scenario_id].parameter_name
            assert sweep.rows == reference[scenario_id].rows
        # Exactly one simulation per iteration, never more.
        assert _count(calls_dir, "iter") == reference_iterations

    @pytest.mark.parametrize("mode", ["serial", "sweep-workers", "scheduler"])
    def test_warm_rerun_is_pure_cache_hit(
        self, matrix_experiment, matrix_reference, tmp_path, mode
    ):
        reference, _, _ = matrix_reference
        _, calls_dir = matrix_experiment
        store = ResultStore(tmp_path / "store")
        runner_for(mode, 2, store).run()
        baseline = _count(calls_dir, "measure")
        warm = runner_for(mode, 2, store).run()
        assert _count(calls_dir, "measure") == baseline
        assert warm.computed_values == 0
        assert warm.cache_hits == len(matrix_spec().scenarios())
        for scenario_id, sweep in warm.sweeps.items():
            assert sweep.rows == reference[scenario_id].rows


class TestKillAndResumeMatrix:
    """Kill at scenario / value / iteration granularity, resume under
    every execution shape, and end bit-identical with zero recomputation
    of finished work."""

    GRANULARITIES = {
        # seed 2 dies on its first value: scenario 1 is complete, scenario
        # 2 untouched -> resume at scenario granularity.
        "scenario": {"fail_seed": 2, "fail_value": 40.0},
        # seed 1 dies on its second value: value 40 checkpointed ->
        # resume at value granularity.
        "value": {"fail_seed": 1, "fail_value": 80.0},
        # seed 1 dies inside value 80 after 2 of 3 iterations -> resume
        # at iteration granularity.
        "iteration": {
            "fail_seed": 1,
            "fail_value": 80.0,
            "fail_after_iterations": 2,
        },
    }

    @pytest.mark.parametrize("granularity", ["scenario", "value", "iteration"])
    @pytest.mark.parametrize("mode", ["serial", "sweep-workers", "scheduler"])
    def test_resume_matches_uninterrupted(
        self, matrix_experiment, matrix_reference, tmp_path, mode, granularity
    ):
        reference, _, reference_iterations = matrix_reference
        _, calls_dir = matrix_experiment
        store = ResultStore(tmp_path / "store")

        MATRIX.update(self.GRANULARITIES[granularity])
        with pytest.raises(RuntimeError, match="simulated kill"):
            runner_for(mode, 2, store).run()

        # Resume with the failure cleared.
        MATRIX.update(fail_seed=None, fail_value=None, fail_after_iterations=None)
        resumed = runner_for(mode, 2, store).run()

        assert resumed.sweeps.keys() == reference.keys()
        for scenario_id, sweep in resumed.sweeps.items():
            assert sweep.rows == reference[scenario_id].rows
        # Zero recomputation of finished iterations: every iteration of
        # the campaign was simulated exactly once across kill + resume.
        assert _count(calls_dir, "iter") == reference_iterations

    def test_iteration_kill_leaves_resumable_iteration_entries(
        self, matrix_experiment, tmp_path
    ):
        """After an iteration-granular kill the store holds exactly the
        finished iterations of the killed value, and status() reports
        iteration coverage."""
        _, calls_dir = matrix_experiment
        store = ResultStore(tmp_path / "store")
        MATRIX.update(self.GRANULARITIES["iteration"])
        with pytest.raises(RuntimeError, match="simulated kill"):
            CampaignRunner(matrix_spec(), store).run()
        MATRIX.update(fail_seed=None, fail_value=None, fail_after_iterations=None)

        statuses = CampaignRunner(matrix_spec(), store).status()
        # seed=1: value 40 complete (3 iterations subsumed by its row),
        # value 80 holds 2 of its 3 iteration entries.
        assert statuses[0].state == "partial (1/3 values, 5/9 iterations)"
        assert statuses[0].checkpointed_iterations == 5
        assert statuses[0].total_iterations == 9

        before = _count(calls_dir, "iter")
        CampaignRunner(matrix_spec(), store).run()
        # Only the 4 missing iterations of seed 1 (1 of value 80, 3 of
        # value 120) and all 9 of seed 2 were simulated on resume.
        assert _count(calls_dir, "iter") == before + 4 + 9


class TestSchedulerSemantics:
    def test_shared_payload_computed_once_under_scheduler(
        self, counting_experiment, store
    ):
        """Two scenarios sharing a cache payload collapse onto one job."""
        sibling = register_experiment(
            Experiment(
                identifier=SIBLING_ID,
                title="Synthetic sibling experiment",
                description="Shares the counting experiment's computation.",
                paper_reference="(test only)",
                run=run_counting_experiment,
                cache_payload=shared_payload,
            )
        )
        try:
            _REGISTRY[EXPERIMENT_ID] = Experiment(
                identifier=EXPERIMENT_ID,
                title=counting_experiment.title,
                description=counting_experiment.description,
                paper_reference=counting_experiment.paper_reference,
                run=run_counting_experiment,
                cache_payload=shared_payload,
            )
            spec = make_spec(
                experiments=[EXPERIMENT_ID, SIBLING_ID], matrix={"seed": [1]}
            )
            # Atomic jobs (no sweep_measure registered) run whole in one
            # worker process; with budget 1 and fork they share the
            # parent's CALLS dict copy-on-write, so count via the store.
            result = CampaignRunner(spec, store, total_workers=1).run()
            assert result.cache_hits == 1
            assert [outcome.cache_hit for outcome in result.outcomes] == [
                False,
                True,
            ]
            assert (
                result.outcomes[0].sweep.rows == result.outcomes[1].sweep.rows
            )
        finally:
            _REGISTRY.pop(SIBLING_ID, None)

    def test_scheduler_rejects_non_positive_budget(self, counting_experiment, store):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            CampaignRunner(make_spec(), store, total_workers=0).run()


class TestSchedulerTaskWidth:
    def test_width_reflects_measure_inner_parallelism(
        self, matrix_experiment, store
    ):
        """Tasks are capped at their real inner parallelism: the declared
        iteration count when present, the whole budget for measures that
        can resize nested pools, and 1 for measures that cannot use extra
        workers (regression: measures with resizable pools but no
        iterations_per_value used to be pinned at width 1 and never
        received rebalanced workers)."""
        import dataclasses

        from repro.campaigns.scheduler import CampaignScheduler, _SweepJob

        experiment, _ = matrix_experiment
        spec = matrix_spec()
        scenario = spec.scenarios()[0]
        scheduler = CampaignScheduler(
            CampaignRunner(spec, store, total_workers=8), 8
        )

        def prepared(candidate):
            job = _SweepJob(
                key=scenario_sweep_key(candidate, scenario.scale),
                experiment=candidate,
                scenario=scenario,
            )
            scheduler._prepare(job, lambda message: None)
            return job

        # iterations_per_value declared: width = iteration count.
        assert prepared(experiment).width == 3

        # No declared iterations, but the measure resizes its nested
        # pools (with_iteration_workers): width opens to the budget.
        unbounded = dataclasses.replace(experiment, iterations_per_value=None)
        assert prepared(unbounded).width == 8

        # A measure with no way to use extra workers stays at width 1.
        fixed = dataclasses.replace(
            experiment,
            iterations_per_value=None,
            sweep_measure=lambda scale: (lambda value: {"metric": value}),
        )
        assert prepared(fixed).width == 1

    def test_width_folds_shard_capacity_for_long_trajectories(
        self, matrix_experiment, store
    ):
        """With iterations declared AND a long trajectory, spare workers
        fold into intra-iteration shards: width = iterations x shards."""
        from repro.campaigns.scheduler import CampaignScheduler, _SweepJob
        from repro.simulation.sharding import MIN_SHARD_STEPS, max_useful_shards

        experiment, _ = matrix_experiment
        spec = CampaignSpec.from_dict({
            "name": "matrix-long",
            "experiments": [MATRIX_ID],
            "scale": "smoke",
            "overrides": {
                "sides": [40.0],
                "steps": 4 * MIN_SHARD_STEPS,
                "iterations": 3,
                "stationary_iterations": 1,
            },
        })
        scenario = spec.scenarios()[0]
        scheduler = CampaignScheduler(
            CampaignRunner(spec, store, total_workers=8), 8
        )
        job = _SweepJob(
            key=scenario_sweep_key(experiment, scenario.scale),
            experiment=experiment,
            scenario=scenario,
        )
        scheduler._prepare(job, lambda message: None)
        assert max_useful_shards(scenario.scale.steps) == 4
        assert job.width == 3 * 4


class TestSchedulerProgress:
    def test_per_task_completion_events_stream(self, matrix_experiment, store):
        """The scheduler reports every finished task as a structured event
        (scenario, value, coverage), not just one per finished scenario."""
        from repro.campaigns.progress import ScenarioCompleted, TaskCompleted

        experiment, _ = matrix_experiment
        spec = matrix_spec()
        events = []
        CampaignRunner(spec, store, total_workers=2).run(progress=events.append)
        scenario_ids = [scenario.scenario_id for scenario in spec.scenarios()]
        values = [40.0, 80.0, 120.0]
        for scenario_id in scenario_ids:
            tasks = [
                event
                for event in events
                if isinstance(event, TaskCompleted)
                and event.scenario_id == scenario_id
            ]
            # One completion event per parameter value of the scenario.
            assert len(tasks) == len(values), events
            assert sorted(task.value for task in tasks) == values
            # Events carry coverage counts and the task's worker shape as
            # typed fields — no text parsing required.
            assert {task.values_total for task in tasks} == {len(values)}
            assert any(task.values_done == len(values) for task in tasks)
            assert all(task.workers >= 1 for task in tasks)
            assert all(task.iterations == 3 for task in tasks)
            assert not any(task.atomic for task in tasks)
            # The scenario summary event still follows the stream.
            assert any(
                isinstance(event, ScenarioCompleted)
                and event.scenario_id == scenario_id
                for event in events
            )

    def test_events_render_to_stable_text_lines(self, matrix_experiment, store):
        """``render`` (what the CLI prints via ``as_text``) keeps the
        established one-line format for every emitted event."""
        from repro.campaigns.progress import (
            ScenarioCompleted,
            TaskCompleted,
            as_text,
            render,
        )

        experiment, _ = matrix_experiment
        spec = matrix_spec()
        events, lines = [], []

        def tee(event):
            events.append(event)
            as_text(lines.append)(event)

        CampaignRunner(spec, store, total_workers=2).run(progress=tee)
        assert lines == [render(event) for event in events]
        task_lines = [
            render(event) for event in events if isinstance(event, TaskCompleted)
        ]
        assert any("value 40 done" in line for line in task_lines)
        assert any("3/3 values" in line for line in task_lines)
        assert all(
            "iteration(s)" in line and "workers=" in line for line in task_lines
        )
        summary_lines = [
            render(event)
            for event in events
            if isinstance(event, ScenarioCompleted)
        ]
        assert all("computed" in line and "resumed" in line for line in summary_lines)

    def test_cache_hit_event_is_structured(self, matrix_experiment, store):
        from repro.campaigns.progress import CacheHit, render

        experiment, _ = matrix_experiment
        spec = matrix_spec()
        CampaignRunner(spec, store, total_workers=2).run()
        events = []
        CampaignRunner(spec, store, total_workers=2).run(progress=events.append)
        hits = [event for event in events if isinstance(event, CacheHit)]
        assert len(hits) == len(spec.scenarios())
        for hit in hits:
            assert hit.key  # the full store key rides along for consumers
            assert f"cache hit ({hit.key[:12]})" in render(hit)

    def test_progress_events_preserve_results(self, matrix_experiment, store):
        """Streaming progress must not disturb scheduling semantics."""
        experiment, _ = matrix_experiment
        spec = matrix_spec()
        silent_store = ResultStore(store.root.parent / "silent")
        loud = CampaignRunner(spec, store, total_workers=2).run(
            progress=lambda event: None
        )
        silent = CampaignRunner(spec, silent_store, total_workers=2).run()
        for mine, theirs in zip(loud.outcomes, silent.outcomes):
            assert mine.sweep.rows == theirs.sweep.rows
