"""Campaign semantics tests: caching, kill-and-resume, corruption recovery.

A synthetic experiment with an instrumented measure is registered for the
duration of each test, so the tests can assert *exactly* how many measure
calls a campaign performed — the acceptance criteria are "zero new
simulation calls on a warm re-run" and "a killed campaign resumes where
it stopped with results equal to an uninterrupted run".
"""

from dataclasses import dataclass
from typing import Dict, Optional

import pytest

from repro.campaigns import CampaignRunner, CampaignSpec
from repro.campaigns.runner import scenario_sweep_key
from repro.experiments.registry import (
    _REGISTRY,
    Experiment,
    ExperimentScale,
    get_experiment,
    register_experiment,
)
from repro.simulation.sweep import SweepCheckpoint, SweepResult, sweep_parameter
from repro.store import ResultStore

EXPERIMENT_ID = "campaign-test-exp"
SIBLING_ID = "campaign-test-exp-sibling"


def shared_payload(scale: ExperimentScale):
    """Cache payload shared by the counting experiment and its sibling."""
    from repro.store import scale_payload

    return {"computation": "counting-shared", "scale": scale_payload(scale)}

#: Module-level instrumentation so the (serial, in-process) measures can
#: count calls and simulate a mid-campaign kill.
CALLS = {"count": 0}
FAIL_AT = {"value": None}


@dataclass(frozen=True)
class CountingMeasure:
    seed: int

    def __call__(self, value: float) -> Dict[str, float]:
        if FAIL_AT["value"] is not None and value >= FAIL_AT["value"]:
            raise RuntimeError(f"simulated kill at value {value}")
        CALLS["count"] += 1
        return {"metric": value * 2.0 + self.seed, "seed": float(self.seed)}


def run_counting_experiment(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    return sweep_parameter(
        "side",
        scale.sides,
        CountingMeasure(seed=scale.seed or 0),
        checkpoint=checkpoint,
    )


@pytest.fixture
def counting_experiment():
    CALLS["count"] = 0
    FAIL_AT["value"] = None
    experiment = register_experiment(
        Experiment(
            identifier=EXPERIMENT_ID,
            title="Synthetic counting experiment",
            description="Counts measure calls for campaign-semantics tests.",
            paper_reference="(test only)",
            run=run_counting_experiment,
        )
    )
    yield experiment
    _REGISTRY.pop(EXPERIMENT_ID, None)
    FAIL_AT["value"] = None


def make_spec(**overrides):
    document = {
        "name": "semantics",
        "experiments": [EXPERIMENT_ID],
        "scale": "smoke",
        "overrides": {
            "sides": [10.0, 20.0, 30.0],
            "steps": 1,
            "iterations": 1,
            "stationary_iterations": 1,
        },
        "matrix": {"seed": [1, 2]},
    }
    document.update(overrides)
    return CampaignSpec.from_dict(document)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestWarmRerun:
    def test_identical_spec_rerun_is_pure_cache_hit(self, counting_experiment, store):
        spec = make_spec()
        cold = CampaignRunner(spec, store).run()
        cold_calls = CALLS["count"]
        assert cold_calls == 2 * 3  # two seeds x three sides
        assert cold.cache_hits == 0

        warm = CampaignRunner(spec, store).run()
        assert CALLS["count"] == cold_calls  # zero new measure calls
        assert warm.cache_hits == len(spec.scenarios())
        assert warm.computed_values == 0
        # Bit-identical to the cold run, scenario by scenario, row by row.
        assert warm.sweeps.keys() == cold.sweeps.keys()
        for scenario_id, sweep in warm.sweeps.items():
            assert sweep.rows == cold.sweeps[scenario_id].rows
            assert sweep.parameter_name == cold.sweeps[scenario_id].parameter_name

    def test_no_resume_forces_recompute(self, counting_experiment, store):
        spec = make_spec()
        CampaignRunner(spec, store).run()
        baseline = CALLS["count"]
        CampaignRunner(spec, store).run(resume=False)
        assert CALLS["count"] == baseline * 2

    def test_shared_computation_cached_within_one_run(
        self, counting_experiment, store
    ):
        """Experiments registering the same cache_payload share one sweep —
        including on a --no-resume run, which must recompute shared sweeps
        once per run, not once per scenario."""
        sibling = register_experiment(
            Experiment(
                identifier=SIBLING_ID,
                title="Synthetic sibling experiment",
                description="Shares the counting experiment's computation.",
                paper_reference="(test only)",
                run=run_counting_experiment,
                cache_payload=shared_payload,
            )
        )
        try:
            _REGISTRY[EXPERIMENT_ID] = Experiment(
                identifier=EXPERIMENT_ID,
                title=counting_experiment.title,
                description=counting_experiment.description,
                paper_reference=counting_experiment.paper_reference,
                run=run_counting_experiment,
                cache_payload=shared_payload,
            )
            spec = make_spec(
                experiments=[EXPERIMENT_ID, SIBLING_ID], matrix={"seed": [1]}
            )
            cold = CampaignRunner(spec, store).run()
            assert CALLS["count"] == 3  # one shared sweep, not two
            assert cold.cache_hits == 1

            fresh = CampaignRunner(spec, store).run(resume=False)
            assert CALLS["count"] == 6  # recomputed once, served twice
            assert fresh.cache_hits == 1
        finally:
            _REGISTRY.pop(SIBLING_ID, None)


class TestKillAndResume:
    def test_killed_campaign_resumes_and_matches_uninterrupted(
        self, counting_experiment, store, tmp_path
    ):
        spec = make_spec()
        # Uninterrupted reference run against its own store.
        reference = CampaignRunner(spec, ResultStore(tmp_path / "ref")).run()
        reference_calls = CALLS["count"]

        # "Kill" the campaign while measuring value 20.0 of the first
        # scenario: value 10.0 has been checkpointed, the rest has not.
        CALLS["count"] = 0
        FAIL_AT["value"] = 20.0
        with pytest.raises(RuntimeError):
            CampaignRunner(spec, store).run()
        assert CALLS["count"] == 1

        statuses = CampaignRunner(spec, store).status()
        assert statuses[0].state == "partial (1/3)"
        assert all(not status.complete for status in statuses)

        # Resume: only the unfinished values are measured.
        FAIL_AT["value"] = None
        resumed = CampaignRunner(spec, store).run()
        assert CALLS["count"] == reference_calls  # 1 killed-run call + the rest
        resumed_outcome = resumed.outcomes[0]
        assert resumed_outcome.loaded_values == 1
        assert resumed_outcome.computed_values == 2

        # The resumed campaign equals the uninterrupted one, bit for bit.
        assert resumed.sweeps.keys() == reference.sweeps.keys()
        for scenario_id, sweep in resumed.sweeps.items():
            assert sweep.rows == reference.sweeps[scenario_id].rows

        # And a final re-run over the healed store is a pure cache hit.
        before = CALLS["count"]
        final = CampaignRunner(spec, store).run()
        assert CALLS["count"] == before
        assert final.cache_hits == len(spec.scenarios())


class TestCorruption:
    def corrupt_scenario_entry(self, spec, store):
        scenario = spec.scenarios()[0]
        key = scenario_sweep_key(
            get_experiment(scenario.experiment_id), scenario.scale
        )
        entry_dir = store._entry_dir(key)
        (entry_dir / "data.json").write_text('{"tampered": true}')
        return key

    def test_corrupt_entry_recomputed_not_returned(self, counting_experiment, store):
        spec = make_spec()
        cold = CampaignRunner(spec, store).run()
        baseline = CALLS["count"]
        key = self.corrupt_scenario_entry(spec, store)

        rerun = CampaignRunner(spec, store).run()
        # The corrupted scenario was recomputed from its (intact) per-value
        # checkpoints: no new measure calls, but no tampered data either.
        assert rerun.outcomes[0].cache_hit is False
        assert rerun.outcomes[0].loaded_values == 3
        assert CALLS["count"] == baseline
        assert rerun.sweeps.keys() == cold.sweeps.keys()
        for scenario_id, sweep in rerun.sweeps.items():
            assert sweep.rows == cold.sweeps[scenario_id].rows
        # The healed entry is intact again.
        assert store.get(key).rows == cold.outcomes[0].sweep.rows

    def test_corrupt_entry_and_checkpoints_fully_recomputed(
        self, counting_experiment, store
    ):
        spec = make_spec()
        cold = CampaignRunner(spec, store).run()
        baseline = CALLS["count"]
        self.corrupt_scenario_entry(spec, store)
        # Wipe the first scenario's checkpoints too: full recompute needed.
        runner = CampaignRunner(spec, store)
        scenario = spec.scenarios()[0]
        experiment = get_experiment(scenario.experiment_id)
        for row_key in runner._row_keys(experiment, scenario):
            store.evict(row_key)

        rerun = runner.run()
        assert CALLS["count"] == baseline + 3
        assert rerun.sweeps[scenario.scenario_id].rows == cold.sweeps[
            scenario.scenario_id
        ].rows


class TestClean:
    def test_clean_removes_exactly_the_grid_entries(self, counting_experiment, store):
        spec = make_spec()
        CampaignRunner(spec, store).run()
        # 2 scenarios x (1 sweep + 3 rows) = 8 entries.
        assert len(store) == 8
        removed = CampaignRunner(spec, store).clean()
        assert removed == 8
        assert len(store) == 0
        statuses = CampaignRunner(spec, store).status()
        assert all(status.state == "missing" for status in statuses)
