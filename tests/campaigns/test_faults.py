"""Chaos test matrix: injected faults x worker budgets.

Satellite acceptance for the fault-tolerance PR: every failure mode the
supervision layer claims to survive — a SIGKILLed worker, a task
exception, a hung task, checkpoint writes failing with ENOSPC, a corrupt
store entry — is injected deterministically (via :mod:`repro.faults`)
into a real campaign under budgets 1, 2 and 4, and every cell asserts

* the campaign completes and its rows are **bit-identical** to a
  fault-free reference run, and
* no checkpointed work is recomputed: filesystem markers count every
  successful measure execution across worker processes, and the count
  equals the reference count exactly (failed attempts die *before* the
  marker, so a transient fault plus its retry leaves one marker, same
  as a healthy run).

Below the matrix: quarantine semantics (poison tasks surface in
``campaign status``, ``campaign clean`` drops them, the CLI exits
non-zero), store-level transient-IO retries, graceful degradation and
the fault-injection primitives themselves.
"""

import glob
import json
import os
import uuid
import warnings
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, Optional

import pytest

from repro import faults
from repro.campaigns import CampaignRunner, CampaignSpec
from repro.campaigns.progress import (
    EntryEvicted,
    StoreDegraded,
    TaskFailed,
    TaskQuarantined,
    TaskRetried,
)
from repro.campaigns.runner import scenario_sweep_key
from repro.exceptions import ConfigurationError
from repro.faults import FaultSpec, InjectedFault
from repro.experiments.registry import (
    _REGISTRY,
    Experiment,
    ExperimentScale,
    register_experiment,
)
from repro.simulation.sweep import SweepCheckpoint, SweepResult, sweep_parameter
from repro.store import ResultStore, StoreDegradedWarning
from repro.supervision import RetryPolicy, run_supervised

CHAOS_ID = "chaos-test-exp"

#: Mutable module config read when the measure is constructed (in the
#: parent; the constructed measure pickles into pool workers).
CHAOS = {"calls_dir": None}


def _mark(calls_dir, prefix):
    with open(os.path.join(calls_dir, f"{prefix}-{uuid.uuid4().hex}"), "w"):
        pass


def _count(calls_dir, prefix="measure"):
    return len(glob.glob(os.path.join(calls_dir, f"{prefix}-*")))


@dataclass(frozen=True)
class ChaosMeasure:
    """Picklable measure leaving one marker per *successful* execution.

    The ``measure`` fault site fires at :func:`repro.simulation.sweep.
    measure_row` entry — before this body runs — so killed/raised/hung
    attempts leave no marker and the marker count equals the number of
    completed measure executions, across all processes.
    """

    seed: int
    calls_dir: str

    def __call__(self, value: float) -> Dict[str, float]:
        _mark(self.calls_dir, f"measure-{self.seed}")
        return {
            "metric": value * 2.0 + self.seed,
            "root": float(value**0.5) + self.seed,
        }


def _chaos_measure(scale: ExperimentScale) -> ChaosMeasure:
    return ChaosMeasure(seed=scale.seed or 0, calls_dir=CHAOS["calls_dir"])


def run_chaos_experiment(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    return sweep_parameter(
        "side",
        scale.sides,
        _chaos_measure(scale),
        workers=scale.sweep_workers,
        checkpoint=checkpoint,
    )


@pytest.fixture
def chaos_experiment(tmp_path):
    calls_dir = tmp_path / "calls"
    calls_dir.mkdir()
    CHAOS["calls_dir"] = str(calls_dir)
    experiment = register_experiment(
        Experiment(
            identifier=CHAOS_ID,
            title="Chaos experiment",
            description="Counts successful measures for the fault matrix.",
            paper_reference="(test only)",
            run=run_chaos_experiment,
            parameter_name="side",
            sweep_measure=_chaos_measure,
        )
    )
    yield experiment, str(calls_dir)
    _REGISTRY.pop(CHAOS_ID, None)


def chaos_spec():
    return CampaignSpec.from_dict({
        "name": "chaos",
        "experiments": [CHAOS_ID],
        "scale": "smoke",
        "overrides": {
            "sides": [10.0, 20.0, 30.0],
            "steps": 1,
            "iterations": 1,
            "stationary_iterations": 1,
        },
        "matrix": {"seed": [1, 2]},
    })


@pytest.fixture(scope="module")
def chaos_reference(tmp_path_factory):
    """Fault-free serial reference: rows per scenario + measure count."""
    calls_dir = tmp_path_factory.mktemp("reference-calls")
    CHAOS["calls_dir"] = str(calls_dir)
    experiment = register_experiment(
        Experiment(
            identifier=CHAOS_ID,
            title="Chaos experiment",
            description="reference",
            paper_reference="(test only)",
            run=run_chaos_experiment,
            parameter_name="side",
            sweep_measure=_chaos_measure,
        )
    )
    try:
        sweeps = {
            scenario.scenario_id: experiment.run(scenario.scale)
            for scenario in chaos_spec().scenarios()
        }
        yield sweeps, _count(str(calls_dir))
    finally:
        _REGISTRY.pop(CHAOS_ID, None)


def assert_bit_identical(result, reference):
    assert result.sweeps.keys() == reference.keys()
    for scenario_id, sweep in result.sweeps.items():
        assert sweep.rows == reference[scenario_id].rows


# --------------------------------------------------------------------------- #
# The chaos matrix
# --------------------------------------------------------------------------- #
#: fault kind -> (spec list, runner kwargs).  ``kill`` SIGKILLs the pool
#: worker running the 2nd measure task; ``raise`` fails it with an
#: exception; ``hang`` wedges it until the task lease expires; ``enospc``
#: fails every sweep-row checkpoint write (persistent -> degradation);
#: ``corrupt`` flips payload bytes of every landed sweep entry (healed on
#: the next run).  All are transient-by-ordinal except where noted, so
#: retries pass the site cleanly.
FAULT_KINDS = {
    "kill": (
        [FaultSpec(site="measure", action="kill", at=2)],
        {"max_retries": 2},
    ),
    "raise": (
        [FaultSpec(site="measure", action="raise", at=2)],
        {"max_retries": 2, "retry_backoff": 0.05},
    ),
    "hang": (
        [FaultSpec(site="measure", action="hang", at=2, seconds=30.0)],
        {"max_retries": 2, "task_timeout": 1.0, "retry_backoff": 0.05},
    ),
    "enospc": (
        [
            FaultSpec(
                site="store.put",
                action="io-error",
                error="ENOSPC",
                match="sweep-row:",
                count=0,
            )
        ],
        {"max_retries": 2},
    ),
    "corrupt": (
        [FaultSpec(site="store.put", action="corrupt", match="sweep:", count=0)],
        {"max_retries": 2},
    ),
}


class TestChaosMatrix:
    """{kill, raise, hang, enospc, corrupt} x {budget 1, 2, 4}: the
    campaign completes bit-identically to a fault-free run with zero
    recomputation of checkpointed work."""

    @pytest.mark.parametrize("budget", [1, 2, 4])
    @pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
    def test_faulted_run_matches_reference(
        self, chaos_experiment, chaos_reference, tmp_path, kind, budget
    ):
        reference, reference_calls = chaos_reference
        _, calls_dir = chaos_experiment
        specs, kwargs = FAULT_KINDS[kind]
        store = ResultStore(tmp_path / "store")
        events = []
        with faults.active(specs, tmp_path / "faultstate"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", StoreDegradedWarning)
                result = CampaignRunner(
                    chaos_spec(), store, total_workers=budget, **kwargs
                ).run(progress=events.append)

        assert result.quarantined_tasks == 0
        assert_bit_identical(result, reference)
        # Zero recomputation of checkpointed work.  For faults that leave
        # the pool intact every value's measure executes exactly once
        # across all attempts (failed attempts die before the marker).
        # A kill / lease-expiry tears down the whole pool, so up to
        # ``budget - 1`` sibling tasks can lose finished-but-unreturned
        # (hence never-checkpointed) results and re-measure once.
        executed = _count(calls_dir)
        if kind in ("kill", "hang"):
            assert reference_calls <= executed <= reference_calls + budget - 1
        else:
            assert executed == reference_calls

        # No stale staging directories survive the run — dead writers'
        # leftovers are swept before each pool respawn, live writers
        # finish their renames.
        staging = store.root / "staging"
        assert not staging.is_dir() or list(staging.iterdir()) == []

        if kind in ("kill", "raise", "hang"):
            assert any(isinstance(event, TaskFailed) for event in events)
            assert any(isinstance(event, TaskRetried) for event in events)
        if kind == "enospc":
            # Row checkpointing degraded to memory; the campaign said so
            # and still persisted the complete sweeps.
            assert any(isinstance(event, StoreDegraded) for event in events)
            for scenario in chaos_spec().scenarios():
                key = scenario_sweep_key(
                    _REGISTRY[CHAOS_ID], scenario.scale
                )
                assert store.contains(key)

    @pytest.mark.parametrize("budget", [1, 2, 4])
    def test_corrupted_entries_heal_on_next_run(
        self, chaos_experiment, chaos_reference, tmp_path, budget
    ):
        """A ``corrupt`` fault damages every landed sweep entry; the next
        (fault-free) run quarantines them with provenance and reassembles
        bit-identically from the intact row checkpoints — zero measures."""
        reference, reference_calls = chaos_reference
        _, calls_dir = chaos_experiment
        specs, kwargs = FAULT_KINDS["corrupt"]
        store = ResultStore(tmp_path / "store")
        with faults.active(specs, tmp_path / "faultstate"):
            CampaignRunner(
                chaos_spec(), store, total_workers=budget, **kwargs
            ).run()
        assert _count(calls_dir) == reference_calls

        events = []
        healed = CampaignRunner(chaos_spec(), store).run(progress=events.append)
        assert any(isinstance(event, EntryEvicted) for event in events)
        assert_bit_identical(healed, reference)
        assert _count(calls_dir) == reference_calls  # rebuilt from rows
        # The damaged entries moved aside with provenance, not vanished.
        quarantined = store.quarantined_entries()
        assert quarantined
        provenance = store.entry_provenance(quarantined[0])
        assert provenance is not None and provenance["reason"]


# --------------------------------------------------------------------------- #
# Quarantine semantics
# --------------------------------------------------------------------------- #
PERSISTENT_FAILURE = [
    FaultSpec(site="measure", action="raise", match="side=20", count=0)
]


class TestQuarantine:
    def test_scheduler_quarantines_poison_task_and_continues(
        self, chaos_experiment, chaos_reference, tmp_path
    ):
        """A task that fails on every attempt is quarantined after its
        retries; the rest of the campaign completes, partial results are
        preserved, and status / clean expose and drop the records."""
        reference, _ = chaos_reference
        _, calls_dir = chaos_experiment
        store = ResultStore(tmp_path / "store")
        events = []
        with faults.active(PERSISTENT_FAILURE, tmp_path / "faultstate"):
            result = CampaignRunner(
                chaos_spec(),
                store,
                total_workers=2,
                max_retries=1,
                retry_backoff=0.05,
            ).run(progress=events.append)

        # Both scenarios lost their side=20 value; everything else landed.
        assert result.quarantined_tasks == 2
        assert result.sweeps == {}  # no scenario completed fully
        assert all(outcome.sweep is None for outcome in result.outcomes)
        quarantines = [e for e in events if isinstance(e, TaskQuarantined)]
        assert len(quarantines) == 2
        assert all(event.value == 20.0 for event in quarantines)
        assert all(event.attempts == 2 for event in quarantines)
        # 2 scenarios x values {10, 30} measured; side=20 never succeeded.
        assert _count(calls_dir) == 4

        statuses = CampaignRunner(chaos_spec(), store).status()
        assert all(
            status.state == "partial (2/3, 1 quarantined)"
            for status in statuses
        )
        assert len(store.poison_keys()) == 2

        # The failure cleared, a plain re-run finishes the campaign —
        # measuring only the two missing values — bit-identically.
        resumed = CampaignRunner(chaos_spec(), store, total_workers=2).run()
        assert_bit_identical(resumed, reference)
        assert _count(calls_dir) == 6

        # Poison records linger for post-mortem until clean drops them.
        assert len(store.poison_keys()) == 2
        removed = CampaignRunner(chaos_spec(), store).clean()
        assert store.poison_keys() == []
        assert removed >= 2
        assert all(
            status.state == "missing"
            for status in CampaignRunner(chaos_spec(), store).status()
        )

    def test_serial_loop_quarantines_scenario(
        self, chaos_experiment, tmp_path
    ):
        """The serial path supervises at scenario granularity: retries
        resume from checkpointed rows, then the scenario is quarantined
        and the campaign continues."""
        _, calls_dir = chaos_experiment
        store = ResultStore(tmp_path / "store")
        events = []
        with faults.active(PERSISTENT_FAILURE, tmp_path / "faultstate"):
            result = CampaignRunner(
                chaos_spec(), store, max_retries=1, retry_backoff=0.05
            ).run(progress=events.append)
        assert result.quarantined_tasks == 2
        assert any(isinstance(event, TaskRetried) for event in events)
        assert sum(1 for e in events if isinstance(e, TaskQuarantined)) == 2
        # side=10 measured once per scenario (the retry loads it from the
        # checkpoint); side=20 failed every attempt; side=30 never ran
        # (the serial sweep stops at the failing value).
        assert _count(calls_dir) == 2
        statuses = CampaignRunner(chaos_spec(), store).status()
        assert all(
            status.state == "partial (1/3, 1 quarantined)"
            for status in statuses
        )

    def test_default_policy_still_fails_fast(self, chaos_experiment, tmp_path):
        """Without --max-retries the first failure aborts the campaign,
        exactly as before supervision existed — for both paths."""
        store = ResultStore(tmp_path / "store")
        with faults.active(PERSISTENT_FAILURE, tmp_path / "fs1"):
            with pytest.raises(InjectedFault):
                CampaignRunner(chaos_spec(), store).run()
        with faults.active(PERSISTENT_FAILURE, tmp_path / "fs2"):
            with pytest.raises(InjectedFault):
                CampaignRunner(
                    chaos_spec(),
                    ResultStore(tmp_path / "store2"),
                    total_workers=2,
                ).run()

    def test_cli_reports_quarantine_and_exits_nonzero(
        self, chaos_experiment, tmp_path, capsys
    ):
        from repro.cli import main

        spec_path = tmp_path / "chaos.json"
        spec_path.write_text(json.dumps({
            "name": "chaos",
            "experiments": [CHAOS_ID],
            "scale": "smoke",
            "overrides": {
                "sides": [10.0, 20.0, 30.0],
                "steps": 1,
                "iterations": 1,
                "stationary_iterations": 1,
            },
            "matrix": {"seed": [1, 2]},
        }))
        store_dir = tmp_path / "store"
        with faults.active(PERSISTENT_FAILURE, tmp_path / "faultstate"):
            code = main([
                "campaign", "run", str(spec_path),
                "--store", str(store_dir),
                "--total-workers", "2",
                "--max-retries", "1",
                "--retry-backoff", "0.05",
                "--quiet",
            ])
        out = capsys.readouterr().out
        assert code == 1
        assert "quarantined" in out

        code = main([
            "campaign", "status", str(spec_path), "--store", str(store_dir)
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 quarantined" in out


# --------------------------------------------------------------------------- #
# Store-level behaviour: transient retries, degradation, staging hygiene
# --------------------------------------------------------------------------- #
class TestStoreFaults:
    def test_transient_eio_on_get_is_retried(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("d" * 64, {"metric": 1.0})
        with faults.active(
            [FaultSpec(site="store.get", action="io-error", error="EIO", count=2)],
            tmp_path / "faultstate",
        ):
            assert store.get("d" * 64) == {"metric": 1.0}

    def test_persistent_eio_on_get_propagates(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("d" * 64, {"metric": 1.0})
        with faults.active(
            [FaultSpec(site="store.get", action="io-error", error="EIO", count=0)],
            tmp_path / "faultstate",
        ):
            with pytest.raises(OSError):
                store.get("d" * 64)

    def test_transient_eio_on_put_is_retried(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with faults.active(
            [FaultSpec(site="store.put", action="io-error", error="EIO", count=2)],
            tmp_path / "faultstate",
        ):
            store.put("d" * 64, {"metric": 2.0})
        assert store.get("d" * 64) == {"metric": 2.0}

    def test_enospc_is_not_retried_and_propagates(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with faults.active(
            [FaultSpec(site="store.put", action="io-error", error="ENOSPC")],
            tmp_path / "faultstate",
        ):
            with pytest.raises(OSError) as excinfo:
                store.put("d" * 64, {"metric": 2.0})
        import errno

        assert excinfo.value.errno == errno.ENOSPC

    def test_sweep_dead_staging_removes_only_dead_writers(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        staging = store.root / "staging"
        staging.mkdir(parents=True, exist_ok=True)
        # A plausibly-unused pid: max_pid + something is never alive.
        dead = staging / "999999999-deadbeef"
        dead.mkdir()
        alive = staging / f"{os.getpid()}-cafebabe"
        alive.mkdir()
        unowned = staging / "tmp-no-pid-prefix"
        unowned.mkdir()
        removed = store.sweep_dead_staging()
        assert removed == 1
        assert not dead.exists()
        assert alive.exists()
        assert unowned.exists()  # age-gated, too young to sweep

    def test_quarantine_entry_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = "a" * 64
        store.put(key, {"metric": 3.0})
        assert store.quarantine_entry(key, reason="checksum mismatch")
        assert not store.contains(key)
        assert store.quarantined_entries() == [key]
        provenance = store.entry_provenance(key)
        assert provenance["reason"] == "checksum mismatch"
        assert store.drop_quarantined_entry(key)
        assert store.quarantined_entries() == []

    def test_poison_records_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = "b" * 64
        store.record_poison(key, {"error": "boom", "attempts": 3})
        assert store.poison_keys() == [key]
        record = store.poison(key)
        assert record["error"] == "boom" and record["key"] == key
        assert store.clear_poison(key)
        assert store.poison_keys() == []


# --------------------------------------------------------------------------- #
# Telemetry sink faults
# --------------------------------------------------------------------------- #
class TestTelemetryFlushFault:
    """A failing (or full) telemetry sink never fails a campaign.

    The ``telemetry.flush`` site fires on every trace-buffer write: the
    tracer degrades to dropped spans with one warning per process, and
    the campaign completes bit-identically with zero recomputation —
    observability is strictly an observer."""

    @pytest.mark.parametrize("budget", [1, 2])
    def test_flush_io_error_degrades_to_dropped_spans(
        self, chaos_experiment, chaos_reference, tmp_path, budget
    ):
        from repro import telemetry
        from repro.telemetry import report as telemetry_report

        reference, reference_calls = chaos_reference
        _, calls_dir = chaos_experiment
        specs = [
            FaultSpec(site="telemetry.flush", action="io-error", count=0)
        ]
        store = ResultStore(tmp_path / "store")
        with faults.active(specs, tmp_path / "faultstate"):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = CampaignRunner(
                    chaos_spec(), store, total_workers=budget
                ).run()

        assert result.quarantined_tasks == 0
        assert_bit_identical(result, reference)
        assert _count(calls_dir) == reference_calls

        # One warning in this process, however many flushes failed.
        degraded = [
            w
            for w in caught
            if issubclass(w.category, telemetry.TelemetryDegradedWarning)
        ]
        assert len(degraded) == 1

        # The run directory exists but every span was dropped; the sealed
        # report still reflects the (successful) campaign outcome.
        run_dir = telemetry_report.latest_run_dir(store.root / "telemetry")
        assert run_dir is not None
        trace = telemetry_report.read_trace(run_dir)
        assert trace["spans"] == [] and trace["bad_lines"] == 0
        built = telemetry_report.load_or_build_report(run_dir)
        assert built["spans"]["count"] == 0
        assert built["outcome"]["quarantined_tasks"] == 0


# --------------------------------------------------------------------------- #
# The fault-injection primitives
# --------------------------------------------------------------------------- #
class TestFaultPrimitives:
    def test_fire_is_noop_without_plan(self):
        assert os.environ.get(faults.ENV_VAR) is None
        assert faults.fire("measure", context="side=10") is None

    def test_ordinals_and_counts(self, tmp_path):
        with faults.active(
            [FaultSpec(site="measure", action="raise", at=2, count=1)],
            tmp_path / "faultstate",
        ):
            assert faults.fire("measure") is None  # ordinal 1 < at
            with pytest.raises(InjectedFault):
                faults.fire("measure")  # ordinal 2 fires
            assert faults.fire("measure") is None  # ordinal 3: spent

    def test_match_pins_to_context(self, tmp_path):
        with faults.active(
            [FaultSpec(site="measure", action="raise", match="side=20", count=0)],
            tmp_path / "faultstate",
        ):
            assert faults.fire("measure", context="side=10") is None
            with pytest.raises(InjectedFault):
                faults.fire("measure", context="side=20")

    def test_corrupt_action_is_returned_not_performed(self, tmp_path):
        with faults.active(
            [FaultSpec(site="store.put", action="corrupt")],
            tmp_path / "faultstate",
        ):
            spec = faults.fire("store.put", context="sweep:abc")
        assert spec is not None and spec.action == "corrupt"

    def test_plan_roundtrip_and_validation(self, tmp_path):
        plan_path = faults.write_plan(
            tmp_path / "plan.json",
            [FaultSpec(site="measure", action="kill", at=3)],
        )
        document = json.loads(plan_path.read_text())
        plan = faults.FaultPlan.from_document(
            document, default_state_dir=str(tmp_path)
        )
        assert plan.faults[0].at == 3
        assert plan.state_dir == str(tmp_path)
        with pytest.raises(ConfigurationError):
            FaultSpec(site="measure", action="explode")
        with pytest.raises(ConfigurationError):
            FaultSpec(site="measure", action="io-error", error="ENOTANERRNO")
        with pytest.raises(ConfigurationError):
            faults.FaultPlan.from_document(
                {"faults": [{"site": "measure", "action": "raise", "bogus": 1}]},
                default_state_dir=str(tmp_path),
            )

    def test_counters_shared_across_processes(self, tmp_path):
        """Each ordinal is observed exactly once campaign-wide: a pool of
        workers racing the same spec between them sees 1..N."""
        import multiprocessing

        with faults.active(
            [FaultSpec(site="measure", action="raise", at=10_000)],
            tmp_path / "faultstate",
        ) as plan_path:
            context = multiprocessing.get_context("fork")
            with context.Pool(4) as pool:
                pool.map(_fire_once, [str(plan_path)] * 32)
        counter = (tmp_path / "faultstate" / "hits-0").read_text()
        assert int(counter) == 32


def _fire_once(plan_path: str) -> None:
    os.environ[faults.ENV_VAR] = plan_path
    faults.fire("measure")


class TestSpuriousBreakGrace:
    """Immediate pool re-breaks with no intervening progress respawn free.

    A freshly respawned ``ProcessPoolExecutor`` is occasionally condemned
    by a CPython teardown race: the manager thread reports a worker
    sentinel ready (``BrokenProcessPool`` with no cause) while every
    worker of the new pool is demonstrably alive — reproducible under
    both the fork and spawn start methods, roughly once per several
    respawns.  Such a break names no culprit, so charging every
    re-enqueued task a retry burns innocent tasks' budgets and can flake
    an otherwise-convergent recovery.  The supervision loop therefore
    grants a bounded number of *uncharged* respawns after the first
    break of a progress epoch; these tests pin both the grace and its
    bound with deterministic fake breaks.
    """

    @staticmethod
    def _broken_future():
        from concurrent.futures.process import BrokenProcessPool

        future = Future()
        future.set_exception(
            BrokenProcessPool("simulated spurious executor condemnation")
        )
        return future

    def test_consecutive_breaks_within_grace_are_not_charged(self):
        calls = []
        retried = []

        def submit(pool, task, available, ready):
            calls.append(task)
            if len(calls) <= 4:
                return self._broken_future(), 1
            future = Future()
            future.set_result(task * 10)
            return future, 1

        results = []
        run_supervised(
            [1],
            budget=1,
            submit=submit,
            on_result=lambda task, result, cost: results.append(result),
            policy=RetryPolicy(max_retries=1, backoff=0.01),
            on_retry=lambda task, error, attempt, delay: retried.append(attempt),
        )
        # Break 1 charges the task's single retry; breaks 2-4 fall inside
        # the grace window and requeue for free; attempt 5 succeeds.  The
        # legacy accounting (every break charges) would have given up
        # after break 2.
        assert results == [10]
        assert calls == [1, 1, 1, 1, 1]
        assert retried == [1]

    def test_grace_is_bounded_for_perpetually_broken_pools(self):
        from concurrent.futures.process import BrokenProcessPool

        calls = []

        def submit(pool, task, available, ready):
            calls.append(task)
            return self._broken_future(), 1

        with pytest.raises(BrokenProcessPool):
            run_supervised(
                [1],
                budget=1,
                submit=submit,
                on_result=lambda task, result, cost: None,
                policy=RetryPolicy(max_retries=1, backoff=0.01),
            )
        # Charge, three free respawns, charge-and-give-up: a pool that is
        # genuinely poisoned still fails after a bounded number of
        # respawns instead of looping forever.
        assert calls == [1, 1, 1, 1, 1]

    def test_progress_resets_the_grace_epoch(self):
        calls = []
        retried = []

        def submit(pool, task, available, ready):
            calls.append(task)
            # Breaks at calls 1, 2 and 4: break 1 opens an epoch and is
            # charged, break 2 is an immediate re-break (free), call 3
            # delivers a result, and break 4 — *after* progress — must
            # open a fresh epoch and be charged again, not ride the
            # previous epoch's grace.
            if len(calls) in (1, 2, 4):
                return self._broken_future(), 1
            future = Future()
            future.set_result(task * 10)
            return future, 1

        results = []
        run_supervised(
            [1, 2, 3],
            budget=1,
            submit=submit,
            on_result=lambda task, result, cost: results.append(result),
            policy=RetryPolicy(max_retries=2, backoff=0.01),
            on_retry=lambda task, error, attempt, delay: retried.append((task, attempt)),
        )
        assert sorted(results) == [10, 20, 30]
        assert calls == [1, 2, 3, 1, 2, 1]
        # Task 1 was charged for break 1 (epoch 1) and break 4 (epoch 2,
        # opened by task 3's result); task 2's break rode the grace.
        assert retried == [(1, 1), (1, 2)]
