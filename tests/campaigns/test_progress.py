"""Golden-text tests for campaign progress events.

The rendered one-line form of every event class is load-bearing: the
CLI prints it, tests grep it, and the telemetry layer promises that
wrapping a consumer with :func:`repro.telemetry.annotated` changes the
text by zero bytes.  These tests pin each ``render()`` string exactly,
so an accidental rewording fails loudly instead of silently breaking
downstream consumers.
"""

import pytest

from repro.campaigns.progress import (
    CacheHit,
    EntryEvicted,
    ScenarioCompleted,
    StoreDegraded,
    TaskCompleted,
    TaskFailed,
    TaskQuarantined,
    TaskRetried,
    as_text,
    render,
)

GOLDEN = [
    (
        CacheHit(scenario_id="fig2/s=1", key="abcdef0123456789deadbeef"),
        "fig2/s=1: cache hit (abcdef012345)",
    ),
    (
        EntryEvicted(scenario_id="fig2/s=1"),
        "fig2/s=1: unusable entry evicted, recomputing",
    ),
    (
        TaskCompleted(
            scenario_id="fig2/s=1",
            value=256.0,
            values_done=2,
            values_total=5,
            workers=3,
        ),
        "fig2/s=1: value 256 done (2/5 values; workers=3)",
    ),
    (
        TaskCompleted(
            scenario_id="fig2/s=1",
            value=0.5,
            values_done=1,
            values_total=4,
            workers=2,
            iterations=30,
        ),
        "fig2/s=1: value 0.5 done (1/4 values; 30 iteration(s), workers=2)",
    ),
    (
        TaskCompleted(
            scenario_id="fig2/s=1",
            value=None,
            values_done=1,
            values_total=1,
            workers=4,
            atomic=True,
        ),
        "fig2/s=1: task done (atomic, workers=4)",
    ),
    (
        ScenarioCompleted(
            scenario_id="fig2/s=1", computed_values=3, loaded_values=2
        ),
        "fig2/s=1: computed 3 value(s), resumed 2 from checkpoints",
    ),
    (
        TaskFailed(
            scenario_id="fig2/s=1",
            value=20.0,
            attempt=1,
            error="ValueError('boom')",
        ),
        "fig2/s=1: value 20 failed (attempt 1): ValueError('boom')",
    ),
    (
        TaskFailed(
            scenario_id="fig2/s=1",
            value=None,
            attempt=2,
            error="BrokenProcessPool",
        ),
        "fig2/s=1: atomic task failed (attempt 2): BrokenProcessPool",
    ),
    (
        TaskRetried(
            scenario_id="fig2/s=1",
            value=20.0,
            attempt=1,
            max_retries=2,
            delay=0.25,
            error="ValueError('boom')",
        ),
        "fig2/s=1: retrying value 20 (attempt 1/3 failed, backoff 0.25s)",
    ),
    (
        TaskRetried(
            scenario_id="fig2/s=1",
            value=None,
            attempt=2,
            max_retries=3,
            delay=1.0,
            error="timeout",
        ),
        "fig2/s=1: retrying atomic task (attempt 2/4 failed, backoff 1s)",
    ),
    (
        TaskQuarantined(
            scenario_id="fig2/s=1",
            value=20.0,
            attempts=3,
            error="ValueError('boom')",
        ),
        "fig2/s=1: value 20 quarantined after 3 attempt(s): "
        "ValueError('boom')",
    ),
    (
        TaskQuarantined(
            scenario_id="fig2/s=1",
            value=None,
            attempts=2,
            error="timeout",
        ),
        "fig2/s=1: atomic task quarantined after 2 attempt(s): timeout",
    ),
    (
        StoreDegraded(
            scenario_id="fig2/s=1",
            scope="row",
            reason="[Errno 28] No space left on device",
        ),
        "fig2/s=1: store degraded to in-memory row checkpoints "
        "([Errno 28] No space left on device)",
    ),
]


@pytest.mark.parametrize(
    "event, expected", GOLDEN, ids=[type(e).__name__ for e, _ in GOLDEN]
)
def test_render_golden_text(event, expected):
    assert event.render() == expected
    assert render(event) == expected


def test_every_event_class_is_covered():
    import repro.campaigns.progress as progress

    covered = {type(event) for event, _ in GOLDEN}
    exported = {
        getattr(progress, name)
        for name in progress.__all__
        if isinstance(getattr(progress, name), type)
    }
    assert covered == exported


def test_as_text_adapts_a_string_sink():
    lines = []
    consume = as_text(lines.append)
    consume(EntryEvicted(scenario_id="scn"))
    consume(CacheHit(scenario_id="scn", key="0123456789abcdef"))
    assert lines == [
        "scn: unusable entry evicted, recomputing",
        "scn: cache hit (0123456789ab)",
    ]
