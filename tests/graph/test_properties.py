"""Tests for repro.graph.properties."""

import pytest

from repro.graph.adjacency import CommunicationGraph
from repro.graph.properties import (
    articulation_points,
    degree_sequence,
    degree_statistics,
    has_isolated_node,
    is_k_connected,
    isolated_nodes,
    minimum_degree,
)


def path_graph(n: int) -> CommunicationGraph:
    return CommunicationGraph(n, edges=[(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> CommunicationGraph:
    edges = [(i, (i + 1) % n) for i in range(n)]
    return CommunicationGraph(n, edges=edges)


def complete_graph(n: int) -> CommunicationGraph:
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return CommunicationGraph(n, edges=edges)


class TestIsolation:
    def test_isolated_nodes(self):
        graph = CommunicationGraph(4, edges=[(0, 1)])
        assert isolated_nodes(graph) == [2, 3]
        assert has_isolated_node(graph)

    def test_no_isolated_nodes(self):
        assert not has_isolated_node(path_graph(4))
        assert isolated_nodes(path_graph(4)) == []

    def test_single_node_not_isolated(self):
        # For n < 2 isolation does not imply disconnection.
        assert not has_isolated_node(CommunicationGraph(1))


class TestDegrees:
    def test_degree_sequence_sorted(self):
        graph = CommunicationGraph(4, edges=[(0, 1), (0, 2), (0, 3)])
        assert degree_sequence(graph) == [3, 1, 1, 1]

    def test_minimum_degree(self):
        graph = CommunicationGraph(4, edges=[(0, 1), (1, 2), (2, 3)])
        assert minimum_degree(graph) == 1
        assert minimum_degree(CommunicationGraph(0)) == 0

    def test_degree_statistics(self):
        stats = degree_statistics(path_graph(4))
        assert stats.minimum == 1
        assert stats.maximum == 2
        assert stats.mean == pytest.approx(1.5)

    def test_degree_statistics_empty(self):
        stats = degree_statistics(CommunicationGraph(0))
        assert stats.minimum == 0 and stats.maximum == 0 and stats.mean == 0.0


class TestArticulationPoints:
    def test_path_interior_nodes(self):
        assert articulation_points(path_graph(5)) == [1, 2, 3]

    def test_cycle_has_none(self):
        assert articulation_points(cycle_graph(6)) == []

    def test_bridge_node(self):
        # Two triangles joined at node 2.
        graph = CommunicationGraph(
            5, edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]
        )
        assert articulation_points(graph) == [2]

    def test_star_center(self):
        graph = CommunicationGraph(5, edges=[(0, i) for i in range(1, 5)])
        assert articulation_points(graph) == [0]

    def test_disconnected_graph(self):
        graph = CommunicationGraph(6, edges=[(0, 1), (1, 2), (3, 4), (4, 5)])
        assert articulation_points(graph) == [1, 4]

    def test_matches_networkx(self, small_placement):
        networkx = pytest.importorskip("networkx")
        from repro.graph.builder import build_communication_graph
        from repro.graph.convert import to_networkx

        graph = build_communication_graph(small_placement, 25.0)
        ours = set(articulation_points(graph))
        theirs = set(networkx.articulation_points(to_networkx(graph)))
        assert ours == theirs


class TestKConnectivity:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            is_k_connected(path_graph(3), 0)

    def test_1_connected_is_connectivity(self):
        assert is_k_connected(path_graph(4), 1)
        assert not is_k_connected(CommunicationGraph(4, edges=[(0, 1)]), 1)

    def test_path_not_2_connected(self):
        assert not is_k_connected(path_graph(4), 2)

    def test_cycle_is_2_connected(self):
        assert is_k_connected(cycle_graph(5), 2)

    def test_cycle_not_3_connected(self):
        assert not is_k_connected(cycle_graph(6), 3)

    def test_complete_graph_highly_connected(self):
        assert is_k_connected(complete_graph(5), 3)
        assert is_k_connected(complete_graph(5), 4)

    def test_too_few_nodes(self):
        assert not is_k_connected(complete_graph(3), 3)
        assert is_k_connected(complete_graph(4), 3)
