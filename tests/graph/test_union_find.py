"""Tests for repro.graph.union_find."""

import pytest

from repro.graph.union_find import UnionFind


class TestBasics:
    def test_initial_state(self):
        uf = UnionFind(5)
        assert len(uf) == 5
        assert uf.component_count == 5
        for i in range(5):
            assert uf.find(i) == i

    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_empty(self):
        uf = UnionFind(0)
        assert uf.component_count == 0
        assert uf.largest_set_size() == 0
        assert uf.groups() == []


class TestUnion:
    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1) is True
        assert uf.connected(0, 1)
        assert uf.component_count == 3

    def test_union_idempotent(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert uf.union(1, 0) is False
        assert uf.component_count == 3

    def test_transitive(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_set_size(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.set_size(0) == 3
        assert uf.set_size(2) == 3
        assert uf.set_size(5) == 1

    def test_largest_set_size(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(3, 4)
        assert uf.largest_set_size() == 3

    def test_all_merged(self):
        uf = UnionFind(10)
        for i in range(9):
            uf.union(i, i + 1)
        assert uf.component_count == 1
        assert uf.largest_set_size() == 10


class TestGroups:
    def test_groups_partition_all_items(self):
        uf = UnionFind(7)
        uf.union(0, 3)
        uf.union(1, 4)
        groups = uf.groups()
        flattened = sorted(item for group in groups for item in group)
        assert flattened == list(range(7))

    def test_groups_members_are_connected(self):
        uf = UnionFind(8)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(3, 4)
        for group in uf.groups():
            for member in group[1:]:
                assert uf.connected(group[0], member)


class TestFromEdges:
    def test_from_edges(self):
        uf = UnionFind.from_edges(5, [(0, 1), (2, 3)])
        assert uf.component_count == 3
        assert uf.connected(0, 1)
        assert uf.connected(2, 3)
        assert not uf.connected(0, 2)
