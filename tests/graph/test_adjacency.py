"""Tests for repro.graph.adjacency."""

import numpy as np
import pytest

from repro.graph.adjacency import CommunicationGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = CommunicationGraph(0)
        assert graph.node_count == 0
        assert graph.edge_count == 0

    def test_with_edges(self):
        graph = CommunicationGraph(4, edges=[(0, 1), (1, 2)])
        assert graph.edge_count == 2
        assert graph.has_edge(0, 1)
        assert graph.has_edge(2, 1)
        assert not graph.has_edge(0, 3)

    def test_negative_node_count(self):
        with pytest.raises(ValueError):
            CommunicationGraph(-1)

    def test_positions_length_mismatch(self):
        with pytest.raises(ValueError):
            CommunicationGraph(3, positions=np.zeros((2, 2)))

    def test_positions_stored(self):
        positions = np.array([[0.0, 0.0], [1.0, 1.0]])
        graph = CommunicationGraph(2, positions=positions, transmitting_range=2.0)
        assert np.allclose(graph.positions, positions)
        assert graph.transmitting_range == 2.0


class TestEdges:
    def test_self_loop_ignored(self):
        graph = CommunicationGraph(3)
        graph.add_edge(1, 1)
        assert graph.edge_count == 0

    def test_duplicate_edges_collapsed(self):
        graph = CommunicationGraph(3, edges=[(0, 1), (1, 0), (0, 1)])
        assert graph.edge_count == 1

    def test_out_of_range_node(self):
        graph = CommunicationGraph(3)
        with pytest.raises(IndexError):
            graph.add_edge(0, 3)

    def test_remove_edge(self):
        graph = CommunicationGraph(3, edges=[(0, 1)])
        graph.remove_edge(1, 0)
        assert graph.edge_count == 0
        assert graph.degree(0) == 0

    def test_remove_missing_edge_is_noop(self):
        graph = CommunicationGraph(3, edges=[(0, 1)])
        graph.remove_edge(0, 2)
        assert graph.edge_count == 1

    def test_edges_sorted(self):
        graph = CommunicationGraph(4, edges=[(3, 2), (1, 0)])
        assert graph.edges() == [(0, 1), (2, 3)]


class TestDegreesAndNeighbors:
    def test_degree(self):
        graph = CommunicationGraph(4, edges=[(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degree(1) == 1

    def test_degrees_list(self):
        graph = CommunicationGraph(3, edges=[(0, 1)])
        assert graph.degrees() == [1, 1, 0]

    def test_neighbors_is_copy(self):
        graph = CommunicationGraph(3, edges=[(0, 1)])
        neighbors = graph.neighbors(0)
        neighbors.add(2)
        assert graph.degree(0) == 1

    def test_adjacency_matrix(self):
        graph = CommunicationGraph(3, edges=[(0, 2)])
        matrix = graph.adjacency_matrix()
        assert matrix[0, 2] and matrix[2, 0]
        assert not matrix[0, 1]
        assert not matrix.diagonal().any()


class TestSubgraphAndCopy:
    def test_subgraph_relabels(self):
        graph = CommunicationGraph(5, edges=[(0, 1), (1, 4), (2, 3)])
        sub = graph.subgraph([1, 4])
        assert sub.node_count == 2
        assert sub.has_edge(0, 1)

    def test_subgraph_keeps_positions(self):
        positions = np.arange(10.0).reshape(5, 2)
        graph = CommunicationGraph(5, positions=positions)
        sub = graph.subgraph([2, 4])
        assert np.allclose(sub.positions, positions[[2, 4]])

    def test_copy_is_independent(self):
        graph = CommunicationGraph(3, edges=[(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.edge_count == 1
        assert clone.edge_count == 2

    def test_iteration(self):
        graph = CommunicationGraph(4)
        assert list(graph) == [0, 1, 2, 3]
