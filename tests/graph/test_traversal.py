"""Tests for repro.graph.traversal."""

import pytest

from repro.graph.adjacency import CommunicationGraph
from repro.graph.traversal import (
    bfs_order,
    bfs_tree,
    components_by_bfs,
    hop_counts,
    shortest_hop_path,
)


def path_graph(n: int) -> CommunicationGraph:
    return CommunicationGraph(n, edges=[(i, i + 1) for i in range(n - 1)])


class TestBfsOrder:
    def test_visits_reachable_nodes(self):
        graph = path_graph(5)
        assert sorted(bfs_order(graph, 0)) == [0, 1, 2, 3, 4]

    def test_starts_at_source(self):
        graph = path_graph(5)
        assert bfs_order(graph, 2)[0] == 2

    def test_unreachable_nodes_excluded(self):
        graph = CommunicationGraph(4, edges=[(0, 1)])
        assert sorted(bfs_order(graph, 0)) == [0, 1]

    def test_invalid_source(self):
        with pytest.raises(IndexError):
            bfs_order(path_graph(3), 5)


class TestBfsTree:
    def test_root_has_no_parent(self):
        parents = bfs_tree(path_graph(4), 0)
        assert parents[0] is None

    def test_parents_are_closer_to_root(self):
        graph = path_graph(5)
        parents = bfs_tree(graph, 0)
        distances = hop_counts(graph, 0)
        for node, parent in parents.items():
            if parent is not None:
                assert distances[parent] == distances[node] - 1


class TestHopCounts:
    def test_path_distances(self):
        graph = path_graph(5)
        assert hop_counts(graph, 0) == [0, 1, 2, 3, 4]

    def test_unreachable_is_none(self):
        graph = CommunicationGraph(3, edges=[(0, 1)])
        assert hop_counts(graph, 0)[2] is None

    def test_star_graph(self):
        graph = CommunicationGraph(5, edges=[(0, i) for i in range(1, 5)])
        distances = hop_counts(graph, 1)
        assert distances[0] == 1
        assert distances[2] == 2


class TestShortestHopPath:
    def test_path_endpoints(self):
        graph = path_graph(6)
        path = shortest_hop_path(graph, 0, 5)
        assert path[0] == 0
        assert path[-1] == 5
        assert len(path) == 6

    def test_consecutive_nodes_adjacent(self):
        graph = CommunicationGraph(
            6, edges=[(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5)]
        )
        path = shortest_hop_path(graph, 0, 5)
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)
        assert len(path) == 4  # 0-1-2-5 or 0-3-4-5

    def test_same_node(self):
        assert shortest_hop_path(path_graph(3), 1, 1) == [1]

    def test_unreachable(self):
        graph = CommunicationGraph(4, edges=[(0, 1), (2, 3)])
        assert shortest_hop_path(graph, 0, 3) is None


class TestComponentsByBfs:
    def test_partition(self):
        graph = CommunicationGraph(6, edges=[(0, 1), (2, 3), (3, 4)])
        components = components_by_bfs(graph)
        flattened = sorted(node for component in components for node in component)
        assert flattened == list(range(6))
        assert sorted(len(c) for c in components) == [1, 2, 3]
