"""Tests for repro.graph.convert (requires networkx)."""

import numpy as np
import pytest

networkx = pytest.importorskip("networkx")

from repro.graph.adjacency import CommunicationGraph
from repro.graph.builder import build_communication_graph
from repro.graph.components import is_connected
from repro.graph.convert import from_networkx, to_networkx


class TestToNetworkx:
    def test_nodes_and_edges_preserved(self):
        graph = CommunicationGraph(4, edges=[(0, 1), (2, 3)])
        nx_graph = to_networkx(graph)
        assert set(nx_graph.nodes()) == {0, 1, 2, 3}
        assert {tuple(sorted(e)) for e in nx_graph.edges()} == {(0, 1), (2, 3)}

    def test_positions_attached(self, small_placement):
        graph = build_communication_graph(small_placement, 10.0)
        nx_graph = to_networkx(graph)
        assert np.allclose(nx_graph.nodes[0]["pos"], small_placement[0])

    def test_connectivity_agrees(self, small_placement):
        for radius in (5.0, 20.0, 60.0):
            graph = build_communication_graph(small_placement, radius)
            assert is_connected(graph) == networkx.is_connected(to_networkx(graph)) or (
                graph.node_count == 0
            )


class TestFromNetworkx:
    def test_round_trip(self):
        original = CommunicationGraph(5, edges=[(0, 1), (1, 2), (3, 4)])
        recovered = from_networkx(to_networkx(original))
        assert recovered.edges() == original.edges()
        assert recovered.node_count == original.node_count

    def test_rejects_non_contiguous_labels(self):
        nx_graph = networkx.Graph()
        nx_graph.add_edge("a", "b")
        with pytest.raises(ValueError):
            from_networkx(nx_graph)

    def test_component_counts_match(self, small_placement):
        graph = build_communication_graph(small_placement, 12.0)
        nx_graph = to_networkx(graph)
        from repro.graph.components import connected_components

        assert len(connected_components(graph)) == networkx.number_connected_components(
            nx_graph
        )
