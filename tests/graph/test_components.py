"""Tests for repro.graph.components."""

import pytest

from repro.graph.adjacency import CommunicationGraph
from repro.graph.components import (
    component_sizes,
    connected_components,
    is_connected,
    largest_component_fraction,
    largest_component_size,
    summarize_components,
)
from repro.graph.traversal import components_by_bfs


def path_graph(n: int) -> CommunicationGraph:
    return CommunicationGraph(n, edges=[(i, i + 1) for i in range(n - 1)])


class TestConnectedComponents:
    def test_single_component(self):
        graph = path_graph(5)
        components = connected_components(graph)
        assert len(components) == 1
        assert components[0] == [0, 1, 2, 3, 4]

    def test_multiple_components(self):
        graph = CommunicationGraph(6, edges=[(0, 1), (2, 3)])
        sizes = component_sizes(graph)
        assert sizes == [2, 2, 1, 1]

    def test_empty_graph(self):
        graph = CommunicationGraph(0)
        assert connected_components(graph) == []
        assert component_sizes(graph) == []

    def test_matches_bfs_oracle(self, small_placement):
        from repro.graph.builder import build_communication_graph

        graph = build_communication_graph(small_placement, 15.0)
        union_find_components = sorted(map(tuple, connected_components(graph)))
        bfs_components = sorted(map(tuple, components_by_bfs(graph)))
        assert union_find_components == bfs_components


class TestIsConnected:
    def test_connected_path(self):
        assert is_connected(path_graph(10))

    def test_disconnected(self):
        graph = CommunicationGraph(4, edges=[(0, 1)])
        assert not is_connected(graph)

    def test_single_node_connected(self):
        assert is_connected(CommunicationGraph(1))

    def test_empty_graph_connected(self):
        assert is_connected(CommunicationGraph(0))

    def test_two_isolated_nodes(self):
        assert not is_connected(CommunicationGraph(2))

    def test_edge_count_shortcut(self):
        # Fewer than n-1 edges can never be connected.
        graph = CommunicationGraph(10, edges=[(0, 1), (2, 3)])
        assert not is_connected(graph)


class TestLargestComponent:
    def test_largest_size(self):
        graph = CommunicationGraph(7, edges=[(0, 1), (1, 2), (3, 4)])
        assert largest_component_size(graph) == 3

    def test_fraction(self):
        graph = CommunicationGraph(4, edges=[(0, 1)])
        assert largest_component_fraction(graph) == pytest.approx(0.5)

    def test_fraction_empty_graph(self):
        assert largest_component_fraction(CommunicationGraph(0)) == 0.0

    def test_fraction_connected_is_one(self):
        assert largest_component_fraction(path_graph(6)) == 1.0


class TestSummary:
    def test_summary_fields(self):
        graph = CommunicationGraph(5, edges=[(0, 1), (2, 3)])
        summary = summarize_components(graph)
        assert summary.node_count == 5
        assert summary.component_count == 3
        assert summary.largest_size == 2
        assert summary.sizes == (2, 2, 1)
        assert not summary.is_connected
        assert summary.largest_fraction == pytest.approx(0.4)

    def test_summary_connected(self):
        summary = summarize_components(path_graph(3))
        assert summary.is_connected
        assert summary.largest_fraction == 1.0

    def test_summary_empty(self):
        summary = summarize_components(CommunicationGraph(0))
        assert summary.is_connected
        assert summary.largest_fraction == 0.0
