"""Tests for repro.graph.builder."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.graph.builder import (
    adjacency_from_pairs,
    build_communication_graph,
    neighbor_pairs,
)


class TestNeighborPairs:
    def test_simple_line(self):
        points = np.array([[0.0], [1.0], [3.0]])
        assert neighbor_pairs(points, 1.5) == [(0, 1)]
        assert neighbor_pairs(points, 2.0) == [(0, 1), (1, 2)]
        assert neighbor_pairs(points, 3.0) == [(0, 1), (0, 2), (1, 2)]

    def test_zero_range(self, small_placement):
        assert neighbor_pairs(small_placement, 0.0) == []

    def test_negative_range_raises(self, small_placement):
        with pytest.raises(ConfigurationError):
            neighbor_pairs(small_placement, -1.0)

    def test_single_node(self):
        assert neighbor_pairs(np.array([[1.0, 1.0]]), 10.0) == []

    def test_brute_and_grid_agree(self, rng):
        points = rng.uniform(0, 500, size=(250, 2))
        radius = 40.0
        brute = neighbor_pairs(points, radius, method="brute")
        grid = neighbor_pairs(points, radius, method="grid")
        assert brute == grid

    def test_brute_and_grid_agree_1d(self, rng):
        points = rng.uniform(0, 1000, size=(300, 1))
        radius = 12.0
        assert neighbor_pairs(points, radius, method="brute") == neighbor_pairs(
            points, radius, method="grid"
        )

    def test_unknown_method(self, small_placement):
        with pytest.raises(ConfigurationError):
            neighbor_pairs(small_placement, 5.0, method="quadtree")

    def test_boundary_inclusive(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert neighbor_pairs(points, 5.0) == [(0, 1)]
        assert neighbor_pairs(points, 4.999) == []


class TestBuildCommunicationGraph:
    def test_graph_metadata(self, small_placement):
        graph = build_communication_graph(small_placement, 20.0)
        assert graph.node_count == small_placement.shape[0]
        assert graph.transmitting_range == 20.0
        assert np.allclose(graph.positions, small_placement)

    def test_larger_range_superset_edges(self, small_placement):
        small = set(build_communication_graph(small_placement, 10.0).edges())
        large = set(build_communication_graph(small_placement, 30.0).edges())
        assert small <= large

    def test_full_range_gives_complete_graph(self, small_placement):
        n = small_placement.shape[0]
        graph = build_communication_graph(small_placement, 1e6)
        assert graph.edge_count == n * (n - 1) // 2

    def test_matches_networkx_random_geometric_semantics(self, rng):
        networkx = pytest.importorskip("networkx")
        points = rng.uniform(0, 1, size=(40, 2))
        radius = 0.25
        graph = build_communication_graph(points, radius)
        positions = {i: tuple(points[i]) for i in range(40)}
        reference = networkx.random_geometric_graph(40, radius, pos=positions)
        assert set(graph.edges()) == {tuple(sorted(e)) for e in reference.edges()}


class TestAdjacencyFromPairs:
    def test_basic(self):
        adjacency = adjacency_from_pairs(4, [(0, 1), (1, 2)])
        assert adjacency[0] == [1]
        assert sorted(adjacency[1]) == [0, 2]
        assert adjacency[3] == []
