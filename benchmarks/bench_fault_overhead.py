"""Benchmark of the supervision layer's overhead and recovery cost.

PR 7 routed every parallel gather through :func:`repro.supervision.
run_supervised`.  The design claim is "supervision costs nothing until
something fails": with the default policy the loop performs exactly one
``wait`` per completion batch, and arming retries/leases only adds
deadline bookkeeping.  This benchmark holds the claim to numbers:

* **clean, unsupervised** — a campaign under the scheduler with the
  default fail-fast policy (the pre-PR-7 behaviour);
* **clean, supervised** — the same campaign with retries, a task lease
  and backoff armed (``max_retries=2``, ``task_timeout=60``): must be
  within **3%** of the unsupervised run;
* **1-kill recovery** — the same supervised campaign with one injected
  worker SIGKILL (:mod:`repro.faults`): the pool is torn down, survivors
  harvested, staging swept, a fresh pool respawned and the lost task
  retried — and the whole run must still finish within **1.5x** of the
  clean supervised run, with bit-identical results.

The per-value work is a fixed sleep, which makes the bars meaningful on
any machine: wall-clock is dominated by identical sleeping in every mode,
so the measured difference *is* the harness overhead.  Every mode runs
``ROUNDS`` times against a fresh store and the minimum is compared
(pool-startup jitter hits all modes alike).

The workload size follows ``REPRO_BENCH_SCALE`` (``smoke`` by default).
"""

import time
from dataclasses import dataclass
from typing import Dict

from repro import faults
from repro.campaigns import CampaignRunner, CampaignSpec
from repro.experiments.registry import (
    Experiment,
    ExperimentScale,
    register_experiment,
)
from repro.faults import FaultSpec
from repro.simulation.sweep import SweepResult, sweep_parameter
from repro.store import ResultStore

from _helpers import bench_scale_name, write_bench_summary

BENCH_ID = "bench-fault-exp"

#: Per-value sleep: long enough that 8 tasks of it dominate pool startup.
BASE_SECONDS = 0.15 if bench_scale_name() == "smoke" else 0.3

ROUNDS = 3
OVERHEAD_BAR = 0.03
RECOVERY_BAR = 1.5


@dataclass(frozen=True)
class FixedSleepMeasure:
    """Picklable measure: constant-duration work per value."""

    seed: int

    def __call__(self, value: float) -> Dict[str, float]:
        time.sleep(BASE_SECONDS)
        return {"metric": value * 2.0 + self.seed}


def _fixed_sleep_measure(scale: ExperimentScale) -> FixedSleepMeasure:
    return FixedSleepMeasure(seed=scale.seed or 0)


def run_fixed_sleep_experiment(scale: ExperimentScale, checkpoint=None) -> SweepResult:
    return sweep_parameter(
        "side",
        scale.sides,
        _fixed_sleep_measure(scale),
        workers=scale.sweep_workers,
        checkpoint=checkpoint,
    )


register_experiment(
    Experiment(
        identifier=BENCH_ID,
        title="Synthetic fixed-sleep experiment",
        description="Constant-duration tasks for the fault-overhead benchmark.",
        paper_reference="(benchmark only)",
        run=run_fixed_sleep_experiment,
        parameter_name="side",
        sweep_measure=_fixed_sleep_measure,
    )
)


def _spec() -> CampaignSpec:
    return CampaignSpec.from_dict(
        {
            "name": "bench-faults",
            "experiments": [BENCH_ID],
            "scale": "smoke",
            "overrides": {
                "sides": [10.0, 20.0, 30.0, 40.0],
                "steps": 1,
                "iterations": 1,
                "stationary_iterations": 1,
            },
            "matrix": {"seed": [1, 2]},
        }
    )


def _run_round(tmp_path, label, **kwargs):
    runner = CampaignRunner(
        _spec(), ResultStore(tmp_path / label), total_workers=2, **kwargs
    )
    start = time.perf_counter()
    result = runner.run()
    return result, time.perf_counter() - start


def test_fault_tolerance_overhead(benchmark, tmp_path):
    """Clean supervision < 3% overhead; 1-kill recovery <= 1.5x clean."""
    supervision = dict(max_retries=2, task_timeout=60.0, retry_backoff=0.05)

    plain_seconds = []
    supervised_seconds = []
    recovery_seconds = []
    reference = None
    for round_index in range(ROUNDS):
        # Interleaved rounds: drift (page cache, CPU frequency) hits every
        # mode equally instead of biasing whichever ran last.
        result, seconds = _run_round(tmp_path, f"plain-{round_index}")
        plain_seconds.append(seconds)
        reference = result

        result, seconds = _run_round(
            tmp_path, f"supervised-{round_index}", **supervision
        )
        supervised_seconds.append(seconds)
        for scenario_id, sweep in result.sweeps.items():
            assert sweep.rows == reference.sweeps[scenario_id].rows

        with faults.active(
            [FaultSpec(site="measure", action="kill", at=3)],
            tmp_path / f"faultstate-{round_index}",
        ):
            result, seconds = _run_round(
                tmp_path, f"recovery-{round_index}", **supervision
            )
        recovery_seconds.append(seconds)
        # The injected SIGKILL really fired (the cross-process hit
        # counter advanced past the firing ordinal) — the recovery bar
        # is measuring an actual pool death, not a clean run.
        hits = (tmp_path / f"faultstate-{round_index}" / "hits-0").read_text()
        assert int(hits) >= 3, hits
        assert result.quarantined_tasks == 0
        for scenario_id, sweep in result.sweeps.items():
            assert sweep.rows == reference.sweeps[scenario_id].rows

    # One representative timed run for pytest-benchmark's own table.
    benchmark.pedantic(
        lambda: _run_round(tmp_path, "bench", **supervision),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    plain = min(plain_seconds)
    supervised = min(supervised_seconds)
    recovery = min(recovery_seconds)
    overhead = supervised / plain - 1.0
    ratio = recovery / supervised

    print()
    print(f"fault-tolerance overhead benchmark ({bench_scale_name()} scale)")
    print(f"  2 scenarios x 4 values, {BASE_SECONDS:.2f}s/task, budget 2, "
          f"min of {ROUNDS} rounds")
    print(f"  {'mode':24s} | seconds")
    print(f"  {'clean, unsupervised':24s} | {plain:7.3f}")
    print(f"  {'clean, supervised':24s} | {supervised:7.3f} "
          f"({overhead * 100.0:+.2f}%)")
    print(f"  {'1 worker kill, recovered':24s} | {recovery:7.3f} "
          f"({ratio:.2f}x clean)")

    write_bench_summary(
        "fault_overhead",
        {
            "rounds": ROUNDS,
            "task_seconds": BASE_SECONDS,
            "clean_seconds": plain,
            "supervised_seconds": supervised,
            "overhead_fraction": overhead,
            "kill_recovery_seconds": recovery,
            "recovery_ratio": ratio,
        },
    )

    assert overhead < OVERHEAD_BAR, (
        f"armed supervision costs {overhead * 100.0:.2f}% on a clean run "
        f"({supervised:.3f}s vs {plain:.3f}s); bar is "
        f"{OVERHEAD_BAR * 100.0:.0f}%"
    )
    assert ratio <= RECOVERY_BAR, (
        f"recovering from one worker kill took {ratio:.2f}x the clean run "
        f"({recovery:.3f}s vs {supervised:.3f}s); bar is {RECOVERY_BAR}x"
    )
