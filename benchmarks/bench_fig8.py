"""Figure 8 — r100/rstationary vs the pause time tpause.

The paper sweeps tpause from 0 to 10000 (at l = 4096, n = 64) and observes a
mild decreasing trend — longer pauses make the system "more stationary" —
but, unlike Figure 7, no sharp threshold.
"""

from _helpers import print_figure, run_experiment_benchmark

COLUMNS = ["r100/rstationary"]


def test_figure8_pause_time(benchmark):
    sweep = run_experiment_benchmark(benchmark, "fig8")
    print_figure("Figure 8", sweep, COLUMNS)

    ratios = sweep.series("r100/rstationary")
    assert all(0.2 < ratio < 3.0 for ratio in ratios)
    # Mild decreasing trend: the long-pause end does not require more range
    # than the no-pause end.
    assert ratios[-1] <= ratios[0] * 1.1
