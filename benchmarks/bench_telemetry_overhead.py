"""Benchmark of the telemetry spine's overhead on a scheduled campaign.

PR 8 threaded :mod:`repro.telemetry` spans through every execution layer
(campaign → scenario → task → iteration) and flushes them from every
worker process into one per-run JSONL sink.  The design claim is that
observability is a rounding error: span bookkeeping is a dataclass and a
clock read, flushes are buffered (one ``O_APPEND`` write per 128
records), and a disabled tracer short-circuits to no-ops.  This
benchmark holds the claim to a number:

* **untraced** — a campaign under the scheduler with ``telemetry=False``
  (the pre-PR-8 behaviour);
* **traced** — the identical campaign with the default telemetry on:
  must be within **2%** of the untraced run, and the recorded trace must
  actually contain the campaign's task spans (the cheap run is cheap
  because tracing is cheap, not because it silently didn't happen).

The per-value work is a fixed sleep, which makes the bar meaningful on
any machine: wall-clock is dominated by identical sleeping in both
modes, so the measured difference *is* the tracer overhead.  Both modes
run ``ROUNDS`` times, interleaved, against fresh stores and the minimum
is compared (pool-startup jitter hits both modes alike).

The workload size follows ``REPRO_BENCH_SCALE`` (``smoke`` by default).
"""

import time
from dataclasses import dataclass
from typing import Dict

from repro.campaigns import CampaignRunner, CampaignSpec
from repro.experiments.registry import (
    Experiment,
    ExperimentScale,
    register_experiment,
)
from repro.simulation.sweep import SweepResult, sweep_parameter
from repro.store import ResultStore
from repro.telemetry import report as telemetry_report

from _helpers import bench_scale_name, write_bench_summary

BENCH_ID = "bench-telemetry-exp"

#: Per-value sleep: long enough that 8 tasks of it dominate pool startup
#: (and that the 2% bar is comfortably above scheduler timing noise).
BASE_SECONDS = 0.25 if bench_scale_name() == "smoke" else 0.4

ROUNDS = 3
OVERHEAD_BAR = 0.02


@dataclass(frozen=True)
class FixedSleepMeasure:
    """Picklable measure: constant-duration work per value."""

    seed: int

    def __call__(self, value: float) -> Dict[str, float]:
        time.sleep(BASE_SECONDS)
        return {"metric": value * 3.0 + self.seed}


def _fixed_sleep_measure(scale: ExperimentScale) -> FixedSleepMeasure:
    return FixedSleepMeasure(seed=scale.seed or 0)


def run_fixed_sleep_experiment(scale: ExperimentScale, checkpoint=None) -> SweepResult:
    return sweep_parameter(
        "side",
        scale.sides,
        _fixed_sleep_measure(scale),
        workers=scale.sweep_workers,
        checkpoint=checkpoint,
    )


register_experiment(
    Experiment(
        identifier=BENCH_ID,
        title="Synthetic fixed-sleep experiment",
        description="Constant-duration tasks for the telemetry-overhead benchmark.",
        paper_reference="(benchmark only)",
        run=run_fixed_sleep_experiment,
        parameter_name="side",
        sweep_measure=_fixed_sleep_measure,
    )
)


def _spec() -> CampaignSpec:
    return CampaignSpec.from_dict(
        {
            "name": "bench-telemetry",
            "experiments": [BENCH_ID],
            "scale": "smoke",
            "overrides": {
                "sides": [10.0, 20.0, 30.0, 40.0],
                "steps": 1,
                "iterations": 1,
                "stationary_iterations": 1,
            },
            "matrix": {"seed": [1, 2]},
        }
    )


def _run_round(tmp_path, label, **kwargs):
    store = ResultStore(tmp_path / label)
    runner = CampaignRunner(_spec(), store, total_workers=2, **kwargs)
    start = time.perf_counter()
    result = runner.run()
    return result, time.perf_counter() - start, store


def test_telemetry_overhead(benchmark, tmp_path):
    """Tracing a scheduled campaign costs < 2% wall clock."""
    untraced_seconds = []
    traced_seconds = []
    reference = None
    last_store = None
    for round_index in range(ROUNDS):
        # Interleaved rounds: drift (page cache, CPU frequency) hits both
        # modes equally instead of biasing whichever ran last.
        result, seconds, _ = _run_round(
            tmp_path, f"untraced-{round_index}", telemetry=False
        )
        untraced_seconds.append(seconds)
        reference = result

        result, seconds, store = _run_round(tmp_path, f"traced-{round_index}")
        traced_seconds.append(seconds)
        last_store = store
        for scenario_id, sweep in result.sweeps.items():
            assert sweep.rows == reference.sweeps[scenario_id].rows

    # The traced run really recorded the campaign: the trace holds a span
    # per task and a sealed run report — the overhead number measures a
    # working tracer, not a disabled one.
    run_dir = telemetry_report.latest_run_dir(last_store.root / "telemetry")
    assert run_dir is not None
    trace = telemetry_report.read_trace(run_dir)
    task_spans = [s for s in trace["spans"] if s["name"] == "task"]
    assert len(task_spans) == 8, len(task_spans)
    assert trace["bad_lines"] == 0

    # One representative timed run for pytest-benchmark's own table.
    benchmark.pedantic(
        lambda: _run_round(tmp_path, "bench"),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    untraced = min(untraced_seconds)
    traced = min(traced_seconds)
    overhead = traced / untraced - 1.0

    print()
    print(f"telemetry overhead benchmark ({bench_scale_name()} scale)")
    print(f"  2 scenarios x 4 values, {BASE_SECONDS:.2f}s/task, budget 2, "
          f"min of {ROUNDS} rounds")
    print(f"  {'mode':12s} | seconds")
    print(f"  {'untraced':12s} | {untraced:7.3f}")
    print(f"  {'traced':12s} | {traced:7.3f} ({overhead * 100.0:+.2f}%)")

    write_bench_summary(
        "telemetry_overhead",
        {
            "rounds": ROUNDS,
            "task_seconds": BASE_SECONDS,
            "untraced_seconds": untraced,
            "traced_seconds": traced,
            "overhead_fraction": overhead,
            "spans_recorded": len(trace["spans"]),
        },
    )

    assert overhead < OVERHEAD_BAR, (
        f"telemetry costs {overhead * 100.0:.2f}% on a scheduled campaign "
        f"({traced:.3f}s vs {untraced:.3f}s); bar is "
        f"{OVERHEAD_BAR * 100.0:.0f}%"
    )
