"""Benchmark: intra-iteration trajectory sharding wall-clock scaling.

A *single*-iteration trace-statistics run — the configuration PRs 1–4
could never speed up, because all their parallelism is across iterations,
sweep values or scenarios — is executed serially and with the trajectory
sharded over 2 and 4 workers (``collect_frame_statistics`` auto-shards
whenever ``workers > iterations``; see
:mod:`repro.simulation.sharding`).

Sharded results must be bit-identical to the serial run on any machine.
The wall-clock bar — at least 1.5x speedup at 4 workers — engages only on
hosts with at least 4 cores, following the convention of
``bench_parallel_scaling.py``: the work parallelised here (the per-frame
MST reduction) is CPU-bound, so a single-core box cannot overlap it.

The workload size follows ``REPRO_BENCH_SCALE`` (``smoke`` by default;
``paper`` runs the acceptance-criteria 10 000-step iteration).
"""

import os
import time

import pytest

from repro.simulation.config import MobilitySpec, NetworkConfig, SimulationConfig
from repro.simulation.runner import collect_frame_statistics

from _helpers import bench_scale_name, write_bench_summary

try:
    # Respect cgroup/affinity limits (CI quotas), not just the host size.
    CPU_COUNT = len(os.sched_getaffinity(0))
except AttributeError:  # platforms without sched_getaffinity
    CPU_COUNT = os.cpu_count() or 1

#: (node_count, steps) of the single iteration per scale.  The smoke
#: preset is sized so the serial run takes ~1.5 s — enough for the shard
#: pool's startup cost to amortise on a multi-core box (smaller workloads
#: would make the 1.5x bar a test of fork latency, not of sharding).
_SIZES = {
    "smoke": (96, 4000),
    "default": (96, 8000),
    "paper": (128, 10000),
}


def _single_iteration_config() -> SimulationConfig:
    node_count, steps = _SIZES.get(bench_scale_name(), _SIZES["smoke"])
    side = float(node_count * node_count)  # the paper's n = sqrt(l) scaling
    return SimulationConfig(
        network=NetworkConfig(node_count=node_count, side=side, dimension=2),
        mobility=MobilitySpec.paper_waypoint(side, tpause=50),
        steps=steps,
        iterations=1,
        seed=20020623,
    )


def _timed(function):
    start = time.perf_counter()
    result = function()
    return result, time.perf_counter() - start


def test_iteration_sharding_scaling(benchmark):
    """Wall-clock of one sharded iteration vs the serial run."""
    config = _single_iteration_config()
    serial, serial_seconds = _timed(lambda: collect_frame_statistics(config))
    rows = [(1, serial_seconds, 1.0)]
    timings = {1: serial_seconds}
    for workers in (2, 4):
        sharded, seconds = _timed(
            lambda: collect_frame_statistics(config.with_workers(workers))
        )
        assert all(
            mine == theirs for mine, theirs in zip(serial, sharded)
        ), f"workers={workers} changed the results"
        rows.append((workers, seconds, serial_seconds / seconds))
        timings[workers] = seconds

    print(f"\niteration sharding benchmark ({bench_scale_name()} scale)")
    print(
        f"  1 iteration, n={config.network.node_count}, "
        f"steps={config.steps}, {CPU_COUNT} cores"
    )
    for workers, seconds, speedup in rows:
        print(f"  workers={workers}: {seconds:8.3f}s  speedup {speedup:4.2f}x")
    speedup_at_4 = serial_seconds / timings[4]
    write_bench_summary(
        "iteration_sharding",
        {
            "node_count": config.network.node_count,
            "steps": config.steps,
            "iterations": 1,
            "serial_seconds": serial_seconds,
            "sharded_seconds_2_workers": timings[2],
            "sharded_seconds_4_workers": timings[4],
            "speedup_4_workers": speedup_at_4,
            "cpu_count": CPU_COUNT,
            "speedup_bar_enforced": CPU_COUNT >= 4,
        },
    )
    if CPU_COUNT >= 4:
        assert speedup_at_4 >= 1.5, (
            f"sharded single iteration only {speedup_at_4:.2f}x at 4 workers "
            f"({timings[4]:.3f}s vs {serial_seconds:.3f}s serial)"
        )
    # Report the serial run under pytest-benchmark for history tracking.
    benchmark.pedantic(
        collect_frame_statistics, args=(config,), rounds=1, iterations=1,
        warmup_rounds=0,
    )
