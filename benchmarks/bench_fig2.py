"""Figure 2 — ratios r100/r90/r10/r0 to rstationary vs system size (waypoint).

The paper's Figure 2 plots, for l in {256, 1K, 4K, 16K} with n = sqrt(l) and
the random waypoint model, the ratios of r100, r90, r10 and r0 to the
stationary critical range.  Paper-reported shape: all ratios grow slowly
with l, r100/rstationary reaching roughly 1.2 at l = 16K, with
r90 clearly below r100 and r0 lowest of all.
"""

from _helpers import assert_non_decreasing, print_figure, run_experiment_benchmark

COLUMNS = [
    "r100/rstationary",
    "r90/rstationary",
    "r10/rstationary",
    "r0/rstationary",
]


def test_figure2_waypoint_ratios(benchmark):
    sweep = run_experiment_benchmark(benchmark, "fig2")
    print_figure("Figure 2", sweep, COLUMNS)

    for row in sweep.rows:
        # The orderings the figure displays must hold at every system size.
        assert row["r0/rstationary"] <= row["r10/rstationary"]
        assert row["r10/rstationary"] <= row["r90/rstationary"]
        assert row["r90/rstationary"] <= row["r100/rstationary"]
        # All mobile thresholds stay within a small factor of rstationary.
        assert 0.1 < row["r100/rstationary"] < 3.0
    # r10 saves a substantial fraction of the range relative to r100
    # (the paper reports ~55-60%; the scaled-down run still shows >= 10%).
    for row in sweep.rows:
        assert row["r10/rstationary"] <= 0.9 * row["r100/rstationary"]
