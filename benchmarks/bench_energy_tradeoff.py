"""Energy / quality-of-communication trade-off (Section 4.2 narrative).

The paper's discussion quantifies the energy saved by operating below r100:
r90 is about 35-40 % below r100 and r10 about 55-60 % below it, which at a
path-loss exponent of 2 translates into roughly 60 % and 80-85 % energy
savings.  This benchmark regenerates that table for every system size.
"""

from _helpers import print_figure, run_experiment_benchmark

COLUMNS = [
    "r90/r100",
    "r10/r100",
    "rl50/r100",
    "savings_alpha2@r90",
    "savings_alpha2@r10",
    "savings_alpha4@r10",
    "savings_alpha2@rl50",
]


def test_energy_tradeoff(benchmark):
    sweep = run_experiment_benchmark(benchmark, "energy-tradeoff")
    print_figure("Energy trade-off", sweep, COLUMNS)

    for row in sweep.rows:
        # Range ratios are proper fractions and ordered.
        assert 0.0 < row["rl50/r100"] <= row["r10/r100"] <= row["r90/r100"] <= 1.0
        # Savings are consistent with the ratios (monotone, within [0, 1)).
        assert 0.0 <= row["savings_alpha2@r90"] <= row["savings_alpha2@r10"] < 1.0
        # A higher path-loss exponent amplifies the savings.
        assert row["savings_alpha4@r10"] >= row["savings_alpha2@r10"]
        # Keeping only half the nodes connected must save a large share of
        # the energy relative to full permanent connectivity.
        assert row["savings_alpha2@rl50"] > 0.3
