"""Benchmarks of the parallel runner and the vectorized frame reduction.

Two questions are answered mechanically here:

* how does ``SimulationConfig.workers`` scale the wall-clock time of
  ``run_fixed_range`` / ``collect_frame_statistics`` (and is the parallel
  result still bit-identical to the serial one);
* how much faster is the batched MST-sweep frame reduction
  (:func:`repro.simulation.engine.frame_statistics_batch`) than the seed's
  dense per-edge sweep (:func:`repro.simulation.engine.
  component_growth_curve_reference`).

The workload size follows ``REPRO_BENCH_SCALE`` (``smoke`` by default; the
``default``/``paper`` presets use the acceptance-size workload of n=128,
steps=200, iterations=8).  Speedup assertions only engage when the machine
actually has multiple cores — on a single-core box the parallel backend
still runs (and must still be bit-identical), it just cannot be faster.
"""

import os
import time

import numpy as np
import pytest

from repro.simulation.config import MobilitySpec, NetworkConfig, SimulationConfig
from repro.simulation.engine import (
    component_growth_curve_reference,
    frame_statistics_batch,
)
from repro.simulation.runner import collect_frame_statistics, run_fixed_range

from _helpers import bench_scale_name, write_bench_summary

try:
    # Respect cgroup/affinity limits (CI quotas), not just the host size.
    CPU_COUNT = len(os.sched_getaffinity(0))
except AttributeError:  # platforms without sched_getaffinity
    CPU_COUNT = os.cpu_count() or 1
#: Worker counts whose wall-clock times are reported.
WORKER_COUNTS = (1, 2, 4)


def _scaling_config() -> SimulationConfig:
    """The acceptance-criteria workload (shrunk at smoke scale)."""
    if bench_scale_name() == "smoke":
        node_count, steps, iterations = 32, 40, 8
    else:
        node_count, steps, iterations = 128, 200, 8
    side = float(node_count * node_count)  # the paper's n = sqrt(l) scaling
    return SimulationConfig(
        network=NetworkConfig(node_count=node_count, side=side, dimension=2),
        mobility=MobilitySpec.paper_drunkard(side),
        steps=steps,
        iterations=iterations,
        seed=20020623,
        transmitting_range=0.18 * side,
    )


def _timed(function):
    start = time.perf_counter()
    result = function()
    return result, time.perf_counter() - start


@pytest.mark.parametrize("runner", [run_fixed_range, collect_frame_statistics])
def test_parallel_scaling(benchmark, runner):
    """Wall-clock speedup of workers=2/4 over the serial runner."""
    config = _scaling_config()
    serial, serial_seconds = _timed(lambda: runner(config))
    rows = [("1", serial_seconds, 1.0)]
    for workers in WORKER_COUNTS[1:]:
        parallel, seconds = _timed(lambda: runner(config.with_workers(workers)))
        assert parallel == serial, f"workers={workers} changed the results"
        rows.append((str(workers), seconds, serial_seconds / seconds))
    print(f"\n{runner.__name__} scaling (n={config.network.node_count}, "
          f"steps={config.steps}, iterations={config.iterations}, "
          f"{CPU_COUNT} cores):")
    for workers, seconds, speedup in rows:
        print(f"  workers={workers:>2}: {seconds:8.3f}s  speedup {speedup:4.2f}x")
    write_bench_summary(
        f"parallel_scaling_{runner.__name__}",
        {
            "node_count": config.network.node_count,
            "steps": config.steps,
            "iterations": config.iterations,
            "cpu_count": CPU_COUNT,
            "seconds_by_workers": {
                workers: seconds for workers, seconds, _ in rows
            },
            "best_speedup": max(speedup for _, _, speedup in rows),
            "speedup_bar_enforced": CPU_COUNT >= 4,
        },
    )
    if CPU_COUNT >= 4:
        best = max(speedup for _, _, speedup in rows)
        assert best >= 2.0, f"expected >= 2x speedup on {CPU_COUNT} cores, got {best:.2f}x"
    # Report the serial run under pytest-benchmark for history tracking.
    benchmark.pedantic(runner, args=(config,), rounds=1, iterations=1, warmup_rounds=0)


def test_vectorized_frame_statistics_micro(benchmark):
    """Batched MST-sweep reduction vs the seed's dense per-edge sweep."""
    node_count = 32 if bench_scale_name() == "smoke" else 128
    frames = np.random.default_rng(3).uniform(
        0.0, float(node_count * node_count), size=(64, node_count, 2)
    )

    def seed_reduction():
        return [component_growth_curve_reference(frame) for frame in frames]

    reference, reference_seconds = _timed(seed_reduction)
    batched = benchmark(lambda: frame_statistics_batch(frames))
    assert [statistics.component_curve for statistics in batched] == reference
    batched_seconds = benchmark.stats.stats.mean
    print(f"\nframe reduction (n={node_count}, {len(frames)} frames): "
          f"seed {reference_seconds / len(frames) * 1e3:.3f} ms/frame, "
          f"vectorized {batched_seconds / len(frames) * 1e3:.3f} ms/frame, "
          f"speedup {reference_seconds / batched_seconds:.1f}x")
    assert batched_seconds < reference_seconds, (
        "vectorized reduction should beat the dense per-edge sweep"
    )
