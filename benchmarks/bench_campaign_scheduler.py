"""Benchmark of the campaign scheduler's worker-budget scaling.

Four *heterogeneous* scenarios (wall-clock dominated by per-value work
whose duration differs 4x between the shortest and the longest scenario)
run three ways:

* **serial** — the scenario-by-scenario loop: total wall-clock is the sum
  of all scenarios;
* **scheduler, budget 2 / 4** — all scenarios share one worker budget;
  the round-robin task queue keeps every scenario in flight and the
  adaptive allotment folds workers freed by the short scenarios into the
  long ones, so wall-clock approaches the longest scenario, not the sum.

The per-value work is a sleep (duration keyed to the scenario), which
makes the benchmark meaningful on any machine: scenario concurrency is
about *overlapping* independent work, and a single-core box overlaps
sleeps exactly like a 64-core box overlaps simulations.  The acceptance
bar is scheduler(budget 4) at least 1.5x faster than the serial loop;
results must be identical across all three runs.

The workload size follows ``REPRO_BENCH_SCALE`` (``smoke`` by default).
"""

import time
from dataclasses import dataclass
from typing import Dict

from repro.campaigns import CampaignRunner, CampaignSpec
from repro.experiments.registry import (
    Experiment,
    ExperimentScale,
    register_experiment,
)
from repro.simulation.sweep import SweepResult, sweep_parameter
from repro.store import ResultStore

from _helpers import bench_scale_name, write_bench_summary

BENCH_ID = "bench-sleep-exp"

#: Per-value sleep at smoke scale; scenario ``seed`` scales it, so the
#: four scenarios (seeds 1..4) are 4x apart in duration.
BASE_SECONDS = 0.05 if bench_scale_name() == "smoke" else 0.15


@dataclass(frozen=True)
class SleepMeasure:
    """Picklable measure: sleep proportional to the scenario seed."""

    seed: int

    def __call__(self, value: float) -> Dict[str, float]:
        time.sleep(BASE_SECONDS * self.seed)
        return {"metric": value * 2.0 + self.seed}


def _sleep_measure(scale: ExperimentScale) -> SleepMeasure:
    return SleepMeasure(seed=scale.seed or 0)


def run_sleep_experiment(scale: ExperimentScale, checkpoint=None) -> SweepResult:
    return sweep_parameter(
        "side",
        scale.sides,
        _sleep_measure(scale),
        workers=scale.sweep_workers,
        checkpoint=checkpoint,
    )


register_experiment(
    Experiment(
        identifier=BENCH_ID,
        title="Synthetic sleeping experiment",
        description="Heterogeneous-duration scenarios for the scheduler benchmark.",
        paper_reference="(benchmark only)",
        run=run_sleep_experiment,
        parameter_name="side",
        sweep_measure=_sleep_measure,
    )
)


def _spec() -> CampaignSpec:
    return CampaignSpec.from_dict(
        {
            "name": "bench-scheduler",
            "experiments": [BENCH_ID],
            "scale": "smoke",
            "overrides": {
                "sides": [10.0, 20.0, 30.0],
                "steps": 1,
                "iterations": 1,
                "stationary_iterations": 1,
            },
            # Four heterogeneous scenarios: durations 1x, 2x, 3x, 4x.
            "matrix": {"seed": [1, 2, 3, 4]},
        }
    )


def _timed(function):
    start = time.perf_counter()
    result = function()
    return result, time.perf_counter() - start


def test_campaign_scheduler_scaling(benchmark, tmp_path):
    """Wall-clock vs worker budget for four heterogeneous scenarios."""
    spec = _spec()

    serial, serial_seconds = _timed(
        lambda: benchmark.pedantic(
            CampaignRunner(spec, ResultStore(tmp_path / "serial")).run,
            rounds=1,
            iterations=1,
            warmup_rounds=0,
        )
    )
    timings = {}
    results = {}
    for budget in (1, 2, 4):
        runner = CampaignRunner(
            spec, ResultStore(tmp_path / f"budget-{budget}"), total_workers=budget
        )
        results[budget], timings[budget] = _timed(runner.run)

    ideal = serial_seconds / 4  # perfectly-overlapped four scenarios
    print()
    print(f"campaign scheduler benchmark ({bench_scale_name()} scale)")
    print(f"  4 heterogeneous scenarios x {len(spec.base_scale().sides)} values")
    print(f"  {'mode':16s} | {'seconds':>8s} | speedup vs serial")
    print(f"  {'serial loop':16s} | {serial_seconds:8.3f} | 1.00x")
    for budget, seconds in timings.items():
        print(
            f"  scheduler W={budget:2d}  | {seconds:8.3f} | "
            f"{serial_seconds / seconds:.2f}x"
        )
    print(f"  (ideal overlap at W=4: {ideal:.3f}s)")

    # Identical results in every mode, scenario by scenario, row by row.
    for budget, result in results.items():
        assert result.sweeps.keys() == serial.sweeps.keys()
        for scenario_id, sweep in result.sweeps.items():
            assert sweep.rows == serial.sweeps[scenario_id].rows, (
                f"budget {budget} changed {scenario_id}"
            )

    write_bench_summary(
        "campaign_scheduler",
        {
            "scenarios": 4,
            "values_per_scenario": len(spec.base_scale().sides),
            "serial_seconds": serial_seconds,
            "seconds_by_budget": {
                budget: seconds for budget, seconds in timings.items()
            },
            "speedup_budget_4": serial_seconds / timings[4],
        },
    )

    # Freed workers rebalance into still-running scenarios: budget 4 must
    # beat the serial scenario loop decisively.
    speedup = serial_seconds / timings[4]
    assert speedup >= 1.5, (
        f"scheduler at budget 4 only {speedup:.2f}x over the serial loop "
        f"({timings[4]:.3f}s vs {serial_seconds:.3f}s)"
    )
    # More budget never slows the campaign down (small tolerance for
    # pool-startup jitter).
    assert timings[4] <= timings[1] * 1.10
