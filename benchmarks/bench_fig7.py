"""Figure 7 — r100/rstationary vs the fraction of stationary nodes.

The paper sweeps pstationary from 0 to 1 at l = 4096, n = 64 and finds a
sharp drop between 0.4 and 0.6: once about half the nodes are stationary
the network needs no more range than a fully stationary one.
"""

from _helpers import print_figure, run_experiment_benchmark

COLUMNS = ["r100/rstationary"]


def test_figure7_stationary_fraction(benchmark):
    sweep = run_experiment_benchmark(benchmark, "fig7")
    print_figure("Figure 7", sweep, COLUMNS)

    ratios = sweep.series("r100/rstationary")
    # The all-mobile end needs at least as much range as the all-stationary
    # end (which is the stationary case by construction).
    assert ratios[0] >= ratios[-1] - 1e-9
    # Every ratio stays within a sensible band around 1.
    assert all(0.2 < ratio < 3.0 for ratio in ratios)
