"""Micro-benchmarks of the hot paths of the simulation engine.

Every mobility step of every iteration builds a communication graph,
extracts its components, and (in trace-statistics mode) computes the exact
critical range and component-growth curve.  These benchmarks time those
four operations at the paper's largest network size (n = 128 for l = 16K)
so that performance regressions in the substrate are caught.
"""

import numpy as np
import pytest

from repro.connectivity.critical_range import critical_range
from repro.graph.builder import build_communication_graph
from repro.graph.components import connected_components, is_connected
from repro.simulation.engine import component_growth_curve, frame_statistics

NODE_COUNT = 128          # n = sqrt(16384), the paper's largest setting
SIDE = 16384.0
RADIUS = 2200.0           # near the connectivity threshold for this density


@pytest.fixture(scope="module")
def placement() -> np.ndarray:
    return np.random.default_rng(3).uniform(0.0, SIDE, size=(NODE_COUNT, 2))


def test_graph_construction(benchmark, placement):
    graph = benchmark(lambda: build_communication_graph(placement, RADIUS))
    assert graph.node_count == NODE_COUNT


def test_connected_components(benchmark, placement):
    graph = build_communication_graph(placement, RADIUS)
    components = benchmark(lambda: connected_components(graph))
    assert sum(len(c) for c in components) == NODE_COUNT


def test_connectivity_check(benchmark, placement):
    graph = build_communication_graph(placement, RADIUS)
    benchmark(lambda: is_connected(graph))


def test_exact_critical_range(benchmark, placement):
    value = benchmark(lambda: critical_range(placement))
    assert value > 0.0


def test_component_growth_curve(benchmark, placement):
    curve = benchmark(lambda: component_growth_curve(placement))
    assert curve[-1][1] == NODE_COUNT


def test_frame_statistics(benchmark, placement):
    stats = benchmark(lambda: frame_statistics(placement))
    assert stats.node_count == NODE_COUNT


def test_mobility_step_waypoint(benchmark):
    """One random-waypoint step for the paper's largest network."""
    import repro

    region = repro.Region.square(SIDE)
    rng = repro.make_rng(9)
    model = repro.RandomWaypointModel(vmin=0.1, vmax=0.01 * SIDE, tpause=2000)
    model.initialize(region.sample_uniform(NODE_COUNT, rng), region, rng)
    benchmark(lambda: model.step(rng))
