"""Benchmark: shared-memory vs pickle worker→parent result hand-off.

One worker process builds a paper-scale
:class:`~repro.simulation.results.FrameStatisticsColumns` payload once
(cached in the worker between calls), then returns it repeatedly through
each transport:

* **pickle** — the PR 2 compact transport: pack worker-side, ship every
  byte through the executor pipe, unpack parent-side;
* **shm** — PR 5's zero-copy transport: the worker writes the arrays once
  into a shared-memory segment and the parent adopts views
  (:mod:`repro.simulation.shm`); only a tiny handle crosses the pipe.

The timed region is exactly the hand-off (submit → adopted result in the
parent); payload construction is excluded by warm-up calls, transports
alternate round by round, and each transport's *minimum* is compared
(interference only ever inflates a sample).  The whole measurement runs
in a **fresh interpreter** (pyperf-style process isolation): glibc's
dynamic mmap threshold means a parent whose allocator was churned by
unrelated earlier work unpickles up to 2x faster than a fresh one, which
would turn the assertion into a test of whatever ran before this file.

The acceptance bar is shm at least 2x faster per hand-off —
serialization cost, not parallel compute, so the bar holds on a
single-core box too.  Both transports must deliver bit-identical
containers (asserted both in the fresh interpreter and in-process).

The payload size follows ``REPRO_BENCH_SCALE`` (``smoke`` by default).
"""

import json
import os
import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.simulation.results import FrameStatisticsColumns
from repro.simulation.shm import (
    adopt_result,
    ensure_shared_memory_tracker,
    payload_nbytes,
    share_columns,
    shm_available,
)

from _helpers import bench_scale_name, write_bench_summary

#: (frames, node_count, hand-offs timed) per scale.  Payloads are kept
#: in the tens of MB even at smoke scale: per-hand-off constant costs
#: (pool round trip, segment setup) are several ms, so a small payload
#: would make the 2x bar a coin flip between those constants rather
#: than a measurement of the transports.
_SIZES = {
    "smoke": (20000, 96, 6),
    "default": (10000, 128, 6),
    "paper": (10000, 128, 10),
}

_PAYLOAD_CACHE = {}


def build_payload(frames: int, node_count: int) -> FrameStatisticsColumns:
    """A synthetic frame-statistics container with paper-like shape.

    Roughly ``node_count - 1`` breakpoints per frame (every MST edge that
    grows the largest component), float64 ranges — the same columns and
    dtypes a real trace-statistics iteration produces.
    """
    rng = np.random.default_rng(20020623)
    per_frame = rng.integers(node_count // 2, node_count, size=frames)
    offsets = np.concatenate([[0], np.cumsum(per_frame)])
    total = int(offsets[-1])
    return FrameStatisticsColumns(
        node_count=node_count,
        critical_ranges=rng.random(frames),
        curve_offsets=offsets,
        curve_ranges=rng.random(total),
        curve_sizes=rng.integers(1, node_count + 1, size=total),
    )


def produce(frames: int, node_count: int, transport: str):
    """Worker body: return the cached payload through ``transport``."""
    key = (frames, node_count)
    if key not in _PAYLOAD_CACHE:
        _PAYLOAD_CACHE[key] = build_payload(frames, node_count)
    return share_columns(_PAYLOAD_CACHE[key], transport)


def timing_main() -> None:
    """Measure both transports in this (fresh) interpreter; print JSON."""
    frames, node_count, rounds = _SIZES.get(
        bench_scale_name(), _SIZES["smoke"]
    )
    reference = build_payload(frames, node_count)
    samples = {"pickle": [], "shm": []}
    ensure_shared_memory_tracker()
    with ProcessPoolExecutor(max_workers=1) as pool:
        for transport in ("pickle", "shm"):
            # Warm-up: builds the worker-side payload cache, the pool,
            # and each transport's first-use costs.
            warm = adopt_result(
                pool.submit(produce, frames, node_count, transport).result()
            )
            assert warm == reference
            del warm
        for _ in range(rounds):
            for transport in ("pickle", "shm"):
                start = time.perf_counter()
                result = adopt_result(
                    pool.submit(produce, frames, node_count, transport).result()
                )
                samples[transport].append(time.perf_counter() - start)
                # Bit-identical delivery, whatever the transport.
                assert result == reference, transport
                assert np.array_equal(
                    result.curve_ranges, reference.curve_ranges
                )
                del result
    print(json.dumps({
        "frames": frames,
        "node_count": node_count,
        "payload_bytes": payload_nbytes(reference),
        "rounds": rounds,
        "pickle_seconds_per_handoff": min(samples["pickle"]),
        "shm_seconds_per_handoff": min(samples["shm"]),
    }))


def test_shm_transport_handoff(benchmark):
    """Per-hand-off wall clock of the shm vs the pickle transport."""
    if not shm_available():
        pytest.skip("no usable POSIX shared memory on this host")
    frames, node_count, rounds = _SIZES.get(
        bench_scale_name(), _SIZES["smoke"]
    )

    # Bit-exact delivery, checked in this process too.
    reference = build_payload(frames, node_count)
    adopted = adopt_result(share_columns(reference, "shm"))
    assert adopted == reference
    assert np.array_equal(adopted.curve_ranges, reference.curve_ranges)
    del adopted

    # The timing itself runs in a fresh interpreter (see module
    # docstring for why in-process timing is unsound here).
    process = subprocess.run(
        [
            sys.executable,
            "-c",
            "from bench_shm_transport import timing_main; timing_main()",
        ],
        cwd=str(Path(__file__).resolve().parent),
        env={
            **os.environ,
            "PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src"),
        },
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert process.returncode == 0, process.stderr
    metrics = json.loads(process.stdout.splitlines()[-1])
    pickle_seconds = metrics["pickle_seconds_per_handoff"]
    shm_seconds = metrics["shm_seconds_per_handoff"]
    speedup = pickle_seconds / shm_seconds

    print(f"\nshm transport benchmark ({bench_scale_name()} scale)")
    print(
        f"  payload: {metrics['frames']} frames, n={metrics['node_count']}, "
        f"{metrics['payload_bytes'] / 1e6:.1f} MB raw arrays"
    )
    print(f"  pickle hand-off: {pickle_seconds * 1e3:8.2f} ms (min of {rounds})")
    print(f"  shm hand-off:    {shm_seconds * 1e3:8.2f} ms (min of {rounds})")
    print(f"  speedup: {speedup:.2f}x")
    write_bench_summary("shm_transport", {**metrics, "speedup": speedup})
    assert speedup >= 2.0, (
        f"shared-memory hand-off only {speedup:.2f}x faster than pickle "
        f"({shm_seconds * 1e3:.2f} ms vs {pickle_seconds * 1e3:.2f} ms)"
    )
    # Report one hand-off under pytest-benchmark for history tracking.
    ensure_shared_memory_tracker()
    with ProcessPoolExecutor(max_workers=1) as pool:
        pool.submit(produce, frames, node_count, "pickle").result()
        benchmark.pedantic(
            lambda: adopt_result(
                pool.submit(produce, frames, node_count, "shm").result()
            ),
            rounds=1,
            iterations=1,
            warmup_rounds=0,
        )
