"""Ablation — does the mobility model matter?

The paper's central qualitative finding is that random waypoint and
drunkard mobility produce nearly identical connectivity statistics.  This
ablation runs four models (the paper's two plus random direction and
Gauss-Markov) on identical networks and measures how far apart their r100
and r90 estimates are.
"""

import os

import pytest

import repro
from repro.experiments.report import format_table
from repro.simulation.search import estimate_thresholds_from_statistics

SIDE = 1024.0
NODE_COUNT = 32
SEED = 77


def _scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    steps = {"smoke": 30, "default": 150, "paper": 10000}[name]
    iterations = {"smoke": 2, "default": 3, "paper": 50}[name]
    return steps, iterations


def _thresholds_for(spec, steps, iterations):
    config = repro.SimulationConfig(
        network=repro.NetworkConfig(node_count=NODE_COUNT, side=SIDE, dimension=2),
        mobility=spec,
        steps=steps,
        iterations=iterations,
        seed=SEED,
    )
    statistics = repro.collect_frame_statistics(config)
    return estimate_thresholds_from_statistics(statistics)


def _all_models(steps, iterations):
    specs = {
        "waypoint": repro.MobilitySpec.paper_waypoint(SIDE),
        "drunkard": repro.MobilitySpec.paper_drunkard(SIDE),
        "random-direction": repro.MobilitySpec(
            name="random-direction",
            parameters={"speed": 0.01 * SIDE, "travel_steps": 50, "tpause": 10},
        ),
        "gauss-markov": repro.MobilitySpec(
            name="gauss-markov",
            parameters={"mean_speed": 0.01 * SIDE, "alpha": 0.75, "noise_std": 2.0},
        ),
    }
    return {name: _thresholds_for(spec, steps, iterations) for name, spec in specs.items()}


def test_mobility_model_ablation(benchmark):
    steps, iterations = _scale()
    results = benchmark.pedantic(
        _all_models, args=(steps, iterations), rounds=1, iterations=1, warmup_rounds=0
    )

    rows = [
        {"model": name, "r100": t.r100, "r90": t.r90, "r10": t.r10, "r0": t.r0}
        for name, t in results.items()
    ]
    print()
    print(format_table(rows, precision=4))

    # The paper's claim, checked for its own two models: thresholds within a
    # modest relative band of each other.
    waypoint = results["waypoint"]
    drunkard = results["drunkard"]
    assert waypoint.r100 == pytest.approx(drunkard.r100, rel=0.5)
    assert waypoint.r90 == pytest.approx(drunkard.r90, rel=0.5)
    assert waypoint.r10 == pytest.approx(drunkard.r10, rel=0.5)

    # The extension models stay within a wider but still bounded band.
    values = [t.r100 for t in results.values()]
    assert max(values) <= 2.5 * min(values)
