"""Figure 9 — r100/rstationary vs the maximum velocity vmax.

The paper sweeps vmax from 0.01 l to 0.5 l (at l = 4096, n = 64) and finds
r100 almost independent of the velocity: faster nodes reach their waypoint
sooner and then pause, so the "quantity of mobility" barely changes.
"""

from _helpers import print_figure, run_experiment_benchmark

COLUMNS = ["r100/rstationary"]


def test_figure9_velocity(benchmark):
    sweep = run_experiment_benchmark(benchmark, "fig9")
    print_figure("Figure 9", sweep, COLUMNS)

    ratios = sweep.series("r100/rstationary")
    assert all(0.2 < ratio < 3.0 for ratio in ratios)
    # Near-independence of velocity: max-to-min spread stays moderate.
    assert max(ratios) <= 2.0 * min(ratios)
