"""Extension — delay-tolerant dissemination at the paper's thresholds.

Quantifies the third dependability scenario of Section 4: at r10 the
network is disconnected most of the time, yet epidemic dissemination over
the mobility process still delivers a message to (nearly) every node; the
price of the energy saving is delay, not delivery failure.
"""

import os

import repro
from repro.dissemination.epidemic import simulate_epidemic_dissemination
from repro.experiments.report import format_table
from repro.mobility.trace import record_trace
from repro.simulation.search import estimate_thresholds_from_statistics

SIDE = 1024.0
NODE_COUNT = 32
SEED = 13


def _steps() -> int:
    name = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    return {"smoke": 120, "default": 600, "paper": 10000}[name]


def _run():
    steps = _steps()
    config = repro.SimulationConfig(
        network=repro.NetworkConfig(node_count=NODE_COUNT, side=SIDE, dimension=2),
        mobility=repro.MobilitySpec.paper_waypoint(SIDE),
        steps=steps,
        iterations=2,
        seed=SEED,
    )
    statistics = repro.collect_frame_statistics(config)
    thresholds = estimate_thresholds_from_statistics(statistics)

    region = repro.Region.square(SIDE)
    rng = repro.make_rng(SEED)
    initial = repro.uniform_placement(NODE_COUNT, region, rng)
    trace = record_trace(
        repro.MobilitySpec.paper_waypoint(SIDE).create(), initial, region,
        steps=steps, seed=SEED,
    )
    results = {
        label: simulate_epidemic_dissemination(trace.frames, radius)
        for label, radius in (("r100", thresholds.r100), ("r10", thresholds.r10))
    }
    return thresholds, results


def test_dissemination_at_r10_vs_r100(benchmark):
    thresholds, results = benchmark.pedantic(
        _run, rounds=1, iterations=1, warmup_rounds=0
    )

    rows = [
        {
            "range": label,
            "final coverage": result.final_coverage,
            "mean delay": result.mean_delivery_delay(),
        }
        for label, result in results.items()
    ]
    print()
    print(format_table(rows, precision=3))

    r100_result = results["r100"]
    r10_result = results["r10"]
    # At r100 the initial graph is already (nearly) connected: full coverage
    # essentially immediately.
    assert r100_result.final_coverage == 1.0
    # At r10 the message still reaches the vast majority of nodes eventually.
    assert r10_result.final_coverage >= 0.9
    # But it takes longer: the mean delivery delay can only grow when the
    # range shrinks.
    assert (r10_result.mean_delivery_delay() or 0.0) >= (
        r100_result.mean_delivery_delay() or 0.0
    )
