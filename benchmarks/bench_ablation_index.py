"""Ablation — grid spatial index vs brute-force graph construction.

A design choice called out in DESIGN.md: the communication-graph builder
switches from a vectorised all-pairs pass to a uniform-grid index above
``BRUTE_FORCE_THRESHOLD`` nodes.  These micro-benchmarks measure both
strategies at two network sizes (and assert they produce identical edge
sets), so the crossover can be re-checked when the implementation changes.
"""

import numpy as np
import pytest

from repro.graph.builder import neighbor_pairs

SIDE = 1000.0
RADIUS = 60.0


def _placement(n: int, seed: int = 1) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.0, SIDE, size=(n, 2))


@pytest.mark.parametrize("node_count", [100, 800])
def test_builder_brute_force(benchmark, node_count):
    points = _placement(node_count)
    pairs = benchmark(lambda: neighbor_pairs(points, RADIUS, method="brute"))
    assert pairs == neighbor_pairs(points, RADIUS, method="grid")


@pytest.mark.parametrize("node_count", [100, 800])
def test_builder_grid_index(benchmark, node_count):
    points = _placement(node_count)
    pairs = benchmark(lambda: neighbor_pairs(points, RADIUS, method="grid"))
    assert pairs == neighbor_pairs(points, RADIUS, method="brute")


def test_builder_auto_selects_reasonably(benchmark):
    """The auto heuristic should never be drastically slower than the best
    of the two strategies on a mid-sized network."""
    points = _placement(400)
    benchmark(lambda: neighbor_pairs(points, RADIUS, method="auto"))
