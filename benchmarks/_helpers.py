"""Shared helpers for the benchmark harness.

Every figure benchmark follows the same pattern: run the registered
experiment once (timed with pytest-benchmark's ``pedantic`` mode so the
multi-second simulation is not repeated dozens of times), print the rows /
series the paper's figure plots, and make a light qualitative assertion
about the shape of the result (who wins, which direction a curve moves).

The scale is selected with the ``REPRO_BENCH_SCALE`` environment variable
(``smoke`` by default so the whole harness finishes in a few minutes;
``default`` reproduces the shapes more faithfully; ``paper`` uses the
paper's own parameters and takes hours).

Machine-readable summaries
--------------------------
Benchmarks additionally emit one ``BENCH_<name>.json`` file per run via
:func:`write_bench_summary` (wall-clock seconds, speedups, payload bytes
— whatever the benchmark measures), into the directory named by
``REPRO_BENCH_OUT`` (default ``benchmarks/results``).  ``scripts/
ci_check.sh`` collects and prints them, so the perf trajectory is tracked
across PRs as structured data instead of living only in log text.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Any, Dict, Sequence

from repro.experiments import get_experiment, render_sweep
from repro.experiments.registry import scale_by_name
from repro.simulation.sweep import SweepResult


def bench_scale_name() -> str:
    """The scale preset used by the benchmark harness."""
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


def bench_output_dir() -> Path:
    """Directory the ``BENCH_<name>.json`` summaries are written to."""
    root = os.environ.get("REPRO_BENCH_OUT")
    if root:
        return Path(root)
    return Path(__file__).resolve().parent / "results"


def write_bench_summary(name: str, metrics: Dict[str, Any]) -> Path:
    """Write one benchmark's summary as ``BENCH_<name>.json``.

    ``metrics`` is stored verbatim under ``"metrics"`` next to the scale
    preset and basic host facts, so summaries from different machines and
    PRs remain comparable.  Returns the written path.
    """
    path = bench_output_dir() / f"BENCH_{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "benchmark": name,
        "scale": bench_scale_name(),
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "metrics": metrics,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


def run_experiment_benchmark(benchmark, identifier: str) -> SweepResult:
    """Run a registered experiment exactly once under pytest-benchmark."""
    experiment = get_experiment(identifier)
    scale = scale_by_name(bench_scale_name())
    result = benchmark.pedantic(
        experiment.run, args=(scale,), rounds=1, iterations=1, warmup_rounds=0
    )
    return result


def print_figure(identifier: str, sweep: SweepResult, columns: Sequence[str]) -> None:
    """Print the series the corresponding paper figure plots."""
    print()
    print(render_sweep(
        sweep,
        columns=[sweep.parameter_name] + list(columns),
        title=f"{identifier} (scale: {bench_scale_name()})",
        precision=4,
    ))


def assert_non_decreasing(values: Sequence[float], slack: float = 0.0) -> None:
    """Assert a series does not decrease by more than ``slack`` per step."""
    for before, after in zip(values, values[1:]):
        assert after >= before - slack, f"series decreased: {values}"


def assert_non_increasing(values: Sequence[float], slack: float = 0.0) -> None:
    """Assert a series does not increase by more than ``slack`` per step."""
    for before, after in zip(values, values[1:]):
        assert after <= before + slack, f"series increased: {values}"
