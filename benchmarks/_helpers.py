"""Shared helpers for the benchmark harness.

Every figure benchmark follows the same pattern: run the registered
experiment once (timed with pytest-benchmark's ``pedantic`` mode so the
multi-second simulation is not repeated dozens of times), print the rows /
series the paper's figure plots, and make a light qualitative assertion
about the shape of the result (who wins, which direction a curve moves).

The scale is selected with the ``REPRO_BENCH_SCALE`` environment variable
(``smoke`` by default so the whole harness finishes in a few minutes;
``default`` reproduces the shapes more faithfully; ``paper`` uses the
paper's own parameters and takes hours).
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.experiments import get_experiment, render_sweep
from repro.experiments.registry import scale_by_name
from repro.simulation.sweep import SweepResult


def bench_scale_name() -> str:
    """The scale preset used by the benchmark harness."""
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


def run_experiment_benchmark(benchmark, identifier: str) -> SweepResult:
    """Run a registered experiment exactly once under pytest-benchmark."""
    experiment = get_experiment(identifier)
    scale = scale_by_name(bench_scale_name())
    result = benchmark.pedantic(
        experiment.run, args=(scale,), rounds=1, iterations=1, warmup_rounds=0
    )
    return result


def print_figure(identifier: str, sweep: SweepResult, columns: Sequence[str]) -> None:
    """Print the series the corresponding paper figure plots."""
    print()
    print(render_sweep(
        sweep,
        columns=[sweep.parameter_name] + list(columns),
        title=f"{identifier} (scale: {bench_scale_name()})",
        precision=4,
    ))


def assert_non_decreasing(values: Sequence[float], slack: float = 0.0) -> None:
    """Assert a series does not decrease by more than ``slack`` per step."""
    for before, after in zip(values, values[1:]):
        assert after >= before - slack, f"series decreased: {values}"


def assert_non_increasing(values: Sequence[float], slack: float = 0.0) -> None:
    """Assert a series does not increase by more than ``slack`` per step."""
    for before, after in zip(values, values[1:]):
        assert after <= before + slack, f"series increased: {values}"
