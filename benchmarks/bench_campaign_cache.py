"""Benchmark of the campaign runner's content-addressed cache.

Measures one campaign grid (several figures sharing the waypoint and
drunkard system-size sweeps) three ways:

* **cold** — empty store: every scenario computes, checkpointing as it
  goes;
* **warm** — identical spec re-run: every scenario must be a pure cache
  hit with *zero* computed values, and the sweeps must be exactly equal
  to the cold run's;
* **resume** — the store is stripped back to the per-value checkpoints
  (the sweep-level entries are evicted, simulating a campaign killed just
  before finishing): the re-run must reassemble every sweep from
  checkpoints without re-measuring anything.

The warm run exercises only key derivation plus store reads, so it must
be dramatically faster than the cold run; the report also prints the
store's on-disk footprint.

The workload size follows ``REPRO_BENCH_SCALE`` (``smoke`` by default).
"""

import time

from repro.campaigns import CampaignRunner, CampaignSpec
from repro.campaigns.runner import scenario_sweep_key
from repro.experiments.registry import get_experiment
from repro.store import ResultStore

from _helpers import bench_scale_name, write_bench_summary


def _campaign_spec():
    """A grid of four figures over two seeds (figs 2/4 share one sweep)."""
    if bench_scale_name() == "smoke":
        overrides = {
            "sides": [256.0, 576.0],
            "steps": 30,
            "iterations": 2,
            "stationary_iterations": 30,
        }
    else:
        overrides = {
            "sides": [256.0, 1024.0, 4096.0],
            "steps": 200,
            "iterations": 5,
            "stationary_iterations": 200,
        }
    return CampaignSpec.from_dict(
        {
            "name": "bench-cache",
            "experiments": ["fig2", "fig3", "fig4", "fig5"],
            "scale": "smoke",
            "overrides": overrides,
            "matrix": {"seed": [20020623, 20020624]},
        }
    )


def _timed(function):
    start = time.perf_counter()
    result = function()
    return result, time.perf_counter() - start


def test_campaign_cache(benchmark, tmp_path):
    """Cold vs warm vs resumed campaign wall-clock and store footprint."""
    spec = _campaign_spec()
    store = ResultStore(tmp_path / "store")
    runner = CampaignRunner(spec, store)

    cold, cold_seconds = _timed(lambda: benchmark.pedantic(
        runner.run, rounds=1, iterations=1, warmup_rounds=0
    ))
    warm, warm_seconds = _timed(runner.run)
    footprint = store.size_bytes()

    # Strip the sweep-level entries, keeping the per-value checkpoints —
    # the store state a campaign killed mid-assembly would leave behind.
    for scenario in spec.scenarios():
        store.evict(
            scenario_sweep_key(get_experiment(scenario.experiment_id), scenario.scale)
        )
    resumed, resumed_seconds = _timed(runner.run)

    print()
    print(f"campaign cache benchmark ({bench_scale_name()} scale)")
    print(f"  grid: {spec.scenario_count()} scenarios, store {footprint / 1024:.1f} KiB")
    print(f"  {'phase':8s} | {'seconds':>8s} | hits | computed values")
    for label, seconds, result in (
        ("cold", cold_seconds, cold),
        ("warm", warm_seconds, warm),
        ("resume", resumed_seconds, resumed),
    ):
        print(
            f"  {label:8s} | {seconds:8.3f} | {result.cache_hits:4d} | "
            f"{result.computed_values}"
        )

    write_bench_summary(
        "campaign_cache",
        {
            "scenarios": spec.scenario_count(),
            "store_bytes": footprint,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "resume_seconds": resumed_seconds,
            "warm_speedup": cold_seconds / warm_seconds if warm_seconds else 0.0,
        },
    )

    scenario_count = spec.scenario_count()
    # Cold: figs 2/4 and 3/5 share computations, so half the scenarios per
    # seed hit entries their sibling figure just wrote.
    assert cold.cache_hits == scenario_count // 2
    assert cold.computed_values > 0

    # Warm: pure cache hits, zero new simulation work, identical sweeps.
    assert warm.cache_hits == scenario_count
    assert warm.computed_values == 0
    for scenario_id, sweep in warm.sweeps.items():
        assert sweep.rows == cold.sweeps[scenario_id].rows

    # Resume: sweeps reassemble purely from per-value checkpoints; the
    # sibling figure of each shared computation then hits the restored
    # sweep entry again.
    assert resumed.cache_hits == scenario_count // 2
    assert resumed.computed_values == 0
    for outcome in resumed.outcomes:
        if not outcome.cache_hit:
            assert outcome.loaded_values == len(outcome.sweep.rows)
    for scenario_id, sweep in resumed.sweeps.items():
        assert sweep.rows == cold.sweeps[scenario_id].rows

    # The cache must beat recomputation decisively.
    assert warm_seconds < cold_seconds / 5, (
        f"warm campaign ({warm_seconds:.3f}s) not faster than cold "
        f"({cold_seconds:.3f}s) by 5x"
    )
    assert footprint > 0
