"""Overhead of the array-backend seam on the default NumPy path.

The backend refactor (:mod:`repro.backend`) routes every hot-path kernel
through an :class:`~repro.backend.ArrayBackend` handle — a namespace
attribute plus a handful of idiom-helper method calls per Prim iteration
— instead of hard-coded ``numpy`` calls.  That seam is only acceptable if
the default path pays (close to) nothing for it: this benchmark times the
seam kernels against hand-inlined pre-seam NumPy equivalents on the
per-frame hot path (batched MST construction over a trajectory-sized
batch of frames) and enforces an overhead bar of < 2%.

GPU backends (``cupy`` / ``torch``) are additionally timed when the host
can resolve them; on a CPU-only host those bars are skipped, never
enforced.  Timings land in ``BENCH_backend_dispatch.json``.
"""

import math
import time

import numpy as np

from repro.backend import NUMPY_BACKEND, available_backends, resolve_backend
from repro.connectivity.critical_range import minimum_spanning_edges_batch

from _helpers import bench_scale_name, write_bench_summary

#: (batch, node_count) per scale — sized so one pass is a few hundred
#: milliseconds of pure NumPy work: long enough for a relative 2% bar to
#: be resolvable above timer noise, short enough for the interleaved
#: trial schedule to stay under a minute at smoke scale.
_SIZES = {
    "smoke": (512, 96),
    "default": (1024, 96),
    "paper": (1024, 128),
}

#: Interleaved trials per variant.  The bar compares the *minimum* over
#: trials, the standard noise-robust statistic for micro-timings: cache
#: warm-up, scheduler preemption and page faults only ever inflate a
#: trial, so the minimum is each variant's reproducible best case.
_TRIALS = 7

#: The enforced dispatch-overhead bar, as a fraction.
_OVERHEAD_BAR = 0.02


def _inline_squared_distance_matrix(points: np.ndarray) -> np.ndarray:
    """`squared_distance_matrix` exactly as written before the seam."""
    count, dimension = points.shape
    if dimension == 0:
        return np.zeros((count, count))
    column = points[:, 0]
    delta = column[:, None] - column[None, :]
    squared = delta * delta
    for axis in range(1, dimension):
        column = points[:, axis]
        delta = column[:, None] - column[None, :]
        squared += delta * delta
    return squared


def _inline_mst_batch(frames: np.ndarray):
    """`minimum_spanning_edges_batch` exactly as written before the seam.

    Direct fancy indexing, in-place masked stores and ``np.minimum`` where
    the seam version calls ``backend.take_pairs`` / ``backend.put_pairs``
    / ``backend.fill_mask`` — the code the refactor replaced, kept here as
    the dispatch-free baseline.
    """
    points = np.asarray(frames, dtype=np.float64)
    batch, n, _ = points.shape
    squared = np.stack(
        [_inline_squared_distance_matrix(points[index]) for index in range(batch)]
    )
    batch_index = np.arange(batch)
    in_tree = np.zeros((batch, n), dtype=bool)
    in_tree[:, 0] = True
    best = squared[:, 0, :].copy()
    best[:, 0] = math.inf
    parent = np.zeros((batch, n), dtype=np.int64)
    us = np.empty((batch, n - 1), dtype=np.int64)
    vs = np.empty((batch, n - 1), dtype=np.int64)
    lengths = np.empty((batch, n - 1), dtype=np.float64)
    for index in range(n - 1):
        candidate = np.argmin(best, axis=1)
        us[:, index] = parent[batch_index, candidate]
        vs[:, index] = candidate
        lengths[:, index] = best[batch_index, candidate]
        in_tree[batch_index, candidate] = True
        best[batch_index, candidate] = math.inf
        row = np.where(in_tree, math.inf, squared[batch_index, candidate, :])
        closer = row < best
        parent = np.where(closer, candidate[:, None], parent)
        best = np.where(closer, row, best)
    order = np.argsort(lengths, axis=1, kind="stable")
    return (
        np.take_along_axis(us, order, axis=1),
        np.take_along_axis(vs, order, axis=1),
        np.take_along_axis(lengths, order, axis=1),
    )


def _frames() -> np.ndarray:
    batch, n = _SIZES.get(bench_scale_name(), _SIZES["smoke"])
    rng = np.random.default_rng(20020623)
    return rng.random((batch, n, 2)) * 16384.0


def _time_variants(frames: np.ndarray) -> dict:
    """Best-of-``_TRIALS`` seconds per variant, trials interleaved.

    Interleaving (inline, seam, inline, seam, …) instead of timing each
    variant in its own block cancels slow drift — thermal throttling or a
    noisy neighbour hits both variants equally.
    """
    variants = {
        "inline": lambda: _inline_mst_batch(frames),
        "seam": lambda: minimum_spanning_edges_batch(frames),
    }
    for run in variants.values():  # warm-up: caches, allocator, imports
        run()
    seconds = {name: math.inf for name in variants}
    for _ in range(_TRIALS):
        for name, run in variants.items():
            started = time.perf_counter()
            run()
            seconds[name] = min(seconds[name], time.perf_counter() - started)
    return seconds


def test_numpy_seam_overhead_under_two_percent():
    frames = _frames()

    seam_edges = minimum_spanning_edges_batch(frames)
    inline_edges = _inline_mst_batch(frames)
    for seam_column, inline_column in zip(seam_edges, inline_edges):
        assert np.array_equal(seam_column, inline_column)

    seconds = _time_variants(frames)
    overhead = seconds["seam"] / seconds["inline"] - 1.0

    device_seconds = {}
    for name in available_backends():
        backend = resolve_backend(name)
        if backend.is_host:
            continue
        device_frames = backend.from_host(frames)
        minimum_spanning_edges_batch(device_frames, backend=backend)  # warm-up
        backend.synchronize()
        started = time.perf_counter()
        minimum_spanning_edges_batch(device_frames, backend=backend)
        backend.synchronize()
        device_seconds[name] = time.perf_counter() - started

    batch, n = frames.shape[0], frames.shape[1]
    print(f"\nbackend dispatch overhead (B={batch}, n={n}):")
    print(f"  inline numpy : {seconds['inline'] * 1e3:8.2f} ms")
    print(f"  seam (numpy) : {seconds['seam'] * 1e3:8.2f} ms  ({overhead:+.2%})")
    for name, elapsed in sorted(device_seconds.items()):
        print(f"  {name:<13}: {elapsed * 1e3:8.2f} ms")

    write_bench_summary(
        "backend_dispatch",
        {
            "batch": batch,
            "node_count": n,
            "inline_seconds": seconds["inline"],
            "seam_seconds": seconds["seam"],
            "overhead_fraction": overhead,
            "overhead_bar": _OVERHEAD_BAR,
            "device_backends_timed": sorted(device_seconds),
            **{
                f"{name}_seconds": elapsed
                for name, elapsed in sorted(device_seconds.items())
            },
        },
    )
    assert overhead < _OVERHEAD_BAR, (
        f"backend seam costs {overhead:.2%} over inlined numpy "
        f"({seconds['seam']:.4f}s vs {seconds['inline']:.4f}s)"
    )
