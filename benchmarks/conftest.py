"""Benchmark-harness conftest.

The repo-wide pytest configuration uses ``--import-mode=importlib`` (see
pyproject.toml), which does not put a test file's directory on ``sys.path``
the way the legacy prepend mode did.  The benchmark modules import their
shared helpers as ``from _helpers import ...``, so make that resolvable.
"""

import os
import sys

_BENCHMARKS_DIR = os.path.dirname(os.path.abspath(__file__))
if _BENCHMARKS_DIR not in sys.path:
    sys.path.insert(0, _BENCHMARKS_DIR)
