"""Benchmark of the distributed campaign fan-out (serve + HTTP workers).

One campaign of uniform-duration value tasks runs twice through
``serve_campaign`` on a loopback socket: once drained by a single worker
process, once by two.  The per-value work is a fixed sleep, so the
benchmark isolates what the distributed layer itself costs — lease
round-trips, heartbeats, pickled closures over HTTP, result publishing —
from simulation throughput: two workers must overlap the sleeps for
close to a 2x speedup, and anything below 1.4x means the queue/transport
overhead is eating the parallelism.

Results of both runs must be identical (the bit-identity contract of the
distributed transport).  The speedup bar is asserted only on hosts with
at least 4 cores (serve process + two workers + slack); the summary is
emitted regardless.

The workload size follows ``REPRO_BENCH_SCALE`` (``smoke`` by default).
"""

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict

from repro.campaigns import CampaignSpec
from repro.distributed import run_worker, serve_campaign
from repro.experiments.registry import (
    Experiment,
    ExperimentScale,
    register_experiment,
)
from repro.simulation.sweep import SweepResult, sweep_parameter
from repro.store import ResultStore

from _helpers import bench_scale_name, write_bench_summary

BENCH_ID = "bench-fanout-exp"

#: Uniform per-value sleep: long enough to dominate the HTTP round-trips,
#: short enough that the whole benchmark stays in seconds.
TASK_SECONDS = 0.15 if bench_scale_name() == "smoke" else 0.4


@dataclass(frozen=True)
class FanoutMeasure:
    """Picklable measure: one fixed-duration unit of work."""

    seed: int

    def __call__(self, value: float) -> Dict[str, float]:
        time.sleep(TASK_SECONDS)
        return {"metric": value * 2.0 + self.seed}


def _fanout_measure(scale: ExperimentScale) -> FanoutMeasure:
    return FanoutMeasure(seed=scale.seed or 0)


def run_fanout_experiment(scale: ExperimentScale, checkpoint=None) -> SweepResult:
    return sweep_parameter(
        "side",
        scale.sides,
        _fanout_measure(scale),
        workers=scale.sweep_workers,
        checkpoint=checkpoint,
    )


register_experiment(
    Experiment(
        identifier=BENCH_ID,
        title="Synthetic fan-out experiment",
        description="Uniform-duration tasks for the distributed benchmark.",
        paper_reference="(benchmark only)",
        run=run_fanout_experiment,
        parameter_name="side",
        sweep_measure=_fanout_measure,
    )
)


def _spec() -> CampaignSpec:
    return CampaignSpec.from_dict(
        {
            "name": "bench-fanout",
            "experiments": [BENCH_ID],
            "scale": "smoke",
            "overrides": {
                "sides": [10.0, 20.0, 30.0, 40.0],
                "steps": 1,
                "iterations": 1,
                "stationary_iterations": 1,
            },
            # 2 scenarios x 4 values = 8 uniform tasks to fan out.
            "matrix": {"seed": [1, 2]},
        }
    )


def _worker_main(url):
    # Short poll + bounded HTTP timeout: forked workers inherit the
    # server's listening socket, so a poll after the serve ends must time
    # out instead of hanging in the dead backlog.
    run_worker(url, poll_interval=0.02, timeout=10.0)


def _fan_out(spec, store, worker_count):
    """Serve ``spec`` drained by ``worker_count`` worker processes.

    Times the serve itself only: a straggling worker's exit (its last
    poll can race the server shutdown and eat its HTTP timeout in the
    fork-inherited dead backlog) is campaign-external teardown and is
    joined outside the measured window.
    """
    workers = []

    def on_ready(url):
        for _ in range(worker_count):
            process = multiprocessing.get_context("fork").Process(
                target=_worker_main, args=(url,)
            )
            process.start()
            workers.append(process)

    start = time.perf_counter()
    try:
        result = serve_campaign(
            spec,
            store,
            max_retries=2,
            retry_backoff=0.05,
            telemetry_enabled=False,
            on_ready=on_ready,
        )
        return result, time.perf_counter() - start
    finally:
        for process in workers:
            process.join(timeout=60.0)
            if process.is_alive():
                process.kill()


def test_distributed_fanout_scaling(benchmark, tmp_path):
    """Two loopback workers vs one on uniform-duration tasks."""
    spec = _spec()
    task_count = 8

    single, single_seconds = benchmark.pedantic(
        lambda: _fan_out(spec, ResultStore(tmp_path / "one"), 1),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    double, double_seconds = _fan_out(
        spec, ResultStore(tmp_path / "two"), 2
    )

    work_seconds = task_count * TASK_SECONDS
    speedup = single_seconds / double_seconds
    print()
    print(f"distributed fan-out benchmark ({bench_scale_name()} scale)")
    print(f"  {task_count} tasks x {TASK_SECONDS:.2f}s over loopback HTTP")
    print(f"  {'workers':10s} | {'seconds':>8s} | speedup")
    print(f"  {'1':10s} | {single_seconds:8.3f} | 1.00x")
    print(f"  {'2':10s} | {double_seconds:8.3f} | {speedup:.2f}x")
    print(f"  (pure task work: {work_seconds:.2f}s; ideal 2-worker "
          f"wall: {work_seconds / 2:.2f}s)")

    # Bit-identity across fan-out widths, scenario by scenario.
    assert double.sweeps.keys() == single.sweeps.keys()
    for scenario_id, sweep in double.sweeps.items():
        assert sweep.rows == single.sweeps[scenario_id].rows, (
            f"2-worker fan-out changed {scenario_id}"
        )
    assert single.computed_values == double.computed_values == task_count

    # The distributed layer's own tax on a single worker: wall beyond
    # the pure sleep time, per task (lease + payload + publish loop).
    overhead_per_task = max(0.0, single_seconds - work_seconds) / task_count
    write_bench_summary(
        "distributed_fanout",
        {
            "tasks": task_count,
            "task_seconds": TASK_SECONDS,
            "one_worker_seconds": single_seconds,
            "two_worker_seconds": double_seconds,
            "two_worker_speedup": speedup,
            "overhead_per_task_seconds": overhead_per_task,
        },
    )

    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 1.4, (
            f"2-worker loopback fan-out only {speedup:.2f}x over one worker "
            f"({double_seconds:.3f}s vs {single_seconds:.3f}s)"
        )
