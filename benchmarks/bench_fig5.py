"""Figure 5 — largest-component fraction at r90/r10/r0 vs system size (drunkard).

Same as Figure 4 under the drunkard model; the paper stresses that the two
mobility models produce almost indistinguishable curves.
"""

from _helpers import print_figure, run_experiment_benchmark

COLUMNS = [
    "lcc_fraction@r90",
    "lcc_fraction@r10",
    "lcc_fraction@r0",
]


def test_figure5_component_sizes_drunkard(benchmark):
    sweep = run_experiment_benchmark(benchmark, "fig5")
    print_figure("Figure 5", sweep, COLUMNS)

    for row in sweep.rows:
        assert row["lcc_fraction@r0"] <= row["lcc_fraction@r10"] + 1e-9
        assert row["lcc_fraction@r10"] <= row["lcc_fraction@r90"] + 1e-9
        assert row["lcc_fraction@r90"] > 0.85
