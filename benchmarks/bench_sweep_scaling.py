"""Benchmarks of the sweep-level process fan-out and the columnar payloads.

Two questions are answered mechanically here:

* how does ``sweep_parameter(..., workers=...)`` scale the wall-clock time
  of a real figure sweep (and is the parallel sweep still exactly equal to
  the serial one);
* how much smaller do the columnar result containers
  (:class:`repro.simulation.results.StepColumns` /
  :class:`~repro.simulation.results.FrameStatisticsColumns`) pickle than
  the per-step object lists they replaced — this is the payload that
  crosses the worker-process boundary on every parallel run.

The workload size follows ``REPRO_BENCH_SCALE`` (``smoke`` by default).
Speedup assertions only engage when the machine actually has multiple
cores — on a single-core box the parallel backend still runs (and must
still be equal), it just cannot be faster.
"""

import os
import pickle
import time

import pytest

from repro.experiments.figures import SystemSizeMeasure
from repro.experiments.registry import ExperimentScale
from repro.simulation.config import MobilitySpec, NetworkConfig, SimulationConfig
from repro.simulation.results import FrameStatistics, StepRecord
from repro.simulation.runner import collect_frame_statistics, run_fixed_range
from repro.simulation.sweep import split_worker_budget, sweep_parameter

from _helpers import bench_scale_name, write_bench_summary

try:
    # Respect cgroup/affinity limits (CI quotas), not just the host size.
    CPU_COUNT = len(os.sched_getaffinity(0))
except AttributeError:  # platforms without sched_getaffinity
    CPU_COUNT = os.cpu_count() or 1
#: Sweep-level worker counts whose wall-clock times are reported.
WORKER_COUNTS = (1, 2, 4)


def _sweep_workload():
    """A system-size sweep heavy enough for fan-out to matter."""
    if bench_scale_name() == "smoke":
        sides = (576.0, 784.0, 1024.0, 1296.0)
        # Heavy enough that per-side work dwarfs worker-pool startup, so
        # the 1.5x assertion is robust on a 4-core machine.
        steps, iterations = 400, 5
    else:
        sides = (1024.0, 2304.0, 4096.0, 6400.0)
        steps, iterations = 150, 5
    scale = ExperimentScale(
        name="smoke",
        sides=sides,
        steps=steps,
        iterations=iterations,
        stationary_iterations=40,
        parameter_points=3,
        seed=20020623,
    )
    return sides, SystemSizeMeasure(model="drunkard", scale=scale)


def _timed(function):
    start = time.perf_counter()
    result = function()
    return result, time.perf_counter() - start


def test_sweep_scaling(benchmark):
    """Wall-clock speedup of sweep workers 2/4 over the serial sweep."""
    sides, measure = _sweep_workload()
    serial, serial_seconds = _timed(
        lambda: sweep_parameter("l", sides, measure)
    )
    rows = [("1", serial_seconds, 1.0)]
    for workers in WORKER_COUNTS[1:]:
        parallel, seconds = _timed(
            lambda: sweep_parameter("l", sides, measure, workers=workers)
        )
        assert parallel.rows == serial.rows, f"workers={workers} changed the sweep"
        rows.append((str(workers), seconds, serial_seconds / seconds))
    print(f"\nsweep_parameter scaling ({len(sides)} sides, "
          f"model=drunkard, {CPU_COUNT} cores):")
    for workers, seconds, speedup in rows:
        print(f"  workers={workers:>2}: {seconds:8.3f}s  speedup {speedup:4.2f}x")
    write_bench_summary(
        "sweep_scaling",
        {
            "sides": len(sides),
            "cpu_count": CPU_COUNT,
            "seconds_by_workers": {
                workers: seconds for workers, seconds, _ in rows
            },
            "best_speedup": max(speedup for _, _, speedup in rows),
            "speedup_bar_enforced": CPU_COUNT >= 4,
        },
    )
    if CPU_COUNT >= 4:
        best = max(speedup for _, _, speedup in rows)
        assert best >= 1.5, (
            f"expected >= 1.5x sweep speedup on {CPU_COUNT} cores, got {best:.2f}x"
        )
    # Report the serial sweep under pytest-benchmark for history tracking.
    benchmark.pedantic(
        sweep_parameter, args=("l", sides, measure),
        rounds=1, iterations=1, warmup_rounds=0,
    )


def test_worker_budget_split_equivalence():
    """A split total budget produces exactly the serial sweep result."""
    sides, measure = _sweep_workload()
    sweep_workers, iteration_workers = split_worker_budget(4, len(sides))
    serial = sweep_parameter("l", sides, measure)
    budgeted = sweep_parameter(
        "l", sides, measure,
        workers=sweep_workers, iteration_workers=iteration_workers,
    )
    assert budgeted.rows == serial.rows


def _payload_config() -> SimulationConfig:
    steps = 2_000 if bench_scale_name() == "smoke" else 10_000
    side = 1024.0
    return SimulationConfig(
        network=NetworkConfig(node_count=32, side=side, dimension=2),
        mobility=MobilitySpec.paper_drunkard(side),
        steps=steps,
        iterations=1,
        seed=20020623,
        transmitting_range=0.18 * side,
    )


def test_pickled_payload_sizes():
    """Columnar containers must beat the object lists they replaced.

    The fixed-range records (one bool + one component size per step) pack
    >= 10x smaller than pickled ``StepRecord`` dataclasses.  The frame
    statistics keep their float64 breakpoint ranges bit-exact, so their
    payload shrinks by the per-object overhead only (the number of pickled
    *objects* still drops from one per step to a handful of arrays).
    """
    config = _payload_config()

    records = run_fixed_range(config).iterations[0].records
    record_objects = tuple(
        StepRecord(step, bool(connected), int(size))
        for step, (connected, size) in enumerate(
            zip(records.connected, records.largest_component)
        )
    )
    columnar = len(pickle.dumps(records))
    objects = len(pickle.dumps(record_objects))
    step_ratio = objects / columnar
    print(f"\nfixed-range payload ({config.steps} steps): "
          f"objects {objects / 1024:.1f} KiB, columnar {columnar / 1024:.1f} KiB, "
          f"{step_ratio:.1f}x smaller")
    assert step_ratio >= 10.0, (
        f"expected >= 10x smaller fixed-range payload, got {step_ratio:.1f}x"
    )

    statistics = collect_frame_statistics(config)[0]
    frame_objects = [
        FrameStatistics(frame.critical_range, frame.component_curve, frame.node_count)
        for frame in statistics
    ]
    columnar = len(pickle.dumps(statistics))
    objects = len(pickle.dumps(frame_objects))
    frame_ratio = objects / columnar
    print(f"frame-statistics payload ({config.steps} steps): "
          f"objects {objects / 1024:.1f} KiB, columnar {columnar / 1024:.1f} KiB, "
          f"{frame_ratio:.1f}x smaller")
    assert frame_ratio >= 1.3, (
        f"expected >= 1.3x smaller frame-statistics payload, got {frame_ratio:.1f}x"
    )
    assert pickle.loads(pickle.dumps(statistics)) == statistics
