"""Stationary critical range (the denominator of Figures 2-6).

Measures the simulated rstationary for each system size and compares it
against the Gupta-Kumar analytical threshold and the best/worst
deterministic placements — the comparison the paper sketches after
Theorem 5 for one dimension, carried out here for the 2-D geometry the
mobile simulations use.
"""

from _helpers import assert_non_decreasing, print_figure, run_experiment_benchmark

COLUMNS = [
    "n",
    "rstationary",
    "gupta_kumar",
    "best_case",
    "worst_case",
    "rstationary/l",
]


def test_stationary_critical_range(benchmark):
    sweep = run_experiment_benchmark(benchmark, "stationary-critical-range")
    print_figure("Stationary critical range", sweep, COLUMNS)

    for row in sweep.rows:
        # Random placement sits strictly between the best-case lattice and
        # the worst-case corner clustering.
        assert row["best_case"] < row["rstationary"] < row["worst_case"]
        # The Gupta-Kumar threshold is the right order of magnitude.
        assert 0.2 * row["gupta_kumar"] < row["rstationary"] < 5.0 * row["gupta_kumar"]

    # The absolute critical range grows with the system size (n = sqrt(l)
    # keeps the network sparse, so larger fields need longer links).
    assert_non_decreasing(sweep.series("rstationary"), slack=1e-9)
