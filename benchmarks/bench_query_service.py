"""Latency benchmark of the online critical-range query service.

Measures the service layer itself (no HTTP) over a store warmed with
synthetic rows, in four regimes:

* **hot**: repeated exact-grid queries served from the in-memory LRU —
  the interactive path, asserted sub-millisecond p50 and single-digit-
  millisecond p99 *on any host* (pure dictionary + float work, no IO);
* **cold**: a fresh service's first query per cell, paying the store
  decode and the completeness probe — asserted under 100 ms p99;
* **zipfian**: a skewed stream over many grid sides against a small
  cache, reporting the hot-hit rate the LRU sustains;
* **loop lag**: a 1 ms heartbeat task sampled while cold queries run —
  the event loop must never block on store IO, so scheduling lag stays
  bounded even while the thread pool decodes cells.

Emits ``BENCH_query_service.json`` for the perf-regression gate.
"""

import asyncio
import random
import statistics
import time

from repro.campaigns import CampaignSpec
from repro.query import GridIndex, Query, QueryService
from repro.store import ResultStore

from _helpers import bench_scale_name, write_bench_summary

#: Grid sides for the zipfian/cold regimes: many cells, cheap rows.
SIDES = tuple(float(side) for side in range(256, 256 + 64 * 32, 32))

HOT_SAMPLES = 3000 if bench_scale_name() == "smoke" else 10000
COLD_SAMPLES = 40
ZIPF_SAMPLES = 2000
CACHE_CELLS = 16

#: Any-host latency bars (the PR's acceptance criteria).
HOT_P50_BAR_MS = 1.0
HOT_P99_BAR_MS = 9.0
COLD_P99_BAR_MS = 100.0
LOOP_LAG_BAR_MS = 50.0


def synthetic_row(side: float) -> dict:
    """A physically-shaped row: thresholds grow with the system size."""
    base = side ** 0.5 / 10.0
    return {
        "l": side,
        "n": float(max(2, round(side ** 0.5))),
        "rstationary": 2.0 * base,
        "r0": 1.0 * base,
        "r10": 1.3 * base,
        "r90": 2.6 * base,
        "r100": 3.2 * base,
    }


def warm_store(root) -> tuple:
    spec = CampaignSpec(
        name="bench-query",
        experiments=("fig2",),
        scale="smoke",
        overrides=(("sides", SIDES),),
    )
    store = ResultStore(root)
    grid = GridIndex(spec)
    checkpoint = grid.checkpoint_for(grid.scenario_for("waypoint"), store=store)
    for side in SIDES:
        checkpoint.save(side, synthetic_row(side))
    return spec, store


def percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * fraction))]


async def timed_ask(service, query):
    started = time.perf_counter()
    answer = await service.ask(query)
    return (time.perf_counter() - started) * 1000.0, answer


async def measure_hot(spec, store):
    service = QueryService(store, spec)
    await service.start()
    try:
        queries = [
            Query(side=side, probability=0.9) for side in SIDES[:CACHE_CELLS]
        ]
        for query in queries:  # warm the cells once
            await service.ask(query)
        samples = []
        for index in range(HOT_SAMPLES):
            elapsed, answer = await timed_ask(
                service, queries[index % len(queries)]
            )
            assert answer.hot and answer.source == "exact"
            samples.append(elapsed)
        return samples
    finally:
        await service.close()


async def measure_cold_with_lag_probe(spec, store):
    """First-touch latencies, with a loop-lag heartbeat running alongside."""
    lags = []
    stop = asyncio.Event()

    async def heartbeat():
        while not stop.is_set():
            before = time.perf_counter()
            await asyncio.sleep(0.001)
            lags.append((time.perf_counter() - before - 0.001) * 1000.0)

    probe = asyncio.ensure_future(heartbeat())
    samples = []
    try:
        for index in range(COLD_SAMPLES):
            service = QueryService(store, spec)  # empty hot cache
            await service.start()
            try:
                side = SIDES[index % len(SIDES)]
                elapsed, answer = await timed_ask(
                    service, Query(side=side, probability=0.9)
                )
                assert not answer.hot and answer.source == "exact"
                samples.append(elapsed)
            finally:
                await service.close()
    finally:
        stop.set()
        await probe
    return samples, lags


async def measure_zipfian(spec, store):
    """Hit rate of a small LRU under a skewed (rank**-1.1) side stream."""
    service = QueryService(store, spec, cache_cells=CACHE_CELLS)
    await service.start()
    try:
        rng = random.Random(20020623)
        weights = [1.0 / (rank + 1) ** 1.1 for rank in range(len(SIDES))]
        picks = rng.choices(range(len(SIDES)), weights=weights, k=ZIPF_SAMPLES)
        hits = 0
        for pick in picks:
            answer = await service.ask(Query(side=SIDES[pick], probability=0.9))
            hits += bool(answer.hot)
        return hits / ZIPF_SAMPLES
    finally:
        await service.close()


def test_query_service_latency(tmp_path):
    spec, store = warm_store(tmp_path / "store")

    async def main():
        hot = await measure_hot(spec, store)
        cold, lags = await measure_cold_with_lag_probe(spec, store)
        hit_rate = await measure_zipfian(spec, store)
        return hot, cold, lags, hit_rate

    hot, cold, lags, hit_rate = asyncio.run(main())

    metrics = {
        "hot_p50_ms": percentile(hot, 0.50),
        "hot_p99_ms": percentile(hot, 0.99),
        "hot_mean_ms": statistics.fmean(hot),
        "cold_p50_ms": percentile(cold, 0.50),
        "cold_p99_ms": percentile(cold, 0.99),
        "zipf_hit_rate": hit_rate,
        "loop_lag_p99_ms": percentile(lags, 0.99) if lags else 0.0,
        "loop_lag_max_ms": max(lags) if lags else 0.0,
        "hot_samples": len(hot),
        "cold_samples": len(cold),
    }
    write_bench_summary("query_service", metrics)

    print()
    print(f"query service latency ({bench_scale_name()} scale)")
    for name in (
        "hot_p50_ms", "hot_p99_ms", "cold_p50_ms", "cold_p99_ms",
        "zipf_hit_rate", "loop_lag_p99_ms", "loop_lag_max_ms",
    ):
        print(f"  {name:18s} {metrics[name]:10.4f}")

    # Interactive-latency bars hold on any host: the hot path is pure
    # in-memory work and the cold path is one small decode + probe.
    assert metrics["hot_p50_ms"] < HOT_P50_BAR_MS, metrics
    assert metrics["hot_p99_ms"] < HOT_P99_BAR_MS, metrics
    assert metrics["cold_p99_ms"] < COLD_P99_BAR_MS, metrics
    assert metrics["loop_lag_p99_ms"] < LOOP_LAG_BAR_MS, metrics
    # The skewed stream concentrates on ~16 popular sides; the LRU must
    # serve the bulk of it from memory.
    assert hit_rate > 0.5, metrics
