"""Figure 3 — ratios r100/r90/r10/r0 to rstationary vs system size (drunkard).

Same quantities as Figure 2 under the drunkard model (pstationary = 0.1,
ppause = 0.3, m = 0.01 l).  Paper-reported shape: nearly the same curves as
Figure 2 — the headline observation that the mobility model barely matters —
with slightly higher r100 ratios.
"""

from _helpers import print_figure, run_experiment_benchmark

COLUMNS = [
    "r100/rstationary",
    "r90/rstationary",
    "r10/rstationary",
    "r0/rstationary",
]


def test_figure3_drunkard_ratios(benchmark):
    sweep = run_experiment_benchmark(benchmark, "fig3")
    print_figure("Figure 3", sweep, COLUMNS)

    for row in sweep.rows:
        assert row["r0/rstationary"] <= row["r10/rstationary"]
        assert row["r10/rstationary"] <= row["r90/rstationary"]
        assert row["r90/rstationary"] <= row["r100/rstationary"]
        assert 0.1 < row["r100/rstationary"] < 3.0
