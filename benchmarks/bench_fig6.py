"""Figure 6 — ratios rl90/rl75/rl50 to rstationary vs system size (waypoint).

The paper's Figure 6 plots the ranges at which the *average* largest
connected component reaches 0.9 n, 0.75 n and 0.5 n, relative to the
stationary critical range.  Paper-reported shape: rl90/rstationary drifts
down toward ~0.52, rl75 (~0.46) and rl50 (~0.40) are nearly flat, and the
three curves move closer together as l grows.
"""

from _helpers import print_figure, run_experiment_benchmark

COLUMNS = [
    "rl90/rstationary",
    "rl75/rstationary",
    "rl50/rstationary",
]


def test_figure6_component_threshold_ratios(benchmark):
    sweep = run_experiment_benchmark(benchmark, "fig6")
    print_figure("Figure 6", sweep, COLUMNS)

    for row in sweep.rows:
        # Ordering: a larger component requirement needs a larger range.
        assert row["rl50/rstationary"] <= row["rl75/rstationary"]
        assert row["rl75/rstationary"] <= row["rl90/rstationary"]
        # All three sit clearly below the full-connectivity range.
        assert row["rl90/rstationary"] <= row["r100/rstationary"]
        # Keeping only half the nodes connected needs well under the
        # stationary critical range.
        assert row["rl50/rstationary"] < 1.0
