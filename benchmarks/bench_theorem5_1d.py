"""Theorems 3-5 — the critical product r*n versus l log l in one dimension.

Not a figure in the paper (the 1-D result is purely analytical there), but
the claim behind Theorem 5 is directly measurable: the empirical critical
range at which 99 % of random 1-D placements connect, multiplied by n,
should track l log l within a constant factor as l grows, and the exact
closed-form predictor should agree with the simulation.
"""

from _helpers import print_figure, run_experiment_benchmark

COLUMNS = [
    "n",
    "empirical_rn",
    "exact_rn",
    "l_log_l",
    "empirical_rn/l_log_l",
]


def test_theorem5_critical_product(benchmark):
    sweep = run_experiment_benchmark(benchmark, "theorem5-1d")
    print_figure("Theorem 5 (1-D critical product)", sweep, COLUMNS)

    ratios = sweep.series("empirical_rn/l_log_l")
    # The ratio stays within a constant band (Theta behaviour), rather than
    # drifting to 0 or infinity with l.
    assert all(0.1 < ratio < 10.0 for ratio in ratios)
    assert max(ratios) <= 5.0 * min(ratios)

    # The empirical and exact critical products agree within Monte-Carlo noise.
    for row in sweep.rows:
        assert abs(row["empirical_rn"] - row["exact_rn"]) <= 0.35 * row["exact_rn"]
