"""Theorems 1-2 — occupancy moments across the five growth domains.

Validates the machinery behind the lower-bound proof: the exact and
asymptotic (Theorem 1) moments of the number of empty cells agree with
Monte-Carlo simulation in every growth domain, and the occupancy-based
estimate of the {10*1} gap event of Lemma 1 behaves sensibly (it vanishes
in the right-hand domain where every cell is occupied w.h.p.).
"""

from _helpers import print_figure, run_experiment_benchmark

COLUMNS = [
    "n",
    "C",
    "exact_mean",
    "asymptotic_mean",
    "simulated_mean",
    "exact_variance",
    "simulated_variance",
    "gap_probability",
]


def test_occupancy_domains(benchmark):
    sweep = run_experiment_benchmark(benchmark, "occupancy-domains")
    print_figure("Occupancy theory (Theorems 1-2)", sweep, COLUMNS)

    for row in sweep.rows:
        # Exact and simulated means agree within Monte-Carlo noise.
        tolerance = max(0.35 * row["exact_mean"], 1.5)
        assert abs(row["exact_mean"] - row["simulated_mean"]) <= tolerance
        # Theorem 1: the asymptotic mean never exceeds C e^{-n/C} by much and
        # tracks the exact mean.
        assert row["asymptotic_mean"] <= row["C"] + 1e-9
        assert abs(row["asymptotic_mean"] - row["exact_mean"]) <= max(
            0.2 * max(row["exact_mean"], 1.0), 1.0
        )
        assert 0.0 <= row["gap_probability"] <= 1.0

    # The {10*1} gap becomes less likely as n grows relative to C: the
    # probability is (weakly) decreasing across the domains, is essentially
    # certain in the sparse domains, and the dense (RHD) domain has the
    # smallest value of all.  (How small depends on the absolute C used at
    # this scale; at the paper's asymptotic sizes it vanishes.)
    ordered = sorted(sweep.rows, key=lambda row: row["n"])
    gaps = [row["gap_probability"] for row in ordered]
    assert all(after <= before + 1e-6 for before, after in zip(gaps, gaps[1:]))
    sparse_rows = [row for row in sweep.rows if row["n"] <= row["C"]]
    # domain_index 4 is the row constructed with n = C log C (the RHD).
    rhd_rows = [row for row in sweep.rows if row["domain_index"] == 4.0]
    assert all(row["gap_probability"] > 0.5 for row in sparse_rows)
    if rhd_rows and sparse_rows:
        assert max(r["gap_probability"] for r in rhd_rows) < min(
            r["gap_probability"] for r in sparse_rows
        )
