"""Figure 4 — largest-component fraction at r90/r10/r0 vs system size (waypoint).

The paper's Figure 4 shows that when the range is reduced to r90 the largest
connected component still holds nearly all nodes (~0.98 n for large l), at
r10 it still holds most of them (~0.9 n), and only at r0 does it drop to
about half the network.
"""

from _helpers import print_figure, run_experiment_benchmark

COLUMNS = [
    "lcc_fraction@r90",
    "lcc_fraction@r10",
    "lcc_fraction@r0",
]


def test_figure4_component_sizes_waypoint(benchmark):
    sweep = run_experiment_benchmark(benchmark, "fig4")
    print_figure("Figure 4", sweep, COLUMNS)

    for row in sweep.rows:
        # Ordering: more range -> larger surviving component.
        assert row["lcc_fraction@r0"] <= row["lcc_fraction@r10"] + 1e-9
        assert row["lcc_fraction@r10"] <= row["lcc_fraction@r90"] + 1e-9
        # The qualitative claims of the figure.
        assert row["lcc_fraction@r90"] > 0.85
        assert row["lcc_fraction@r10"] > 0.6
        assert row["lcc_fraction@r0"] < row["lcc_fraction@r90"]
