"""Extension — how robust is the disk-model threshold to shadowing?

The paper's radio is an ideal disk.  This ablation compares the probability
that a random placement is connected under the disk model and under
log-normal shadowing with the same nominal range, around the critical
range: shadowing blurs the sharp threshold but does not move it far, which
supports carrying the paper's conclusions over to less ideal radios.
"""

import numpy as np
import pytest

import repro
from repro.experiments.report import format_table
from repro.propagation.links import connectivity_probability_monte_carlo
from repro.propagation.shadowing import LogNormalShadowing

SIDE = 1000.0
NODE_COUNT = 40
SEED = 3
ITERATIONS = 60


def _run():
    region = repro.Region.square(SIDE)
    placement = repro.uniform_placement(NODE_COUNT, region, repro.make_rng(SEED))
    r_star = repro.critical_range(placement)
    rows = []
    for factor in (0.8, 1.0, 1.2):
        nominal = factor * r_star
        for sigma in (0.0, 4.0, 8.0):
            model = LogNormalShadowing.with_nominal_range(nominal, shadowing_std=sigma)
            probability = connectivity_probability_monte_carlo(
                placement, model, iterations=ITERATIONS, seed=SEED
            )
            rows.append(
                {
                    "nominal / r*": factor,
                    "sigma (dB)": sigma,
                    "P(connected)": probability,
                }
            )
    return r_star, rows


def test_shadowing_vs_disk_threshold(benchmark):
    r_star, rows = benchmark.pedantic(_run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(format_table(rows, precision=3))

    by_key = {(row["nominal / r*"], row["sigma (dB)"]): row["P(connected)"] for row in rows}
    # The disk model is a step function around the critical range.
    assert by_key[(0.8, 0.0)] == 0.0
    assert by_key[(1.2, 0.0)] == 1.0
    # Shadowing keeps the monotone dependence on the nominal range.
    for sigma in (4.0, 8.0):
        assert by_key[(0.8, sigma)] <= by_key[(1.0, sigma)] <= by_key[(1.2, sigma)]
    # Above the threshold, shadowing can only lower the (previously certain)
    # connectivity probability; below it, it can only raise the (previously
    # impossible) one.
    assert by_key[(1.2, 8.0)] <= 1.0
    assert by_key[(0.8, 8.0)] >= 0.0
